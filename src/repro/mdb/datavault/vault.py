"""The Data Vault implementation."""

from __future__ import annotations

import fnmatch
import os
import time
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro import faults, resilience
from repro.mdb.errors import MDBError
from repro.mdb.sciql import SciArray


class VaultError(MDBError):
    """Raised for vault-level failures (unknown formats, missing files)."""


class FormatHandler:
    """Teaches the vault one external file format.

    ``probe`` decides (cheaply) whether a file belongs to this format;
    ``read_metadata`` extracts the header without touching the payload;
    ``ingest`` converts the payload into a :class:`SciArray`.
    """

    def __init__(
        self,
        name: str,
        probe: Callable[[str], bool],
        read_metadata: Callable[[str], Dict[str, Any]],
        ingest: Callable[[str], SciArray],
    ):
        self.name = name
        self.probe = probe
        self.read_metadata = read_metadata
        self.ingest = ingest

    def __repr__(self) -> str:
        return f"FormatHandler({self.name!r})"


class VaultEntry:
    """One external file known to the vault."""

    def __init__(self, path: str, handler: FormatHandler):
        self.path = path
        self.handler = handler
        self.metadata: Dict[str, Any] = {}
        self.cached: Optional[SciArray] = None
        self.ingest_count = 0
        self.last_access: Optional[float] = None

    @property
    def is_cached(self) -> bool:
        return self.cached is not None

    def __repr__(self) -> str:
        state = "cached" if self.is_cached else "cold"
        return f"<VaultEntry {self.path} [{self.handler.name}] {state}>"


class DataVault:
    """A catalog of external files with just-in-time ingestion.

    Typical life cycle::

        vault = DataVault("seviri")
        vault.register_format(seviri_format_handler())
        vault.attach_directory("/archive/msg")   # catalogs, reads headers
        array = vault.fetch("/archive/msg/scene_001.nat")  # lazy ingest
    """

    def __init__(
        self,
        name: str,
        cache_limit: Optional[int] = None,
        retry: Optional[resilience.RetryPolicy] = None,
        breaker: Optional[resilience.CircuitBreaker] = None,
    ):
        self.name = name.lower()
        self.cache_limit = cache_limit
        self._handlers: List[FormatHandler] = []
        self._entries: Dict[str, VaultEntry] = {}
        # Payload reads are the vault's contact surface with slow or
        # flaky storage: retried under `retry`, guarded by `breaker` so
        # a persistently failing archive fails fast instead of queueing
        # doomed ingests.  Injected chaos faults count as failures.
        self.retry = retry or resilience.DEFAULT_RETRY
        self.breaker = breaker or resilience.CircuitBreaker(
            f"vault.{self.name}",
            record_on=(resilience.TransientError, faults.InjectedFault),
        )
        self.stats = {
            "files_cataloged": 0,
            "ingests": 0,
            "cache_hits": 0,
            "evictions": 0,
        }

    # -- format registry ----------------------------------------------------

    def register_format(self, handler: FormatHandler) -> FormatHandler:
        if any(h.name == handler.name for h in self._handlers):
            raise VaultError(f"format {handler.name!r} already registered")
        self._handlers.append(handler)
        return handler

    def formats(self) -> List[str]:
        return [h.name for h in self._handlers]

    def _handler_for(self, path: str) -> FormatHandler:
        for handler in self._handlers:
            if handler.probe(path):
                return handler
        raise VaultError(f"no registered format recognises {path!r}")

    # -- cataloging ------------------------------------------------------------

    def attach_file(self, path: str) -> VaultEntry:
        """Catalog one external file: resolve its format, read metadata."""
        if path in self._entries:
            return self._entries[path]
        if not os.path.exists(path):
            raise VaultError(f"file not found: {path!r}")
        handler = self._handler_for(path)
        entry = VaultEntry(path, handler)
        entry.metadata = handler.read_metadata(path)
        self._entries[path] = entry
        self.stats["files_cataloged"] += 1
        return entry

    def attach_directory(
        self, directory: str, pattern: str = "*"
    ) -> List[VaultEntry]:
        """Catalog every matching file in ``directory`` (sorted order)."""
        if not os.path.isdir(directory):
            raise VaultError(f"not a directory: {directory!r}")
        entries = []
        for name in sorted(os.listdir(directory)):
            if not fnmatch.fnmatch(name, pattern):
                continue
            path = os.path.join(directory, name)
            if not os.path.isfile(path):
                continue
            try:
                entries.append(self.attach_file(path))
            except VaultError:
                continue  # unrecognised files are skipped, not fatal
        return entries

    # -- access ---------------------------------------------------------------

    def entries(self) -> List[VaultEntry]:
        return list(self._entries.values())

    def entry(self, path: str) -> VaultEntry:
        try:
            return self._entries[path]
        except KeyError:
            raise VaultError(f"file not cataloged: {path!r}") from None

    def search(self, **criteria: Any) -> Iterator[VaultEntry]:
        """Entries whose metadata matches all ``key=value`` criteria."""
        for entry in self._entries.values():
            if all(
                entry.metadata.get(key) == value
                for key, value in criteria.items()
            ):
                yield entry

    def fetch(self, path: str) -> SciArray:
        """The file's array — ingesting it on first access (lazy).

        The payload read runs through the vault's retry policy (the
        ``vault.fetch`` injection point fires here) and circuit
        breaker; a read that keeps failing raises after bounded
        attempts, and a tripped breaker rejects further reads with
        :class:`repro.resilience.CircuitOpenError` until the recovery
        window passes.  Entry state is only updated on success, so a
        failed fetch leaves no partially-ingested array behind.
        """
        entry = self.entry(path)
        entry.last_access = time.monotonic()
        if entry.cached is not None:
            self.stats["cache_hits"] += 1
            return entry.cached

        def read_payload() -> SciArray:
            faults.maybe_fail("vault.fetch")
            return entry.handler.ingest(path)

        array = self.breaker.call(
            lambda: resilience.call_with_retry(
                read_payload, self.retry, label="vault.fetch"
            )
        )
        entry.cached = array
        entry.ingest_count += 1
        self.stats["ingests"] += 1
        # Return the local reference: with cache_limit=0 the freshly
        # ingested entry is itself evicted immediately, and
        # ``entry.cached`` would already be None here.
        self._enforce_cache_limit(keep=entry)
        return array

    def ingest_all(self) -> int:
        """Eagerly ingest every cataloged file (the ETL strawman that the
        vault design argues against; used as the baseline in bench A2)."""
        count = 0
        for path in list(self._entries):
            entry = self._entries[path]
            if entry.cached is None:
                self.fetch(path)
                count += 1
        return count

    def evict(self, path: str) -> bool:
        """Drop a cached array; the file stays cataloged."""
        entry = self.entry(path)
        if entry.cached is None:
            return False
        entry.cached = None
        self.stats["evictions"] += 1
        return True

    def _enforce_cache_limit(
        self, keep: Optional[VaultEntry] = None
    ) -> None:
        """Evict least-recently-used arrays until within ``cache_limit``.

        All evictions go through :meth:`evict` (single accounting path).
        Never-accessed entries (``last_access=None``) evict before any
        accessed entry, ties break deterministically by path.  ``keep``
        (the just-fetched entry) is spared as long as the limit can be
        met without it — with ``cache_limit=0`` it too is evicted, so
        ``cached_count`` always ends at or below the limit.
        """
        if self.cache_limit is None:
            return
        cached = [e for e in self._entries.values() if e.is_cached]
        if len(cached) <= self.cache_limit:
            return
        cached.sort(
            key=lambda e: (
                e.last_access is not None,
                e.last_access if e.last_access is not None else 0.0,
                e.path,
            )
        )
        victims = [e for e in cached if e is not keep]
        if keep is not None and keep.is_cached:
            victims.append(keep)
        for entry in victims:
            if self.cached_count <= self.cache_limit:
                return
            self.evict(entry.path)

    @property
    def cached_count(self) -> int:
        return sum(1 for e in self._entries.values() if e.is_cached)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"<DataVault {self.name}: {len(self)} files, "
            f"{self.cached_count} cached>"
        )
