"""Data Vaults: a symbiosis of DBMS and scientific file repositories.

Implements the design of Ivanova, Kersten & Manegold (SSDBM 2012, cited as
[6] in the paper): the DBMS keeps a *catalog* of external files together
with the knowledge of how to convert each format into tables or arrays,
and performs the conversion lazily — just in time, when a query first
touches a file — caching the result for later queries.
"""

from repro.mdb.datavault.broker import SceneCatalog
from repro.mdb.datavault.vault import (
    DataVault,
    FormatHandler,
    VaultEntry,
    VaultError,
)

__all__ = [
    "DataVault",
    "FormatHandler",
    "SceneCatalog",
    "VaultEntry",
    "VaultError",
]
