"""Column-at-a-time SQL executor.

Every expression evaluates to a *vector*: a ``(data, valid)`` pair of numpy
arrays over the rows of the current frame — the same bulk-processing model
MonetDB uses.  Joins are hash joins on extracted equality predicates with a
nested-loop fallback; grouping hashes key tuples; ordering is a stable sort
on the evaluated keys.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import kernels
from repro.mdb.errors import (
    CatalogError,
    ExecutionError,
    SQLTypeError,
)
from repro.mdb.sql import ast
from repro.mdb.sql.functions import (
    AGGREGATE_FUNCTIONS,
    SCALAR_FUNCTIONS,
    is_aggregate,
)
from repro.mdb.table import Column, Table
from repro.mdb.types import type_by_name

Vector = Tuple[np.ndarray, np.ndarray]


class Frame:
    """A set of named column vectors over the same row count.

    Columns are keyed ``(binding, column_name)``; ``binding`` is the table
    alias.  The insertion order of keys drives ``SELECT *`` expansion.
    """

    def __init__(self, nrows: int):
        self.nrows = nrows
        self.columns: Dict[Tuple[str, str], Vector] = {}

    @classmethod
    def from_table(cls, table: Table, binding: str) -> "Frame":
        frame = cls(len(table))
        for col in table.columns:
            bat = table.column(col.name)
            frame.columns[(binding, col.name)] = (
                bat.values.copy(),
                bat.validity.copy(),
            )
        return frame

    def add_column(self, binding: str, name: str, vector: Vector) -> None:
        self.columns[(binding, name)] = vector

    def resolve(self, name: str, binding: Optional[str]) -> Vector:
        if binding is not None:
            try:
                return self.columns[(binding, name)]
            except KeyError:
                raise CatalogError(
                    f"unknown column {binding}.{name}"
                ) from None
        matches = [
            key for key in self.columns if key[1] == name
        ]
        if not matches:
            raise CatalogError(f"unknown column {name!r}")
        if len(matches) > 1:
            raise CatalogError(
                f"ambiguous column {name!r} (bound by "
                f"{sorted({m[0] for m in matches})})"
            )
        return self.columns[matches[0]]

    def take(self, positions: np.ndarray) -> "Frame":
        out = Frame(len(positions))
        for key, (data, valid) in self.columns.items():
            out.columns[key] = (data[positions], valid[positions])
        return out

    def bindings(self) -> List[str]:
        seen: List[str] = []
        for binding, _ in self.columns:
            if binding not in seen:
                seen.append(binding)
        return seen


# The vector primitives live in repro.kernels so the compiled and
# interpreted paths share one implementation of the SQL operator
# semantics; the aliases keep this module's historical import surface.
_broadcast_literal = kernels.broadcast_literal
_is_numeric = kernels.is_numeric
_bool_mask = kernels.bool_mask


def _like_to_matcher(pattern: str):
    import re

    regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
    # re.escape escapes % and _ as themselves (no-op) in Python 3.7+.
    compiled = re.compile("^" + regex + "$", re.DOTALL)
    return lambda s: compiled.match(str(s)) is not None


class Evaluator:
    """Evaluates expression ASTs over a :class:`Frame`."""

    def __init__(self, frame: Frame):
        self.frame = frame

    def eval(self, expr: ast.Expr) -> Vector:
        method = getattr(self, "_eval_" + type(expr).__name__.lower(), None)
        if method is None:
            raise ExecutionError(f"cannot evaluate {type(expr).__name__}")
        return method(expr)

    # -- leaves -------------------------------------------------------------

    def _eval_literal(self, expr: ast.Literal) -> Vector:
        return _broadcast_literal(expr.value, self.frame.nrows)

    def _eval_columnref(self, expr: ast.ColumnRef) -> Vector:
        return self.frame.resolve(expr.name, expr.table)

    # -- operators --------------------------------------------------------------

    def _eval_unaryop(self, expr: ast.UnaryOp) -> Vector:
        data, valid = self.eval(expr.operand)
        if expr.op == "-":
            if _is_numeric(data):
                return -data, valid
            out = np.empty(len(data), dtype=object)
            for i, v in enumerate(data):
                out[i] = -v if valid[i] else None
            return out, valid
        if expr.op == "NOT":
            mask = _bool_mask((data, valid))
            return ~mask, np.ones(len(mask), dtype=bool)
        raise ExecutionError(f"unknown unary operator {expr.op!r}")

    def _eval_binaryop(self, expr: ast.BinaryOp) -> Vector:
        op = expr.op
        if op in ("AND", "OR"):
            left = _bool_mask(self.eval(expr.left))
            right = _bool_mask(self.eval(expr.right))
            out = (left & right) if op == "AND" else (left | right)
            return out, np.ones(len(out), dtype=bool)
        ldata, lvalid = self.eval(expr.left)
        rdata, rvalid = self.eval(expr.right)
        valid = lvalid & rvalid
        if op == "||":
            return kernels.vec_concat(ldata, rdata, valid)
        if op in ("+", "-", "*", "/", "%"):
            return self._arith(op, ldata, rdata, valid)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return self._compare(op, ldata, rdata, valid)
        raise ExecutionError(f"unknown operator {op!r}")

    def _arith(
        self, op: str, ldata: np.ndarray, rdata: np.ndarray, valid: np.ndarray
    ) -> Vector:
        return kernels.vec_arith(op, ldata, rdata, valid)

    def _compare(
        self, op: str, ldata: np.ndarray, rdata: np.ndarray, valid: np.ndarray
    ) -> Vector:
        return kernels.vec_compare(op, ldata, rdata, valid)

    # -- predicates ------------------------------------------------------------

    def _eval_inlist(self, expr: ast.InList) -> Vector:
        data, valid = self.eval(expr.operand)
        if all(isinstance(item, ast.Literal) for item in expr.items):
            # One np.isin pass instead of O(items × rows) compares.
            fast = kernels.vec_inlist_literals(
                data,
                valid,
                [item.value for item in expr.items],
                expr.negated,
            )
            if fast is not None:
                return fast
        hits = np.zeros(len(data), dtype=bool)
        for item in expr.items:
            idata, ivalid = self.eval(item)
            item_vec = self._compare("=", data, idata, valid & ivalid)
            hits |= _bool_mask(item_vec)
        if expr.negated:
            hits = ~hits & valid
        return hits, np.ones(len(hits), dtype=bool)

    def _eval_between(self, expr: ast.Between) -> Vector:
        data, valid = self.eval(expr.operand)
        low_d, low_v = self.eval(expr.low)
        high_d, high_v = self.eval(expr.high)
        ge = _bool_mask(self._compare(">=", data, low_d, valid & low_v))
        le = _bool_mask(self._compare("<=", data, high_d, valid & high_v))
        out = ge & le
        if expr.negated:
            out = ~out & valid
        return out, np.ones(len(out), dtype=bool)

    def _eval_isnull(self, expr: ast.IsNull) -> Vector:
        _, valid = self.eval(expr.operand)
        out = valid.copy() if expr.negated else ~valid
        return out, np.ones(len(out), dtype=bool)

    def _eval_like(self, expr: ast.Like) -> Vector:
        data, valid = self.eval(expr.operand)
        pdata, pvalid = self.eval(expr.pattern)
        out = np.zeros(len(data), dtype=bool)
        matcher_cache: Dict[str, Any] = {}
        for i in range(len(data)):
            if not (valid[i] and pvalid[i]):
                continue
            pattern = str(pdata[i])
            matcher = matcher_cache.get(pattern)
            if matcher is None:
                matcher = _like_to_matcher(pattern)
                matcher_cache[pattern] = matcher
            out[i] = matcher(data[i])
        if expr.negated:
            out = ~out & valid
        return out, np.ones(len(out), dtype=bool)

    def _eval_cast(self, expr: ast.Cast) -> Vector:
        data, valid = self.eval(expr.operand)
        ctype = type_by_name(expr.type_name)
        out = np.empty(len(data), dtype=object)
        for i in range(len(data)):
            out[i] = ctype.coerce(data[i]) if valid[i] else None
        if ctype.dtype != np.dtype(object):
            typed = ctype.empty_array(len(data))
            for i in range(len(data)):
                typed[i] = out[i] if valid[i] else ctype.dtype.type(0)
            return typed, valid.copy()
        return out, valid.copy()

    def _eval_case(self, expr: ast.Case) -> Vector:
        n = self.frame.nrows
        out = np.empty(n, dtype=object)
        valid = np.zeros(n, dtype=bool)
        decided = np.zeros(n, dtype=bool)
        for cond, value in expr.whens:
            mask = _bool_mask(self.eval(cond)) & ~decided
            vdata, vvalid = self.eval(value)
            for i in np.nonzero(mask)[0]:
                out[i] = vdata[i] if vvalid[i] else None
                valid[i] = vvalid[i]
            decided |= mask
        if expr.default is not None:
            ddata, dvalid = self.eval(expr.default)
            rest = ~decided
            for i in np.nonzero(rest)[0]:
                out[i] = ddata[i] if dvalid[i] else None
                valid[i] = dvalid[i]
        return out, valid

    def _eval_functioncall(self, expr: ast.FunctionCall) -> Vector:
        name = expr.name
        if is_aggregate(name):
            raise ExecutionError(
                f"aggregate {name}() used outside of a grouping context"
            )
        fn = SCALAR_FUNCTIONS.get(name)
        if fn is None:
            raise ExecutionError(f"unknown function {name}()")
        args = [self.eval(a) for a in expr.args]
        if not args:
            raise ExecutionError(f"{name}() needs at least one argument")
        return fn(*args)

    def _eval_star(self, expr: ast.Star) -> Vector:
        raise ExecutionError("'*' is only allowed in SELECT lists")


def _contains_aggregate(expr: ast.Expr) -> bool:
    if isinstance(expr, ast.FunctionCall):
        if is_aggregate(expr.name):
            return True
        return any(_contains_aggregate(a) for a in expr.args)
    if isinstance(expr, ast.BinaryOp):
        return _contains_aggregate(expr.left) or _contains_aggregate(
            expr.right
        )
    if isinstance(expr, ast.UnaryOp):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, ast.Cast):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, (ast.InList,)):
        return _contains_aggregate(expr.operand) or any(
            _contains_aggregate(i) for i in expr.items
        )
    if isinstance(expr, ast.Between):
        return any(
            _contains_aggregate(e)
            for e in (expr.operand, expr.low, expr.high)
        )
    if isinstance(expr, (ast.IsNull,)):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, ast.Like):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, ast.Case):
        parts = [e for pair in expr.whens for e in pair]
        if expr.default is not None:
            parts.append(expr.default)
        return any(_contains_aggregate(p) for p in parts)
    return False


class GroupEvaluator:
    """Evaluates select/having expressions in a grouped context."""

    def __init__(
        self,
        frame: Frame,
        group_positions: List[np.ndarray],
        group_exprs: Sequence[ast.Expr],
        group_keys: List[Tuple[Any, ...]],
    ):
        self.frame = frame
        self.groups = group_positions
        self.group_exprs = list(group_exprs)
        self.group_keys = group_keys
        self._scalar_eval = Evaluator(frame)

    def eval(self, expr: ast.Expr) -> Vector:
        n = len(self.groups)
        # Grouping expression: one key value per group.
        for gi, gexpr in enumerate(self.group_exprs):
            if expr == gexpr:
                out = np.empty(n, dtype=object)
                valid = np.ones(n, dtype=bool)
                for k, key in enumerate(self.group_keys):
                    value = key[gi]
                    out[k] = value
                    if value is None:
                        valid[k] = False
                return out, valid
        if isinstance(expr, ast.FunctionCall) and is_aggregate(expr.name):
            return self._aggregate(expr)
        if isinstance(expr, ast.Literal):
            return _broadcast_literal(expr.value, n)
        if isinstance(expr, ast.BinaryOp):
            lhs = self.eval(expr.left)
            rhs = self.eval(expr.right)
            tmp = Frame(n)
            tmp.add_column("$g", "$l", lhs)
            tmp.add_column("$g", "$r", rhs)
            ev = Evaluator(tmp)
            return ev._eval_binaryop(
                ast.BinaryOp(
                    expr.op,
                    ast.ColumnRef("$l", "$g"),
                    ast.ColumnRef("$r", "$g"),
                )
            )
        if isinstance(expr, ast.UnaryOp):
            inner = self.eval(expr.operand)
            tmp = Frame(n)
            tmp.add_column("$g", "$v", inner)
            return Evaluator(tmp)._eval_unaryop(
                ast.UnaryOp(expr.op, ast.ColumnRef("$v", "$g"))
            )
        if isinstance(expr, ast.ColumnRef):
            raise ExecutionError(
                f"column {expr.qualified!r} must appear in GROUP BY or "
                "inside an aggregate"
            )
        raise ExecutionError(
            f"unsupported expression in grouped context: "
            f"{type(expr).__name__}"
        )

    def _aggregate(self, expr: ast.FunctionCall) -> Vector:
        fn = AGGREGATE_FUNCTIONS[expr.name]
        n = len(self.groups)
        out = np.empty(n, dtype=object)
        valid = np.ones(n, dtype=bool)
        if expr.star:
            for k, positions in enumerate(self.groups):
                out[k] = len(positions)
            return out, valid
        if len(expr.args) != 1:
            raise ExecutionError(
                f"aggregate {expr.name}() takes exactly one argument"
            )
        data, data_valid = self._scalar_eval.eval(expr.args[0])
        for k, positions in enumerate(self.groups):
            values = [
                data[i] for i in positions if data_valid[i]
            ]
            if expr.distinct:
                seen = []
                for v in values:
                    if v not in seen:
                        seen.append(v)
                values = seen
            result = fn(values)
            out[k] = result
            if result is None:
                valid[k] = False
        return out, valid


class Executor:
    """Executes parsed statements against a catalog."""

    def __init__(self, catalog):
        self.catalog = catalog

    # -- dispatch ------------------------------------------------------------

    def execute(self, stmt: ast.Statement):
        from repro.mdb.database import Result

        if isinstance(stmt, ast.Select):
            names, columns = self.run_select(stmt)
            return Result(names, columns)
        if isinstance(stmt, ast.CreateTable):
            return self._create_table(stmt)
        if isinstance(stmt, ast.CreateArray):
            return self._create_array(stmt)
        if isinstance(stmt, ast.DropRelation):
            return self._drop(stmt)
        if isinstance(stmt, ast.Insert):
            return self._insert(stmt)
        if isinstance(stmt, ast.Update):
            return self._update(stmt)
        if isinstance(stmt, ast.Delete):
            return self._delete(stmt)
        raise ExecutionError(f"cannot execute {type(stmt).__name__}")

    # -- DDL ---------------------------------------------------------------------

    def _create_table(self, stmt: ast.CreateTable):
        from repro.mdb.database import Result

        if stmt.if_not_exists and self.catalog.has_relation(stmt.name):
            return Result.affected(0)
        columns = [
            Column(c.name, type_by_name(c.type_name)) for c in stmt.columns
        ]
        self.catalog.add_table(Table(stmt.name, columns))
        return Result.affected(0)

    def _create_array(self, stmt: ast.CreateArray):
        from repro.mdb.database import Result
        from repro.mdb.sciql import SciArray

        self.catalog.add_array(SciArray.from_ast(stmt))
        return Result.affected(0)

    def _drop(self, stmt: ast.DropRelation):
        from repro.mdb.database import Result

        if stmt.kind == "table":
            self.catalog.drop_table(stmt.name, if_exists=stmt.if_exists)
        else:
            self.catalog.drop_array(stmt.name, if_exists=stmt.if_exists)
        return Result.affected(0)

    # -- DML ---------------------------------------------------------------------

    def _insert(self, stmt: ast.Insert):
        from repro.mdb.database import Result

        table = self.catalog.table(stmt.table)
        columns = list(stmt.columns) or table.column_names
        rows: List[Sequence[Any]] = []
        if stmt.select is not None:
            _, out_columns = self.run_select(stmt.select)
            n = len(out_columns[0][0]) if out_columns else 0
            for i in range(n):
                rows.append(
                    [
                        (col[0][i] if col[1][i] else None)
                        for col in out_columns
                    ]
                )
        else:
            empty = Frame(1)
            evaluator = Evaluator(empty)
            for row_exprs in stmt.rows:
                row = []
                for expr in row_exprs:
                    data, valid = evaluator.eval(expr)
                    row.append(data[0] if valid[0] else None)
                rows.append(row)
        columns = [c.lower() for c in columns]
        unknown = set(columns) - set(table.column_names)
        if unknown:
            raise CatalogError(
                f"unknown columns {sorted(unknown)} for table "
                f"{table.name!r}"
            )
        full_rows: List[List[Any]] = []
        for row in rows:
            if len(row) != len(columns):
                raise ExecutionError(
                    f"INSERT expects {len(columns)} values, got {len(row)}"
                )
            mapping = dict(zip(columns, row))
            full_rows.append(
                [mapping.get(c.name) for c in table.columns]
            )
        # One insert_rows call = one journal record for the whole
        # statement: a multi-row INSERT is applied (and recovered)
        # atomically.
        table.insert_rows(full_rows)
        return Result.affected(len(full_rows))

    def _update(self, stmt: ast.Update):
        from repro.mdb.database import Result

        if self.catalog.has_array(stmt.table):
            from repro.mdb import sciql

            count = sciql.update_array(
                self.catalog.array(stmt.table), stmt
            )
            return Result.affected(count)
        table = self.catalog.table(stmt.table)
        frame = Frame.from_table(table, table.name)
        if stmt.where is not None:
            mask = _bool_mask(Evaluator(frame).eval(stmt.where))
            positions = np.nonzero(mask)[0]
        else:
            positions = np.arange(len(table))
        if len(positions) == 0:
            return Result.affected(0)
        sub = frame.take(positions)
        evaluator = Evaluator(sub)
        assignments: Dict[str, List[Any]] = {}
        for col_name, expr in stmt.assignments:
            data, valid = evaluator.eval(expr)
            assignments[col_name] = [
                data[i] if valid[i] else None for i in range(len(positions))
            ]
        table.update_positions(positions, assignments)
        return Result.affected(len(positions))

    def _delete(self, stmt: ast.Delete):
        from repro.mdb.database import Result

        table = self.catalog.table(stmt.table)
        if stmt.where is None:
            count = len(table)
            table.truncate()
            return Result.affected(count)
        frame = Frame.from_table(table, table.name)
        mask = _bool_mask(Evaluator(frame).eval(stmt.where))
        positions = np.nonzero(mask)[0]
        table.delete_positions(positions)
        return Result.affected(len(positions))

    # -- SELECT -----------------------------------------------------------------

    def run_select(
        self, stmt: ast.Select
    ) -> Tuple[List[str], List[Vector]]:
        compiled = self._select_compiled(stmt)
        if compiled is not None:
            return compiled
        frame = self._build_frame(stmt)
        if stmt.where is not None:
            mask = _bool_mask(Evaluator(frame).eval(stmt.where))
            frame = frame.take(np.nonzero(mask)[0])
        grouped = bool(stmt.group_by) or any(
            _contains_aggregate(item.expr) for item in stmt.items
        ) or (stmt.having is not None)
        if grouped:
            names, columns, order_keys = self._grouped_projection(stmt, frame)
        else:
            names, columns, order_keys = self._plain_projection(stmt, frame)
        columns = _apply_order(stmt.order_by, columns, order_keys)
        if stmt.distinct:
            columns = _distinct(columns)
        columns = _apply_limit(columns, stmt.limit, stmt.offset)
        return names, columns

    def _select_compiled(
        self, stmt: ast.Select
    ) -> Optional[Tuple[List[str], List[Vector]]]:
        """Kernel-lowered SELECT over a single array, or None.

        With ``REPRO_KERNELS`` enabled, single-array SELECTs are lowered
        by :func:`repro.kernels.compile_select` and run directly over
        the attribute planes (:func:`repro.mdb.sciql.select_array`);
        everything else — joins, tables, grouped or ordered queries,
        statements outside the compiler's subset — takes the retained
        interpretive path, which doubles as the differential oracle.
        DISTINCT/LIMIT/OFFSET reuse the interpretive helpers, so their
        semantics cannot fork.
        """
        if (
            not kernels.enabled()
            or stmt.from_table is None
            or stmt.joins
            or not self.catalog.has_array(stmt.from_table.name)
        ):
            return None
        from repro.mdb import sciql

        array = self.catalog.array(stmt.from_table.name)
        try:
            plan = kernels.compile_select(array, stmt)
        except CatalogError:
            # Unknown column: the interpretive path owns the raise
            # order (a WHERE type error precedes a projection catalog
            # error there).
            plan = None
        if plan is None:
            return None
        names, columns = sciql.select_array(array, plan)
        if stmt.distinct:
            columns = _distinct(columns)
        columns = _apply_limit(columns, stmt.limit, stmt.offset)
        return names, columns

    def _build_frame(self, stmt: ast.Select) -> Frame:
        if stmt.from_table is None:
            frame = Frame(1)  # SELECT 1+1
            return frame
        frame = self._scan(stmt.from_table)
        for join in stmt.joins:
            right = self._scan(join.table)
            frame = self._join(frame, right, join)
        return frame

    def _scan(self, ref: ast.TableRef) -> Frame:
        if self.catalog.has_array(ref.name):
            array = self.catalog.array(ref.name)
            return array.to_frame(ref.binding)
        table = self.catalog.table(ref.name)
        return Frame.from_table(table, ref.binding)

    def _join(self, left: Frame, right: Frame, join: ast.Join) -> Frame:
        if join.kind == "cross" or join.condition is None:
            return _cross_join(left, right)
        equi = _extract_equi_keys(join.condition, left, right)
        if equi is not None:
            combined, matched_left = _hash_join(
                left, right, equi, keep_unmatched_left=(join.kind == "left")
            )
        else:
            combined = _cross_join(left, right)
            matched_left = None
        residual = join.condition if equi is None else None
        if residual is not None:
            mask = _bool_mask(Evaluator(combined).eval(residual))
            if join.kind == "left":
                combined, mask = _left_join_fixup(
                    left, right, combined, mask
                )
                return combined
            combined = combined.take(np.nonzero(mask)[0])
        return combined

    def _plain_projection(
        self, stmt: ast.Select, frame: Frame
    ) -> Tuple[List[str], List[Vector], List[Vector]]:
        evaluator = Evaluator(frame)
        names: List[str] = []
        columns: List[Vector] = []
        by_alias: Dict[str, Vector] = {}
        by_expr: List[Tuple[ast.Expr, Vector]] = []
        for item in stmt.items:
            if isinstance(item.expr, ast.Star):
                for (binding, col), vec in frame.columns.items():
                    if item.expr.table and binding != item.expr.table:
                        continue
                    names.append(col)
                    columns.append((vec[0].copy(), vec[1].copy()))
                continue
            vec = evaluator.eval(item.expr)
            name = item.alias or _default_name(item.expr)
            names.append(name)
            columns.append(vec)
            by_alias.setdefault(name, vec)
            by_expr.append((item.expr, vec))
        order_keys: List[Vector] = []
        for order in stmt.order_by:
            vec = _lookup_projected(order.expr, by_alias, by_expr)
            if vec is None:
                vec = evaluator.eval(order.expr)
            order_keys.append(vec)
        return names, columns, order_keys

    def _grouped_projection(
        self, stmt: ast.Select, frame: Frame
    ) -> Tuple[List[str], List[Vector], List[Vector]]:
        evaluator = Evaluator(frame)
        key_vectors = [evaluator.eval(e) for e in stmt.group_by]
        groups: Dict[Tuple[Any, ...], List[int]] = {}
        order: List[Tuple[Any, ...]] = []
        if stmt.group_by:
            for i in range(frame.nrows):
                key = tuple(
                    (kv[0][i] if kv[1][i] else None) for kv in key_vectors
                )
                if key not in groups:
                    groups[key] = []
                    order.append(key)
                groups[key].append(i)
        else:
            key = ()
            groups[key] = list(range(frame.nrows))
            order.append(key)
        group_positions = [np.asarray(groups[k], dtype=int) for k in order]
        gev = GroupEvaluator(frame, group_positions, stmt.group_by, order)
        if stmt.having is not None:
            mask = _bool_mask(gev.eval(stmt.having))
            keep = [i for i in range(len(order)) if mask[i]]
            order = [order[i] for i in keep]
            group_positions = [group_positions[i] for i in keep]
            gev = GroupEvaluator(frame, group_positions, stmt.group_by, order)
        names: List[str] = []
        columns: List[Vector] = []
        by_alias: Dict[str, Vector] = {}
        by_expr: List[Tuple[ast.Expr, Vector]] = []
        for item in stmt.items:
            if isinstance(item.expr, ast.Star):
                raise ExecutionError("SELECT * cannot be combined with GROUP BY")
            vec = gev.eval(item.expr)
            name = item.alias or _default_name(item.expr)
            names.append(name)
            columns.append(vec)
            by_alias.setdefault(name, vec)
            by_expr.append((item.expr, vec))
        order_keys: List[Vector] = []
        for order in stmt.order_by:
            vec = _lookup_projected(order.expr, by_alias, by_expr)
            if vec is None:
                vec = gev.eval(order.expr)
            order_keys.append(vec)
        return names, columns, order_keys

    # (ordering is handled by the module-level _apply_order)


class _OrderWrap:
    """Makes None and mixed types sortable deterministically."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other):
        a, b = self.value, other.value
        if a is None:
            return b is not None
        if b is None:
            return False
        try:
            return a < b
        except TypeError:
            return str(a) < str(b)

    def __eq__(self, other):
        return self.value == other.value


def _orderable(value):
    return _OrderWrap(value)


def _lookup_projected(
    expr: ast.Expr,
    by_alias: Dict[str, Vector],
    by_expr: List[Tuple[ast.Expr, Vector]],
) -> Optional[Vector]:
    """Resolve an ORDER BY expression against the SELECT output: first by
    alias name, then by structural expression equality."""
    if isinstance(expr, ast.ColumnRef) and expr.table is None:
        if expr.name in by_alias:
            return by_alias[expr.name]
    for item_expr, vec in by_expr:
        if item_expr == expr:
            return vec
    return None


def _apply_order(
    order_by: Sequence[ast.OrderItem],
    columns: List[Vector],
    order_keys: List[Vector],
) -> List[Vector]:
    """Stable multi-key sort of the output columns by pre-computed keys."""
    if not order_by or not columns:
        return columns
    nrows = len(columns[0][0])
    indices = list(range(nrows))
    # Sort by each key from last to first; stability composes them.
    for (data, valid), item in reversed(list(zip(order_keys, order_by))):
        def one_key(i, d=data, v=valid):
            return (
                (v[i] if item.descending else not v[i]),
                _orderable(d[i] if v[i] else None),
            )

        indices.sort(key=one_key, reverse=item.descending)
    positions = np.asarray(indices, dtype=int)
    return [(data[positions], valid[positions]) for data, valid in columns]


def _default_name(expr: ast.Expr) -> str:
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    if isinstance(expr, ast.FunctionCall):
        return expr.name
    return "expr"


def _cross_join(left: Frame, right: Frame) -> Frame:
    n_left, n_right = left.nrows, right.nrows
    out = Frame(n_left * n_right)
    left_idx = np.repeat(np.arange(n_left), n_right)
    right_idx = np.tile(np.arange(n_right), n_left)
    for key, (data, valid) in left.columns.items():
        out.columns[key] = (data[left_idx], valid[left_idx])
    for key, (data, valid) in right.columns.items():
        if key in out.columns:
            raise CatalogError(
                f"duplicate binding {key[0]}.{key[1]} in join; use aliases"
            )
        out.columns[key] = (data[right_idx], valid[right_idx])
    return out


def _extract_equi_keys(expr: ast.Expr, left: Frame, right: Frame):
    """Extract pure equi-join key pairs from a conjunctive condition.

    Returns ``[(left_key_vec, right_key_vec), ...]`` or None when the
    condition contains anything but ANDed column equalities.
    """
    pairs = []

    def walk(e: ast.Expr) -> bool:
        if isinstance(e, ast.BinaryOp) and e.op == "AND":
            return walk(e.left) and walk(e.right)
        if (
            isinstance(e, ast.BinaryOp)
            and e.op == "="
            and isinstance(e.left, ast.ColumnRef)
            and isinstance(e.right, ast.ColumnRef)
        ):
            side_a = _try_resolve(left, e.left)
            side_b = _try_resolve(right, e.right)
            if side_a is not None and side_b is not None:
                pairs.append((side_a, side_b))
                return True
            side_a = _try_resolve(left, e.right)
            side_b = _try_resolve(right, e.left)
            if side_a is not None and side_b is not None:
                pairs.append((side_a, side_b))
                return True
        return False

    if walk(expr) and pairs:
        return pairs
    return None


def _try_resolve(frame: Frame, ref: ast.ColumnRef):
    try:
        return frame.resolve(ref.name, ref.table)
    except CatalogError:
        return None


def _hash_join(left: Frame, right: Frame, equi, keep_unmatched_left: bool):
    buckets: Dict[Tuple[Any, ...], List[int]] = {}
    n_right = right.nrows
    for j in range(n_right):
        key = tuple(
            (vec_r[0][j] if vec_r[1][j] else None) for _, vec_r in equi
        )
        if None in key:
            continue
        buckets.setdefault(key, []).append(j)
    left_idx: List[int] = []
    right_idx: List[int] = []
    null_right: List[bool] = []
    for i in range(left.nrows):
        key = tuple(
            (vec_l[0][i] if vec_l[1][i] else None) for vec_l, _ in equi
        )
        matches = buckets.get(key, []) if None not in key else []
        if matches:
            for j in matches:
                left_idx.append(i)
                right_idx.append(j)
                null_right.append(False)
        elif keep_unmatched_left:
            left_idx.append(i)
            right_idx.append(0)
            null_right.append(True)
    out = Frame(len(left_idx))
    li = np.asarray(left_idx, dtype=int)
    ri = np.asarray(right_idx, dtype=int)
    nr = np.asarray(null_right, dtype=bool)
    for key, (data, valid) in left.columns.items():
        out.columns[key] = (data[li], valid[li])
    for key, (data, valid) in right.columns.items():
        if key in out.columns:
            raise CatalogError(
                f"duplicate binding {key[0]}.{key[1]} in join; use aliases"
            )
        if right.nrows == 0:
            # Every surviving row is an unmatched-left filler row.
            taken = np.empty(len(ri), dtype=data.dtype)
            if data.dtype == object:
                taken[:] = None
            else:
                taken[:] = 0
            tvalid = np.zeros(len(ri), dtype=bool)
        else:
            taken = data[ri]
            tvalid = valid[ri] & ~nr
        out.columns[key] = (taken, tvalid)
    return out, None


def _left_join_fixup(left: Frame, right: Frame, combined: Frame, mask):
    """LEFT JOIN with a non-equi condition via the cross product."""
    n_right = right.nrows
    matched_left = np.zeros(left.nrows, dtype=bool)
    keep = np.nonzero(mask)[0]
    for pos in keep:
        matched_left[pos // max(n_right, 1)] = True
    result = combined.take(keep)
    missing = np.nonzero(~matched_left)[0]
    if len(missing) == 0:
        return result, mask
    extra = Frame(len(missing))
    for key, (data, valid) in left.columns.items():
        extra.columns[key] = (data[missing], valid[missing])
    for key, (data, valid) in right.columns.items():
        filler = np.empty(len(missing), dtype=data.dtype)
        if data.dtype == object:
            filler[:] = None
        else:
            filler[:] = 0
        extra.columns[key] = (filler, np.zeros(len(missing), dtype=bool))
    merged = Frame(result.nrows + extra.nrows)
    for key in result.columns:
        d1, v1 = result.columns[key]
        d2, v2 = extra.columns[key]
        merged.columns[key] = (
            np.concatenate([d1, d2]),
            np.concatenate([v1, v2]),
        )
    return merged, None


def _distinct(columns: List[Vector]) -> List[Vector]:
    if not columns:
        return columns
    n = len(columns[0][0])
    seen = set()
    keep: List[int] = []
    for i in range(n):
        key = tuple(
            (col[0][i] if col[1][i] else None) for col in columns
        )
        try:
            hashable = key
            if hashable not in seen:
                seen.add(hashable)
                keep.append(i)
        except TypeError:
            if key not in [k for k in seen]:
                keep.append(i)
    idx = np.asarray(keep, dtype=int)
    return [(data[idx], valid[idx]) for data, valid in columns]


def _apply_limit(
    columns: List[Vector], limit: Optional[int], offset: Optional[int]
) -> List[Vector]:
    if limit is None and offset is None:
        return columns
    start = offset or 0
    stop = start + limit if limit is not None else None
    return [
        (data[start:stop], valid[start:stop]) for data, valid in columns
    ]
