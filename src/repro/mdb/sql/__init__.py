"""SQL front end of the mdb column store.

Pipeline: :mod:`lexer` → :mod:`parser` (producing :mod:`ast` nodes) →
:mod:`executor` (column-at-a-time evaluation).  SciQL's array DDL and the
array query rewrites live in :mod:`repro.mdb.sciql` but share this parser.
"""

from repro.mdb.sql.lexer import Token, tokenize
from repro.mdb.sql.parser import parse_statement, parse_script
from repro.mdb.sql.executor import Executor

__all__ = [
    "Executor",
    "Token",
    "parse_script",
    "parse_statement",
    "tokenize",
]
