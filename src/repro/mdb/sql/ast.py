"""Abstract syntax tree node types for SQL/SciQL statements."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple


# -- expressions --------------------------------------------------------------


class Expr:
    """Base class of expression nodes."""


@dataclass(frozen=True)
class Literal(Expr):
    value: Any  # int | float | str | bool | None


@dataclass(frozen=True)
class ColumnRef(Expr):
    name: str
    table: Optional[str] = None

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star(Expr):
    table: Optional[str] = None


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # '-', 'NOT'
    operand: Expr


@dataclass(frozen=True)
class BinaryOp(Expr):
    op: str  # arithmetic/comparison/logic/'||'
    left: Expr
    right: Expr


@dataclass(frozen=True)
class FunctionCall(Expr):
    name: str  # lower-case
    args: Tuple[Expr, ...]
    distinct: bool = False
    star: bool = False  # COUNT(*)


@dataclass(frozen=True)
class InList(Expr):
    operand: Expr
    items: Tuple[Expr, ...]
    negated: bool = False


@dataclass(frozen=True)
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass(frozen=True)
class IsNull(Expr):
    operand: Expr
    negated: bool = False


@dataclass(frozen=True)
class Like(Expr):
    operand: Expr
    pattern: Expr
    negated: bool = False


@dataclass(frozen=True)
class Cast(Expr):
    operand: Expr
    type_name: str


@dataclass(frozen=True)
class Case(Expr):
    whens: Tuple[Tuple[Expr, Expr], ...]
    default: Optional[Expr] = None


# -- relations ------------------------------------------------------------------


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class Join:
    kind: str  # 'inner' | 'left' | 'cross'
    table: TableRef
    condition: Optional[Expr] = None


# -- statements -------------------------------------------------------------------


class Statement:
    """Base class of statement nodes."""


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: Optional[str] = None


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass(frozen=True)
class Select(Statement):
    items: Tuple[SelectItem, ...]
    from_table: Optional[TableRef] = None
    joins: Tuple[Join, ...] = ()
    where: Optional[Expr] = None
    group_by: Tuple[Expr, ...] = ()
    having: Optional[Expr] = None
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str


@dataclass(frozen=True)
class DimensionDef:
    """A SciQL array dimension: ``name INT DIMENSION [start:stop]``."""

    name: str
    start: int
    stop: int  # exclusive


@dataclass(frozen=True)
class CreateTable(Statement):
    name: str
    columns: Tuple[ColumnDef, ...]
    if_not_exists: bool = False


@dataclass(frozen=True)
class CreateArray(Statement):
    name: str
    dimensions: Tuple[DimensionDef, ...]
    attributes: Tuple[ColumnDef, ...]
    defaults: Tuple[Any, ...] = ()  # one per attribute (None = no default)


@dataclass(frozen=True)
class DropRelation(Statement):
    name: str
    kind: str  # 'table' | 'array'
    if_exists: bool = False


@dataclass(frozen=True)
class Insert(Statement):
    table: str
    columns: Tuple[str, ...] = ()
    rows: Tuple[Tuple[Expr, ...], ...] = ()
    select: Optional[Select] = None


@dataclass(frozen=True)
class Update(Statement):
    table: str
    assignments: Tuple[Tuple[str, Expr], ...]
    where: Optional[Expr] = None


@dataclass(frozen=True)
class Delete(Statement):
    table: str
    where: Optional[Expr] = None
