"""Scalar and aggregate function registries for the SQL executor.

Scalar functions receive/return *vectors*: ``(data, valid)`` pairs of numpy
arrays.  Aggregates receive the Python values of one group (NULLs already
removed) and return a scalar.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.mdb.errors import ExecutionError

Vector = Tuple[np.ndarray, np.ndarray]  # (data, valid)


def _elementwise(fn: Callable[..., Any]) -> Callable[..., Vector]:
    """Lift a Python scalar function to vectors with NULL propagation."""

    def wrapper(*vectors: Vector) -> Vector:
        n = len(vectors[0][0])
        valid = np.ones(n, dtype=bool)
        for _, v in vectors:
            valid &= v
        out = np.empty(n, dtype=object)
        for i in range(n):
            if valid[i]:
                try:
                    out[i] = fn(*(vec[0][i] for vec in vectors))
                except (ValueError, ZeroDivisionError, TypeError) as exc:
                    raise ExecutionError(str(exc)) from exc
            else:
                out[i] = None
        return out, valid

    return wrapper


def _numeric_unary(fn: Callable[[np.ndarray], np.ndarray]) -> Callable:
    """Lift a numpy ufunc-style unary to vectors."""

    def wrapper(vec: Vector) -> Vector:
        data, valid = vec
        arr = np.asarray(data, dtype=float)
        safe = np.where(valid, arr, 0.0)
        with np.errstate(all="ignore"):
            result = fn(safe)
        return result, valid.copy()

    return wrapper


def _substring(s: str, start: int, length: int = None) -> str:
    begin = max(int(start) - 1, 0)
    if length is None:
        return s[begin:]
    return s[begin : begin + int(length)]


SCALAR_FUNCTIONS: Dict[str, Callable[..., Vector]] = {
    "abs": _numeric_unary(np.abs),
    "sqrt": _numeric_unary(np.sqrt),
    "floor": _numeric_unary(np.floor),
    "ceil": _numeric_unary(np.ceil),
    "ceiling": _numeric_unary(np.ceil),
    "round": _elementwise(lambda x, *d: round(float(x), int(d[0]) if d else 0)),
    "exp": _numeric_unary(np.exp),
    "ln": _numeric_unary(np.log),
    "log": _numeric_unary(np.log10),
    "log10": _numeric_unary(np.log10),
    "sin": _numeric_unary(np.sin),
    "cos": _numeric_unary(np.cos),
    "tan": _numeric_unary(np.tan),
    "atan": _numeric_unary(np.arctan),
    "power": _elementwise(lambda x, y: float(x) ** float(y)),
    "mod": _elementwise(lambda x, y: x % y),
    "sign": _numeric_unary(np.sign),
    "greatest": _elementwise(lambda *xs: max(xs)),
    "least": _elementwise(lambda *xs: min(xs)),
    "length": _elementwise(lambda s: len(str(s))),
    "lower": _elementwise(lambda s: str(s).lower()),
    "upper": _elementwise(lambda s: str(s).upper()),
    "trim": _elementwise(lambda s: str(s).strip()),
    "substring": _elementwise(_substring),
    "substr": _elementwise(_substring),
    "replace": _elementwise(lambda s, a, b: str(s).replace(str(a), str(b))),
    "concat": _elementwise(lambda *xs: "".join(str(x) for x in xs)),
    "strpos": _elementwise(lambda s, sub: str(s).find(str(sub)) + 1),
}


def register_scalar(name: str, fn: Callable[..., Any]) -> None:
    """Register a Python scalar function under ``name`` (lower-case)."""
    SCALAR_FUNCTIONS[name.lower()] = _elementwise(fn)


def _agg_count(values: Sequence[Any]) -> int:
    return len(values)


def _agg_sum(values: Sequence[Any]):
    return sum(values) if values else None


def _agg_avg(values: Sequence[Any]):
    return (sum(values) / len(values)) if values else None


def _agg_min(values: Sequence[Any]):
    return min(values) if values else None


def _agg_max(values: Sequence[Any]):
    return max(values) if values else None


def _agg_median(values: Sequence[Any]):
    if not values:
        return None
    return float(np.median(np.asarray(values, dtype=float)))


def _agg_stddev(values: Sequence[Any]):
    if len(values) < 2:
        return None
    arr = np.asarray(values, dtype=float)
    return float(arr.std(ddof=1))


def _agg_var(values: Sequence[Any]):
    if len(values) < 2:
        return None
    arr = np.asarray(values, dtype=float)
    return float(arr.var(ddof=1))


def _agg_group_concat(values: Sequence[Any]):
    return ",".join(str(v) for v in values) if values else None


AGGREGATE_FUNCTIONS: Dict[str, Callable[[List[Any]], Any]] = {
    "count": _agg_count,
    "sum": _agg_sum,
    "avg": _agg_avg,
    "min": _agg_min,
    "max": _agg_max,
    "median": _agg_median,
    "stddev": _agg_stddev,
    "stdev": _agg_stddev,
    "variance": _agg_var,
    "group_concat": _agg_group_concat,
}


def is_aggregate(name: str) -> bool:
    return name.lower() in AGGREGATE_FUNCTIONS
