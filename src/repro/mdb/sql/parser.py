"""Recursive-descent SQL/SciQL parser."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.mdb.errors import SQLSyntaxError
from repro.mdb.sql import ast
from repro.mdb.sql.lexer import Token, tokenize


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.index = 0

    # -- token helpers -----------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.index]

    def next(self) -> Token:
        tok = self.tokens[self.index]
        if tok.kind != "eof":
            self.index += 1
        return tok

    def at_keyword(self, *words: str) -> bool:
        tok = self.peek()
        return tok.kind == "keyword" and tok.value in words

    def accept_keyword(self, *words: str) -> Optional[str]:
        if self.at_keyword(*words):
            return self.next().value
        return None

    def expect_keyword(self, word: str) -> None:
        tok = self.next()
        if tok.kind != "keyword" or tok.value != word:
            raise SQLSyntaxError(f"expected {word}, got {tok.value!r}")

    def at_op(self, *ops: str) -> bool:
        tok = self.peek()
        return tok.kind == "op" and tok.value in ops

    def accept_op(self, *ops: str) -> Optional[str]:
        if self.at_op(*ops):
            return self.next().value
        return None

    def expect_op(self, op: str) -> None:
        tok = self.next()
        if tok.kind != "op" or tok.value != op:
            raise SQLSyntaxError(f"expected {op!r}, got {tok.value!r}")

    def expect_ident(self) -> str:
        tok = self.next()
        if tok.kind == "ident":
            return tok.value
        # Allow non-reserved-sounding keywords as identifiers where safe.
        raise SQLSyntaxError(f"expected identifier, got {tok.value!r}")

    # -- statements -------------------------------------------------------------

    def statement(self) -> ast.Statement:
        if self.at_keyword("SELECT"):
            return self.select()
        if self.at_keyword("CREATE"):
            return self._create()
        if self.at_keyword("DROP"):
            return self._drop()
        if self.at_keyword("INSERT"):
            return self._insert()
        if self.at_keyword("UPDATE"):
            return self._update()
        if self.at_keyword("DELETE"):
            return self._delete()
        raise SQLSyntaxError(f"unexpected token {self.peek().value!r}")

    def _create(self) -> ast.Statement:
        self.expect_keyword("CREATE")
        if self.accept_keyword("TABLE"):
            if_not_exists = False
            if self.accept_keyword("IF"):
                self.expect_keyword("NOT")
                self.expect_keyword("EXISTS")
                if_not_exists = True
            name = self.expect_ident()
            self.expect_op("(")
            columns = [self._column_def()]
            while self.accept_op(","):
                columns.append(self._column_def())
            self.expect_op(")")
            return ast.CreateTable(name, tuple(columns), if_not_exists)
        if self.accept_keyword("ARRAY"):
            return self._create_array()
        raise SQLSyntaxError("expected TABLE or ARRAY after CREATE")

    def _column_def(self) -> ast.ColumnDef:
        name = self.expect_ident()
        tok = self.next()
        if tok.kind not in ("ident", "keyword"):
            raise SQLSyntaxError(f"expected type name, got {tok.value!r}")
        return ast.ColumnDef(name, tok.value)

    def _create_array(self) -> ast.CreateArray:
        name = self.expect_ident()
        self.expect_op("(")
        dims: List[ast.DimensionDef] = []
        attrs: List[ast.ColumnDef] = []
        defaults: List = []
        while True:
            col = self._column_def()
            if self.accept_keyword("DIMENSION"):
                self.expect_op("[")
                start = self._signed_int()
                self.expect_op(":")
                stop = self._signed_int()
                self.expect_op("]")
                dims.append(ast.DimensionDef(col.name, start, stop))
            else:
                default = None
                if self.accept_keyword("DEFAULT"):
                    default = self._literal_value()
                attrs.append(col)
                defaults.append(default)
            if not self.accept_op(","):
                break
        self.expect_op(")")
        if not dims:
            raise SQLSyntaxError(f"array {name!r} needs at least one dimension")
        if not attrs:
            raise SQLSyntaxError(f"array {name!r} needs at least one attribute")
        return ast.CreateArray(name, tuple(dims), tuple(attrs), tuple(defaults))

    def _signed_int(self) -> int:
        sign = -1 if self.accept_op("-") else 1
        tok = self.next()
        if tok.kind != "number" or "." in tok.value:
            raise SQLSyntaxError(f"expected integer, got {tok.value!r}")
        return sign * int(tok.value)

    def _literal_value(self):
        sign = -1 if self.accept_op("-") else 1
        tok = self.next()
        if tok.kind == "number":
            if "." in tok.value or "e" in tok.value.lower():
                num = float(tok.value)
            else:
                num = int(tok.value)
            return sign * num
        if tok.kind == "string":
            return tok.value
        if tok.kind == "keyword" and tok.value in ("TRUE", "FALSE"):
            return tok.value == "TRUE"
        if tok.kind == "keyword" and tok.value == "NULL":
            return None
        raise SQLSyntaxError(f"expected a literal, got {tok.value!r}")

    def _drop(self) -> ast.DropRelation:
        self.expect_keyword("DROP")
        if self.accept_keyword("TABLE"):
            kind = "table"
        elif self.accept_keyword("ARRAY"):
            kind = "array"
        else:
            raise SQLSyntaxError("expected TABLE or ARRAY after DROP")
        if_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("EXISTS")
            if_exists = True
        return ast.DropRelation(self.expect_ident(), kind, if_exists)

    def _insert(self) -> ast.Insert:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_ident()
        columns: Tuple[str, ...] = ()
        if self.accept_op("("):
            cols = [self.expect_ident()]
            while self.accept_op(","):
                cols.append(self.expect_ident())
            self.expect_op(")")
            columns = tuple(cols)
        if self.accept_keyword("VALUES"):
            rows = [self._value_row()]
            while self.accept_op(","):
                rows.append(self._value_row())
            return ast.Insert(table, columns, tuple(rows))
        if self.at_keyword("SELECT"):
            return ast.Insert(table, columns, (), self.select())
        raise SQLSyntaxError("expected VALUES or SELECT in INSERT")

    def _value_row(self) -> Tuple[ast.Expr, ...]:
        self.expect_op("(")
        exprs = [self.expression()]
        while self.accept_op(","):
            exprs.append(self.expression())
        self.expect_op(")")
        return tuple(exprs)

    def _update(self) -> ast.Update:
        self.expect_keyword("UPDATE")
        table = self.expect_ident()
        self.expect_keyword("SET")
        assignments = [self._assignment()]
        while self.accept_op(","):
            assignments.append(self._assignment())
        where = None
        if self.accept_keyword("WHERE"):
            where = self.expression()
        return ast.Update(table, tuple(assignments), where)

    def _assignment(self) -> Tuple[str, ast.Expr]:
        name = self.expect_ident()
        self.expect_op("=")
        return (name, self.expression())

    def _delete(self) -> ast.Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_ident()
        where = None
        if self.accept_keyword("WHERE"):
            where = self.expression()
        return ast.Delete(table, where)

    # -- SELECT -----------------------------------------------------------------

    def select(self) -> ast.Select:
        self.expect_keyword("SELECT")
        distinct = bool(self.accept_keyword("DISTINCT"))
        self.accept_keyword("ALL")
        items = [self._select_item()]
        while self.accept_op(","):
            items.append(self._select_item())
        from_table = None
        joins: List[ast.Join] = []
        if self.accept_keyword("FROM"):
            from_table = self._table_ref()
            while True:
                if self.accept_op(","):
                    joins.append(ast.Join("cross", self._table_ref()))
                    continue
                kind = None
                if self.accept_keyword("CROSS"):
                    self.expect_keyword("JOIN")
                    joins.append(ast.Join("cross", self._table_ref()))
                    continue
                if self.accept_keyword("INNER"):
                    kind = "inner"
                    self.expect_keyword("JOIN")
                elif self.accept_keyword("LEFT"):
                    self.accept_keyword("OUTER")
                    kind = "left"
                    self.expect_keyword("JOIN")
                elif self.accept_keyword("JOIN"):
                    kind = "inner"
                if kind is None:
                    break
                table = self._table_ref()
                self.expect_keyword("ON")
                condition = self.expression()
                joins.append(ast.Join(kind, table, condition))
        where = self.expression() if self.accept_keyword("WHERE") else None
        group_by: List[ast.Expr] = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.expression())
            while self.accept_op(","):
                group_by.append(self.expression())
        having = self.expression() if self.accept_keyword("HAVING") else None
        order_by: List[ast.OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self._order_item())
            while self.accept_op(","):
                order_by.append(self._order_item())
        limit = offset = None
        if self.accept_keyword("LIMIT"):
            limit = self._signed_int()
        if self.accept_keyword("OFFSET"):
            offset = self._signed_int()
        return ast.Select(
            items=tuple(items),
            from_table=from_table,
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _select_item(self) -> ast.SelectItem:
        if self.at_op("*"):
            self.next()
            return ast.SelectItem(ast.Star())
        # table.* form
        save = self.index
        if self.peek().kind == "ident":
            name = self.next().value
            if self.accept_op("."):
                if self.accept_op("*"):
                    return ast.SelectItem(ast.Star(table=name))
            self.index = save
        expr = self.expression()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.peek().kind == "ident":
            alias = self.next().value
        return ast.SelectItem(expr, alias)

    def _order_item(self) -> ast.OrderItem:
        expr = self.expression()
        descending = False
        if self.accept_keyword("DESC"):
            descending = True
        else:
            self.accept_keyword("ASC")
        return ast.OrderItem(expr, descending)

    def _table_ref(self) -> ast.TableRef:
        name = self.expect_ident()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.peek().kind == "ident":
            alias = self.next().value
        return ast.TableRef(name, alias)

    # -- expressions -------------------------------------------------------------

    def expression(self) -> ast.Expr:
        return self._or_expr()

    def _or_expr(self) -> ast.Expr:
        left = self._and_expr()
        while self.accept_keyword("OR"):
            left = ast.BinaryOp("OR", left, self._and_expr())
        return left

    def _and_expr(self) -> ast.Expr:
        left = self._not_expr()
        while self.accept_keyword("AND"):
            left = ast.BinaryOp("AND", left, self._not_expr())
        return left

    def _not_expr(self) -> ast.Expr:
        if self.accept_keyword("NOT"):
            return ast.UnaryOp("NOT", self._not_expr())
        return self._comparison()

    def _comparison(self) -> ast.Expr:
        left = self._additive()
        negated = bool(self.accept_keyword("NOT"))
        if self.accept_keyword("BETWEEN"):
            low = self._additive()
            self.expect_keyword("AND")
            high = self._additive()
            return ast.Between(left, low, high, negated)
        if self.accept_keyword("IN"):
            self.expect_op("(")
            items = [self.expression()]
            while self.accept_op(","):
                items.append(self.expression())
            self.expect_op(")")
            return ast.InList(left, tuple(items), negated)
        if self.accept_keyword("LIKE"):
            return ast.Like(left, self._additive(), negated)
        if negated:
            raise SQLSyntaxError("expected BETWEEN/IN/LIKE after NOT")
        if self.accept_keyword("IS"):
            negated = bool(self.accept_keyword("NOT"))
            self.expect_keyword("NULL")
            return ast.IsNull(left, negated)
        op = self.accept_op("=", "<>", "!=", "<", "<=", ">", ">=")
        if op:
            if op == "!=":
                op = "<>"
            return ast.BinaryOp(op, left, self._additive())
        return left

    def _additive(self) -> ast.Expr:
        left = self._multiplicative()
        while True:
            op = self.accept_op("+", "-", "||")
            if not op:
                return left
            left = ast.BinaryOp(op, left, self._multiplicative())

    def _multiplicative(self) -> ast.Expr:
        left = self._unary()
        while True:
            op = self.accept_op("*", "/", "%")
            if not op:
                return left
            left = ast.BinaryOp(op, left, self._unary())

    def _unary(self) -> ast.Expr:
        if self.accept_op("-"):
            return ast.UnaryOp("-", self._unary())
        if self.accept_op("+"):
            return self._unary()
        return self._primary()

    def _primary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind == "number":
            self.next()
            if "." in tok.value or "e" in tok.value.lower():
                return ast.Literal(float(tok.value))
            return ast.Literal(int(tok.value))
        if tok.kind == "string":
            self.next()
            return ast.Literal(tok.value)
        if tok.kind == "keyword":
            if tok.value in ("TRUE", "FALSE"):
                self.next()
                return ast.Literal(tok.value == "TRUE")
            if tok.value == "NULL":
                self.next()
                return ast.Literal(None)
            if tok.value == "CAST":
                return self._cast()
            if tok.value == "CASE":
                return self._case()
            raise SQLSyntaxError(f"unexpected keyword {tok.value!r}")
        if tok.kind == "op" and tok.value == "(":
            self.next()
            expr = self.expression()
            self.expect_op(")")
            return expr
        if tok.kind == "ident":
            return self._identifier_expr()
        raise SQLSyntaxError(f"unexpected token {tok.value!r}")

    def _cast(self) -> ast.Expr:
        self.expect_keyword("CAST")
        self.expect_op("(")
        operand = self.expression()
        self.expect_keyword("AS")
        type_tok = self.next()
        if type_tok.kind not in ("ident", "keyword"):
            raise SQLSyntaxError(f"expected type name, got {type_tok.value!r}")
        self.expect_op(")")
        return ast.Cast(operand, type_tok.value)

    def _case(self) -> ast.Expr:
        self.expect_keyword("CASE")
        whens = []
        while self.accept_keyword("WHEN"):
            cond = self.expression()
            self.expect_keyword("THEN")
            value = self.expression()
            whens.append((cond, value))
        default = None
        if self.accept_keyword("ELSE"):
            default = self.expression()
        self.expect_keyword("END")
        if not whens:
            raise SQLSyntaxError("CASE needs at least one WHEN branch")
        return ast.Case(tuple(whens), default)

    def _identifier_expr(self) -> ast.Expr:
        name = self.next().value
        # Function call?
        if self.at_op("("):
            self.next()
            distinct = bool(self.accept_keyword("DISTINCT"))
            if self.accept_op("*"):
                self.expect_op(")")
                return ast.FunctionCall(name.lower(), (), star=True)
            args: List[ast.Expr] = []
            if not self.at_op(")"):
                args.append(self.expression())
                while self.accept_op(","):
                    args.append(self.expression())
            self.expect_op(")")
            return ast.FunctionCall(name.lower(), tuple(args), distinct)
        # Qualified column?
        if self.accept_op("."):
            col = self.expect_ident()
            return ast.ColumnRef(col, table=name)
        return ast.ColumnRef(name)


def parse_statement(text: str) -> ast.Statement:
    """Parse a single SQL statement (a trailing ';' is tolerated)."""
    parser = _Parser(tokenize(text))
    stmt = parser.statement()
    parser.accept_op(";")
    tok = parser.peek()
    if tok.kind != "eof":
        raise SQLSyntaxError(f"trailing input after statement: {tok.value!r}")
    return stmt


def parse_script(text: str) -> List[ast.Statement]:
    """Parse a ';'-separated list of statements."""
    parser = _Parser(tokenize(text))
    statements: List[ast.Statement] = []
    while parser.peek().kind != "eof":
        statements.append(parser.statement())
        while parser.accept_op(";"):
            pass
    return statements
