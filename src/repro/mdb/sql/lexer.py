"""SQL tokenizer."""

from __future__ import annotations

import re
from typing import List, NamedTuple

from repro.mdb.errors import SQLSyntaxError

KEYWORDS = {
    "ALL", "AND", "ARRAY", "AS", "ASC", "BETWEEN", "BY", "CASE", "CAST",
    "CREATE", "CROSS", "DEFAULT", "DELETE", "DESC", "DIMENSION", "DISTINCT",
    "DROP", "ELSE", "END", "EXISTS", "FALSE", "FROM", "GROUP", "HAVING",
    "IF", "IN", "INNER", "INSERT", "INTO", "IS", "JOIN", "LEFT", "LIKE",
    "LIMIT", "NOT", "NULL", "OFFSET", "ON", "OR", "ORDER", "OUTER",
    "SELECT", "SET", "TABLE", "THEN", "TRUE", "UPDATE", "VALUES", "WHEN",
    "WHERE",
}

_TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+|--[^\n]*|/\*.*?\*/)
    | (?P<number>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?)
    | (?P<string>'(?:[^']|'')*')
    | (?P<qident>"(?:[^"]|"")*")
    | (?P<ident>[A-Za-z_][A-Za-z0-9_$]*)
    | (?P<op><=|>=|<>|!=|\|\||[=<>+\-*/%(),.;:\[\]])
    """,
    re.VERBOSE | re.DOTALL,
)


class Token(NamedTuple):
    kind: str  # keyword | ident | number | string | op | eof
    value: str
    pos: int


def tokenize(text: str) -> List[Token]:
    """Tokenize SQL text; comments and whitespace are dropped."""
    tokens: List[Token] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if not m:
            raise SQLSyntaxError(
                f"unexpected character at offset {pos}: {text[pos:pos+20]!r}"
            )
        kind = m.lastgroup or ""
        value = m.group(0)
        if kind == "ws":
            pass
        elif kind == "number":
            tokens.append(Token("number", value, pos))
        elif kind == "string":
            tokens.append(Token("string", value[1:-1].replace("''", "'"), pos))
        elif kind == "qident":
            tokens.append(
                Token("ident", value[1:-1].replace('""', '"'), pos)
            )
        elif kind == "ident":
            upper = value.upper()
            if upper in KEYWORDS:
                tokens.append(Token("keyword", upper, pos))
            else:
                tokens.append(Token("ident", value.lower(), pos))
        else:
            tokens.append(Token("op", value, pos))
        pos = m.end()
    tokens.append(Token("eof", "", pos))
    return tokens
