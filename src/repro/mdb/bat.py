"""Binary Association Tables — MonetDB's column primitive.

A BAT is logically a mapping from a dense object-id head (0..n-1) to a
typed tail.  Here the head is implicit and the tail is a numpy array plus a
validity mask; all bulk operators (select, take, arithmetic) work
column-at-a-time, which is exactly the execution model the SQL layer
compiles to.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional

import numpy as np

from repro.mdb.errors import ExecutionError
from repro.mdb.types import ColumnType

_GROWTH = 1.6
_MIN_CAPACITY = 16


class BAT:
    """An append-only typed column with NULL support."""

    def __init__(self, ctype: ColumnType, values: Optional[Iterable] = None):
        self.ctype = ctype
        self._data = ctype.empty_array(_MIN_CAPACITY)
        self._valid = np.ones(_MIN_CAPACITY, dtype=bool)
        self._size = 0
        # True while _data/_valid are borrowed read-only buffers (e.g.
        # snapshot memmaps adopted without copy); the first in-place
        # write materialises private copies (copy-on-write).
        self._frozen = False
        if values is not None:
            self.extend(values)

    @classmethod
    def adopt(
        cls, ctype: ColumnType, data: np.ndarray, valid: np.ndarray
    ) -> "BAT":
        """Wrap existing ``(data, valid)`` buffers without copying.

        The buffers may be read-only (snapshot memmaps): scans serve
        straight from them, and the first mutation triggers a private
        copy.  ``len(data)`` rows are adopted exactly — no spare
        capacity.
        """
        if len(data) != len(valid):
            raise ExecutionError(
                f"adopt: {len(data)} values vs {len(valid)} validity bits"
            )
        out = cls.__new__(cls)
        out.ctype = ctype
        out._data = data
        out._valid = valid
        out._size = len(data)
        out._frozen = not (
            data.flags.writeable and valid.flags.writeable
        )
        return out

    @property
    def frozen(self) -> bool:
        """True while the column still serves from borrowed read-only
        buffers (no mutation has happened since adoption)."""
        return self._frozen

    def _thaw(self) -> None:
        """Materialise private writable copies of borrowed buffers."""
        if not self._frozen:
            return
        self._data = np.array(self._data, dtype=self._data.dtype, copy=True)
        self._valid = np.array(self._valid, dtype=bool, copy=True)
        self._frozen = False

    # -- mutation ------------------------------------------------------------

    def append(self, value: Any) -> None:
        """Append one (possibly None) value."""
        self._reserve(self._size + 1)
        coerced = self.ctype.coerce(value)
        if coerced is None:
            self._valid[self._size] = False
            # Keep a benign in-band filler for the numpy slot.
            self._data[self._size] = self._filler()
        else:
            self._valid[self._size] = True
            self._data[self._size] = coerced
        self._size += 1

    def extend(self, values: Iterable) -> None:
        for v in values:
            self.append(v)

    def extend_arrays(self, data: np.ndarray, valid: np.ndarray) -> None:
        """Vectorised bulk append of pre-coerced ``(data, valid)`` arrays.

        ``data`` must already match the column dtype (NULL slots hold a
        benign filler); this is the segment-replay and bulk-ingest fast
        path — no per-value coercion.
        """
        n = len(data)
        if n == 0:
            return
        if len(valid) != n:
            raise ExecutionError(
                f"extend_arrays: {n} values vs {len(valid)} validity bits"
            )
        self._reserve(self._size + n)
        self._data[self._size:self._size + n] = data
        self._valid[self._size:self._size + n] = valid
        self._size += n

    def set(self, position: int, value: Any) -> None:
        """Overwrite the value at ``position``."""
        self._check_position(position)
        self._thaw()
        coerced = self.ctype.coerce(value)
        if coerced is None:
            self._valid[position] = False
            self._data[position] = self._filler()
        else:
            self._valid[position] = True
            self._data[position] = coerced

    def _filler(self) -> Any:
        if self.ctype.dtype == np.dtype(object):
            return None
        return self.ctype.dtype.type(0)

    def _reserve(self, needed: int) -> None:
        cap = len(self._data)
        if needed <= cap and not self._frozen:
            return
        new_cap = max(int(cap * _GROWTH) + 1, needed, _MIN_CAPACITY)
        data = self.ctype.empty_array(new_cap)
        data[: self._size] = self._data[: self._size]
        valid = np.ones(new_cap, dtype=bool)
        valid[: self._size] = self._valid[: self._size]
        self._data = data
        self._valid = valid
        self._frozen = False

    def _check_position(self, position: int) -> None:
        if not 0 <= position < self._size:
            raise ExecutionError(
                f"position {position} out of range [0, {self._size})"
            )

    # -- bulk access -------------------------------------------------------

    @property
    def values(self) -> np.ndarray:
        """The live tail as a numpy view (no copy)."""
        return self._data[: self._size]

    @property
    def validity(self) -> np.ndarray:
        """Boolean mask, False where the value is NULL."""
        return self._valid[: self._size]

    def get(self, position: int) -> Any:
        """The Python value at ``position`` (None when NULL)."""
        self._check_position(position)
        if not self._valid[position]:
            return None
        value = self._data[position]
        if isinstance(value, np.generic):
            return value.item()
        return value

    def to_list(self) -> List[Any]:
        return [self.get(i) for i in range(self._size)]

    def take(self, positions: np.ndarray) -> "BAT":
        """A new BAT with the rows at ``positions`` (MonetDB 'fetchjoin')."""
        out = BAT(self.ctype)
        n = len(positions)
        out._reserve(n)
        out._data[:n] = self._data[: self._size][positions]
        out._valid[:n] = self._valid[: self._size][positions]
        out._size = n
        return out

    def select_mask(self, mask: np.ndarray) -> np.ndarray:
        """Positions where ``mask`` holds (a candidate list)."""
        return np.nonzero(mask)[0]

    def copy(self) -> "BAT":
        out = BAT(self.ctype)
        out._reserve(self._size)
        out._data[: self._size] = self._data[: self._size]
        out._valid[: self._size] = self._valid[: self._size]
        out._size = self._size
        return out

    # -- protocol -------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Any]:
        for i in range(self._size):
            yield self.get(i)

    def __repr__(self) -> str:
        return f"<BAT {self.ctype.name} n={self._size}>"
