"""Database persistence: dump/load a whole instance to a directory.

MonetDB persists its BATs to disk; this module does the moral equivalent
for :class:`~repro.mdb.database.Database` — one ``.npz`` per relation
(column data + validity masks) plus a JSON catalog manifest.  Object
columns (strings, timestamps) are stored as JSON-encoded string arrays.

Layout::

    <directory>/
      manifest.json
      table_<name>.npz
      array_<name>.npz
"""

from __future__ import annotations

import json
import os
import shutil
from datetime import datetime
from typing import Any, Dict, List

import numpy as np

from repro.mdb.database import Database
from repro.mdb.errors import MDBError
from repro.mdb.sciql import Dimension, SciArray
from repro.mdb.table import Column, Table
from repro.mdb.types import ColumnType, type_by_name

_FORMAT_VERSION = 1


class PersistenceError(MDBError):
    """Raised for unreadable or incompatible dump directories."""


def encode_object_column(values, valid) -> np.ndarray:
    """Object column → JSON-string array ("" for NULLs).

    Shared with the snapshot/WAL storage layer, which persists object
    columns through exactly this encoding.
    """
    out = np.empty(len(values), dtype=object)
    for i, (value, ok) in enumerate(zip(values, valid)):
        if not ok:
            out[i] = ""
            continue
        if isinstance(value, datetime):
            out[i] = json.dumps({"t": value.isoformat()})
        else:
            out[i] = json.dumps(value)
    return out.astype(str)


def decode_object_cell(text: str, ctype: ColumnType):
    doc = json.loads(text)
    if isinstance(doc, dict) and "t" in doc:
        return datetime.fromisoformat(doc["t"])
    return ctype.coerce(doc)


# Backwards-compatible aliases (pre-storage-engine private names).
_encode_object_column = encode_object_column
_decode_object_cell = decode_object_cell


def dump_database(db: Database, directory: str) -> None:
    """Write the whole database (tables + arrays) under ``directory``.

    The dump is **atomic and self-cleaning**: everything is written into
    a temporary sibling directory which then replaces ``directory`` in
    one rename.  A crash mid-dump leaves the previous dump untouched,
    and re-dumping after a ``DROP`` cannot leave stale
    ``table_*.npz``/``array_*.npz`` files behind (loading a reused
    directory used to resurrect mixed old/new state).
    """
    directory = os.path.abspath(directory)
    parent = os.path.dirname(directory)
    if parent:
        os.makedirs(parent, exist_ok=True)
    tmp_dir = directory + ".dump-tmp"
    if os.path.exists(tmp_dir):
        shutil.rmtree(tmp_dir)
    os.makedirs(tmp_dir)
    try:
        _write_dump(db, tmp_dir)
        if os.path.exists(directory):
            backup = directory + ".dump-old"
            if os.path.exists(backup):
                shutil.rmtree(backup)
            os.rename(directory, backup)
            os.rename(tmp_dir, directory)
            shutil.rmtree(backup)
        else:
            os.rename(tmp_dir, directory)
    finally:
        if os.path.exists(tmp_dir):
            shutil.rmtree(tmp_dir, ignore_errors=True)


def _write_dump(db: Database, directory: str) -> None:
    manifest: Dict[str, Any] = {
        "format_version": _FORMAT_VERSION,
        "tables": [],
        "arrays": [],
    }
    for name in db.tables():
        table = db.table(name)
        manifest["tables"].append(
            {
                "name": name,
                "columns": [
                    {"name": c.name, "type": c.ctype.name}
                    for c in table.columns
                ],
                "rows": len(table),
            }
        )
        payload: Dict[str, np.ndarray] = {}
        for column in table.columns:
            bat = table.column(column.name)
            data = bat.values
            valid = bat.validity
            if data.dtype == np.dtype(object):
                payload[f"data_{column.name}"] = encode_object_column(
                    data, valid
                )
            else:
                payload[f"data_{column.name}"] = data
            payload[f"valid_{column.name}"] = valid
        np.savez(os.path.join(directory, f"table_{name}.npz"), **payload)
    for name in db.arrays():
        array = db.array(name)
        manifest["arrays"].append(
            {
                "name": name,
                "dimensions": [
                    {"name": d.name, "start": d.start, "stop": d.stop}
                    for d in array.dimensions
                ],
                "attributes": [
                    {"name": n, "type": t.name}
                    for n, t in array.attributes
                ],
            }
        )
        payload = {}
        for attr, ctype in array.attributes:
            plane = array.attribute(attr)
            if plane.dtype == np.dtype(object):
                raise PersistenceError(
                    f"array {name!r} attribute {attr!r} has object "
                    "storage; only numeric/boolean arrays are dumpable"
                )
            payload[f"attr_{attr}"] = plane
        np.savez(os.path.join(directory, f"array_{name}.npz"), **payload)
    with open(os.path.join(directory, "manifest.json"), "w") as f:
        json.dump(manifest, f, indent=2)
        f.flush()
        os.fsync(f.fileno())


def load_database(directory: str) -> Database:
    """Rebuild a database from a :func:`dump_database` directory."""
    manifest_path = os.path.join(directory, "manifest.json")
    if not os.path.exists(manifest_path):
        raise PersistenceError(f"no manifest.json in {directory!r}")
    with open(manifest_path) as f:
        manifest = json.load(f)
    version = manifest.get("format_version")
    if version != _FORMAT_VERSION:
        raise PersistenceError(
            f"unsupported dump format {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    db = Database()
    for spec in manifest["tables"]:
        columns = [
            Column(c["name"], type_by_name(c["type"]))
            for c in spec["columns"]
        ]
        table = Table(spec["name"], columns)
        archive = np.load(
            os.path.join(directory, f"table_{spec['name']}.npz"),
            allow_pickle=False,
        )
        rows: List[List[Any]] = [
            [None] * len(columns) for _ in range(spec["rows"])
        ]
        for j, column in enumerate(columns):
            data = archive[f"data_{column.name}"]
            valid = archive[f"valid_{column.name}"]
            for i in range(spec["rows"]):
                if not valid[i]:
                    continue
                if column.ctype.dtype == np.dtype(object):
                    rows[i][j] = decode_object_cell(
                        str(data[i]), column.ctype
                    )
                else:
                    rows[i][j] = data[i].item()
        table.insert_rows(rows)
        db.catalog.add_table(table)
    for spec in manifest["arrays"]:
        dims = [
            Dimension(d["name"], d["start"], d["stop"])
            for d in spec["dimensions"]
        ]
        attrs = [
            (a["name"], type_by_name(a["type"]))
            for a in spec["attributes"]
        ]
        array = SciArray(spec["name"], dims, attrs)
        archive = np.load(
            os.path.join(directory, f"array_{spec['name']}.npz"),
            allow_pickle=False,
        )
        for attr_name, _ in attrs:
            array.set_attribute(attr_name, archive[f"attr_{attr_name}"])
        db.catalog.add_array(array)
    return db
