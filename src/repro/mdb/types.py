"""Column types and their numpy storage mapping.

The store keeps every column as a numpy array; NULLs are represented with a
parallel boolean validity mask (MonetDB uses in-band nil values — a mask is
the same idea without magic numbers).
"""

from __future__ import annotations

from datetime import datetime
from typing import Any, Dict, Optional

import numpy as np

from repro.mdb.errors import SQLTypeError


class ColumnType:
    """A storage type: SQL name, numpy dtype and a Python coercion."""

    def __init__(self, name: str, dtype: np.dtype, py_type: type):
        self.name = name
        self.dtype = np.dtype(dtype)
        self.py_type = py_type

    def coerce(self, value: Any) -> Any:
        """Convert ``value`` to this type; raises :class:`SQLTypeError`."""
        if value is None:
            return None
        try:
            if self.py_type is bool:
                if isinstance(value, str):
                    return value.strip().lower() in ("true", "1", "t")
                return bool(value)
            if self.py_type is datetime:
                if isinstance(value, datetime):
                    return value
                return datetime.fromisoformat(str(value))
            return self.py_type(value)
        except (TypeError, ValueError) as exc:
            raise SQLTypeError(
                f"cannot convert {value!r} to {self.name}"
            ) from exc

    def empty_array(self, capacity: int) -> np.ndarray:
        return np.empty(capacity, dtype=self.dtype)

    def __repr__(self) -> str:
        return f"ColumnType({self.name})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ColumnType) and self.name == other.name

    def __hash__(self) -> int:
        return hash(self.name)


INT = ColumnType("INT", np.dtype(np.int64), int)
DOUBLE = ColumnType("DOUBLE", np.dtype(np.float64), float)
STRING = ColumnType("STRING", np.dtype(object), str)
BOOL = ColumnType("BOOL", np.dtype(bool), bool)
TIMESTAMP = ColumnType("TIMESTAMP", np.dtype(object), datetime)

_BY_NAME: Dict[str, ColumnType] = {
    "INT": INT,
    "INTEGER": INT,
    "BIGINT": INT,
    "SMALLINT": INT,
    "DOUBLE": DOUBLE,
    "FLOAT": DOUBLE,
    "REAL": DOUBLE,
    "DECIMAL": DOUBLE,
    "STRING": STRING,
    "VARCHAR": STRING,
    "TEXT": STRING,
    "CHAR": STRING,
    "CLOB": STRING,
    "BOOL": BOOL,
    "BOOLEAN": BOOL,
    "TIMESTAMP": TIMESTAMP,
    "DATE": TIMESTAMP,
}


def type_by_name(name: str) -> ColumnType:
    """Resolve a SQL type name (case-insensitive, sizes ignored)."""
    base = name.strip().upper().split("(")[0].strip()
    try:
        return _BY_NAME[base]
    except KeyError:
        raise SQLTypeError(f"unknown SQL type {name!r}") from None


def infer_type(value: Any) -> Optional[ColumnType]:
    """Guess the column type of a Python value (None for NULL)."""
    if value is None:
        return None
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, (int, np.integer)):
        return INT
    if isinstance(value, (float, np.floating)):
        return DOUBLE
    if isinstance(value, datetime):
        return TIMESTAMP
    return STRING
