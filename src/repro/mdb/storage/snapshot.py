"""Snapshot format: one immutable directory per checkpoint.

Layout::

    snap-<nnnnnn>/
      manifest.json                     # schema + meta, written last
      t_<table>__<column>.data.npy      # raw column values
      t_<table>__<column>.valid.npy     # NULL mask
      a_<array>__<attr>.npy             # attribute plane

Columns are raw ``.npy`` files (never ``.npz``) so numeric columns can
be **memmapped** on load — a cold open of a multi-gigabyte catalog maps
the segments read-only and pays for pages only as scans touch them.
Object columns (strings, timestamps) are stored as JSON-string arrays
(the :mod:`repro.mdb.persistence` encoding) and materialised on load.

A snapshot directory is written under a temporary name and renamed into
place by the engine only after every file and the directory itself have
been fsynced, so a crash mid-snapshot leaves no half-written snapshot
reachable from ``CURRENT``.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Tuple

import numpy as np

from repro import faults
from repro.mdb.bat import BAT
from repro.mdb.database import Database
from repro.mdb.persistence import (
    decode_object_cell,
    encode_object_column,
)
from repro.mdb.sciql import Dimension, SciArray
from repro.mdb.storage.records import StorageError
from repro.mdb.table import Column, Table
from repro.mdb.types import type_by_name

SNAPSHOT_FORMAT = 1


def fsync_path(path: str) -> None:
    """fsync one file (or directory) by descriptor."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _save_array(directory: str, name: str, data: np.ndarray) -> None:
    path = os.path.join(directory, name)
    with open(path, "wb") as f:
        np.save(f, data, allow_pickle=False)
        f.flush()
        os.fsync(f.fileno())


def write_snapshot(
    db: Database, meta: Dict[str, Any], directory: str
) -> None:
    """Write the whole database + meta map into ``directory``.

    The ``storage.snapshot`` injection point fires before any file is
    written: an injected crash aborts the checkpoint with the previous
    snapshot (and its WAL) untouched.
    """
    faults.maybe_fail("storage.snapshot")
    os.makedirs(directory, exist_ok=True)
    manifest: Dict[str, Any] = {
        "format": SNAPSHOT_FORMAT,
        "meta": dict(meta),
        "tables": [],
        "arrays": [],
    }
    for name in db.tables():
        table = db.table(name)
        manifest["tables"].append(
            {
                "name": name,
                "columns": [
                    {"name": c.name, "type": c.ctype.name}
                    for c in table.columns
                ],
                "rows": len(table),
            }
        )
        for column in table.columns:
            bat = table.column(column.name)
            data = bat.values
            if data.dtype == np.dtype(object):
                data = encode_object_column(data, bat.validity)
            _save_array(directory, f"t_{name}__{column.name}.data.npy", data)
            _save_array(
                directory,
                f"t_{name}__{column.name}.valid.npy",
                bat.validity,
            )
    for name in db.arrays():
        array = db.array(name)
        manifest["arrays"].append(
            {
                "name": name,
                "dimensions": [
                    {"name": d.name, "start": d.start, "stop": d.stop}
                    for d in array.dimensions
                ],
                "attributes": [
                    {"name": n, "type": t.name}
                    for n, t in array.attributes
                ],
            }
        )
        for attr, ctype in array.attributes:
            plane = array.attribute(attr)
            if plane.dtype == np.dtype(object):
                flat = plane.reshape(-1)
                valid = np.fromiter(
                    (v is not None for v in flat),
                    count=flat.size,
                    dtype=bool,
                )
                plane = encode_object_column(flat, valid).reshape(
                    plane.shape
                )
            _save_array(directory, f"a_{name}__{attr}.npy", plane)
    manifest_path = os.path.join(directory, "manifest.json")
    with open(manifest_path, "w") as f:
        json.dump(manifest, f, indent=2, sort_keys=True)
        f.flush()
        os.fsync(f.fileno())
    fsync_path(directory)


def _load_column(
    directory: str, table: str, column: Column, rows: int
) -> BAT:
    data_path = os.path.join(
        directory, f"t_{table}__{column.name}.data.npy"
    )
    valid_path = os.path.join(
        directory, f"t_{table}__{column.name}.valid.npy"
    )
    # Zero-length arrays cannot be memmapped; load them eagerly.
    mmap_mode = "r" if rows else None
    valid = np.load(valid_path, mmap_mode=mmap_mode, allow_pickle=False)
    if column.ctype.dtype == np.dtype(object):
        encoded = np.load(data_path, allow_pickle=False)
        data = np.empty(rows, dtype=object)
        for i in range(rows):
            data[i] = (
                decode_object_cell(str(encoded[i]), column.ctype)
                if valid[i]
                else None
            )
        # Object columns are materialised; copy the mask so the BAT is
        # immediately writable.
        return BAT.adopt(column.ctype, data, np.array(valid, dtype=bool))
    data = np.load(data_path, mmap_mode=mmap_mode, allow_pickle=False)
    if len(data) != rows or len(valid) != rows:
        raise StorageError(
            f"snapshot column {table}.{column.name} has "
            f"{len(data)} values for {rows} rows"
        )
    return BAT.adopt(column.ctype, data, valid)


def load_snapshot(directory: str) -> Tuple[Database, Dict[str, Any]]:
    """Rebuild ``(database, meta)`` from a snapshot directory.

    Numeric columns come back as read-only memmaps adopted by
    copy-on-write BATs: scans read straight from the page cache, and
    the first mutation of a column materialises it in memory.
    """
    manifest_path = os.path.join(directory, "manifest.json")
    if not os.path.exists(manifest_path):
        raise StorageError(f"no manifest.json in snapshot {directory!r}")
    with open(manifest_path) as f:
        manifest = json.load(f)
    if manifest.get("format") != SNAPSHOT_FORMAT:
        raise StorageError(
            f"unsupported snapshot format {manifest.get('format')!r} "
            f"(expected {SNAPSHOT_FORMAT})"
        )
    db = Database()
    for spec in manifest["tables"]:
        columns = [
            Column(c["name"], type_by_name(c["type"]))
            for c in spec["columns"]
        ]
        table = Table(spec["name"], columns)
        for column in columns:
            table._bats[column.name] = _load_column(
                directory, spec["name"], column, spec["rows"]
            )
        db.catalog.add_table(table)
    for spec in manifest["arrays"]:
        dims = [
            Dimension(d["name"], d["start"], d["stop"])
            for d in spec["dimensions"]
        ]
        attrs = [
            (a["name"], type_by_name(a["type"]))
            for a in spec["attributes"]
        ]
        array = SciArray(spec["name"], dims, attrs)
        for attr_name, ctype in attrs:
            plane = np.load(
                os.path.join(directory, f"a_{spec['name']}__{attr_name}.npy"),
                allow_pickle=False,
            )
            if ctype.dtype == np.dtype(object):
                flat = plane.reshape(-1)
                decoded = np.empty(flat.size, dtype=object)
                for i in range(flat.size):
                    text = str(flat[i])
                    decoded[i] = (
                        decode_object_cell(text, ctype) if text else None
                    )
                plane = decoded.reshape(plane.shape)
            array._values[attr_name] = plane.astype(ctype.dtype, copy=True)
        db.catalog.add_array(array)
    return db, dict(manifest.get("meta", {}))
