"""Durable column-store storage: snapshots, WAL, crash recovery.

The public surface:

* :class:`StorageEngine` / :func:`open_database` — open a durable
  database directory, recovering snapshot + WAL into a live, journaled
  :class:`~repro.mdb.database.Database`;
* :class:`WriteAheadLog` — the framed, fsync-ordered mutation log;
* :func:`write_snapshot` / :func:`load_snapshot` — the checkpoint format
  (raw ``.npy`` columns, memmapped on load);
* :class:`StorageError` — the storage-layer error type.

Chaos-testing hooks: the ``storage.wal``, ``storage.segment`` and
``storage.snapshot`` fault sites (:mod:`repro.faults`) fire before any
byte of their write reaches disk, so an injected crash at any of them
recovers to exactly the acknowledged state.
"""

from repro.mdb.storage.engine import (
    DATA_DIR_ENV,
    SEGMENT_THRESHOLD,
    StorageEngine,
    open_database,
)
from repro.mdb.storage.records import StorageError
from repro.mdb.storage.snapshot import (
    SNAPSHOT_FORMAT,
    load_snapshot,
    write_snapshot,
)
from repro.mdb.storage.wal import (
    SYNC_POLICIES,
    WAL_SYNC_ENV,
    WriteAheadLog,
    resolve_sync_policy,
)

__all__ = [
    "DATA_DIR_ENV",
    "SEGMENT_THRESHOLD",
    "SNAPSHOT_FORMAT",
    "SYNC_POLICIES",
    "StorageEngine",
    "StorageError",
    "WAL_SYNC_ENV",
    "WriteAheadLog",
    "load_snapshot",
    "open_database",
    "resolve_sync_policy",
    "write_snapshot",
]
