"""The durable storage engine: snapshot + WAL + column segments.

Directory layout (``REPRO_DATA_DIR`` or an explicit path)::

    <data_dir>/
      CURRENT                 # names the live snapshot, e.g. "snap-000003"
      snap-000003/            # immutable checkpoint (see snapshot.py)
      wal-000003.log          # mutations since that checkpoint
      segments/seg-00000017.npz   # bulk column segments the WAL references

Every logical mutation is **exactly one WAL record** (bulk payloads live
in side segments that are fsynced *before* the record referencing them),
so recovery — load ``CURRENT``'s snapshot, replay its WAL, truncate the
first torn frame — reconstructs precisely the acknowledged state: no
partial rows, no lost acknowledged writes.

Write ordering per mutation::

    1. apply in memory (validation/coercion happens here)
    2. [bulk only] write + fsync the segment file   (storage.segment)
    3. append + fsync the WAL record                (storage.wal)
    4. return to caller  -> the write is acknowledged

A crash (injected ``hard`` fault, or a real kill) between 1 and 3 loses
an *unacknowledged* write — the process memory is gone anyway — and can
never surface a partial one.  Checkpoints write a fresh snapshot under a
temporary name, fsync it, rename it into place, create the paired empty
WAL and only then flip ``CURRENT`` (atomic ``rename``); the previous
snapshot + WAL stay authoritative until that instant
(``storage.snapshot`` fires before any snapshot byte is written).
"""

from __future__ import annotations

import os
import shutil
import threading
import time
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro import faults, obs, resilience
from repro.mdb.database import Database
from repro.mdb.persistence import (
    decode_object_cell,
    encode_object_column,
)
from repro.mdb.sciql import Dimension, SciArray
from repro.mdb.storage.records import (
    StorageError,
    decode_row,
    decode_value,
    encode_row,
    encode_value,
)
from repro.mdb.storage.snapshot import (
    fsync_path,
    load_snapshot,
    write_snapshot,
)
from repro.mdb.storage.wal import WriteAheadLog, resolve_sync_policy
from repro.mdb.table import Column, Table
from repro.mdb.types import type_by_name

#: Environment variable naming the default durable data directory.
DATA_DIR_ENV = "REPRO_DATA_DIR"

#: Row batches at or above this size are journaled as binary column
#: segments instead of JSON rows.
SEGMENT_THRESHOLD = 256


def _snap_name(snap_id: int) -> str:
    return f"snap-{snap_id:06d}"


def _wal_name(snap_id: int) -> str:
    return f"wal-{snap_id:06d}.log"


class StorageEngine:
    """Owns one durable database directory.

    ::

        engine = StorageEngine("/data/veo").open()
        db = engine.db                  # a live, journaled Database
        db.execute("CREATE TABLE ...")  # every mutation hits the WAL
        engine.checkpoint()             # fold the WAL into a snapshot
        engine.close()

    All mutations issued through the returned database — SQL DML/DDL,
    the bulk ``insert_rows`` / ``insert_columns`` fast paths, SciQL
    array updates — are journaled transparently via the table/catalog/
    array hooks this engine attaches.
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        sync_policy: Optional[str] = None,
        segment_threshold: int = SEGMENT_THRESHOLD,
    ):
        directory = directory or os.environ.get(DATA_DIR_ENV)
        if not directory:
            raise StorageError(
                "StorageEngine needs a directory (argument or "
                f"{DATA_DIR_ENV})"
            )
        self.directory = os.path.abspath(directory)
        self.sync_policy = resolve_sync_policy(sync_policy)
        self.segment_threshold = int(segment_threshold)
        self.db: Optional[Database] = None
        self.meta: Dict[str, Any] = {}
        self.snap_id = 0
        self.last_recovery_seconds: Optional[float] = None
        self.replayed_records = 0
        self._wal: Optional[WriteAheadLog] = None
        self._next_seg = 0
        self._replaying = False
        self._lock = threading.RLock()
        self.retry = resilience.DEFAULT_RETRY

    # -- lifecycle --------------------------------------------------------

    def open(self) -> "StorageEngine":
        """Recover the durable state and attach journaling hooks."""
        started = time.perf_counter()
        os.makedirs(self.directory, exist_ok=True)
        os.makedirs(os.path.join(self.directory, "segments"), exist_ok=True)
        current = self._read_current()
        if current is None:
            self.snap_id = 0
            self.db = Database()
            self.meta = {}
        else:
            self.snap_id = current
            self.db, self.meta = load_snapshot(
                os.path.join(self.directory, _snap_name(current))
            )
        self._next_seg = self._scan_next_segment()
        self._wal = WriteAheadLog(
            os.path.join(self.directory, _wal_name(self.snap_id)),
            sync_policy=self.sync_policy,
        )
        self._replaying = True
        try:
            self.replayed_records = self._wal.replay(self._apply_record)
        finally:
            self._replaying = False
        self._wal.open_for_append()
        self._attach(self.db)
        self.last_recovery_seconds = time.perf_counter() - started
        obs.counter("storage.opens").inc()
        obs.counter("storage.replayed_records").inc(self.replayed_records)
        return self

    def close(self) -> None:
        """Flush and release the WAL (the database object stays usable
        in memory, but further mutations raise)."""
        with self._lock:
            if self._wal is not None:
                self._wal.close()
                self._wal = None
            # Journal hooks stay attached: a mutation after close() must
            # raise StorageError, never silently skip the journal.

    def sync(self) -> None:
        """Force buffered WAL appends to disk (``batch`` policy)."""
        with self._lock:
            if self._wal is not None:
                self._wal.sync()

    @property
    def is_open(self) -> bool:
        return self._wal is not None and self._wal.is_open

    @property
    def wal_records(self) -> int:
        """Records appended to the live WAL since open (diagnostics)."""
        return self._wal.appended if self._wal is not None else 0

    # -- meta -------------------------------------------------------------

    def get_meta(self, key: str, default: Any = None) -> Any:
        return self.meta.get(key, default)

    def set_meta(self, key: str, value: Any) -> None:
        """Durably set one metadata key (journaled like any write)."""
        with self._lock:
            self.meta[key] = value
            self._append({"op": "meta", "k": key, "v": encode_value(value)})

    # -- checkpoint -------------------------------------------------------

    def checkpoint(self) -> str:
        """Fold the WAL into a fresh snapshot; returns its directory.

        The previous snapshot + WAL remain the recovery source until the
        atomic ``CURRENT`` flip; afterwards they (and consumed segments)
        are deleted.
        """
        with self._lock:
            if self.db is None or self._wal is None:
                raise StorageError("engine is not open")
            new_id = self.snap_id + 1
            snap_dir = os.path.join(self.directory, _snap_name(new_id))
            tmp_dir = snap_dir + ".tmp"
            if os.path.exists(tmp_dir):
                shutil.rmtree(tmp_dir)

            def attempt() -> None:
                write_snapshot(self.db, self.meta, tmp_dir)

            resilience.call_with_retry(
                attempt, self.retry, label="storage.snapshot"
            )
            if os.path.exists(snap_dir):
                shutil.rmtree(snap_dir)
            os.rename(tmp_dir, snap_dir)
            fsync_path(self.directory)
            # Pair the new snapshot with an empty WAL *before* CURRENT
            # flips: recovery never sees a snapshot without its log.
            self._wal.close()
            new_wal = WriteAheadLog(
                os.path.join(self.directory, _wal_name(new_id)),
                sync_policy=self.sync_policy,
            )
            with open(new_wal.path, "wb") as f:
                f.flush()
                os.fsync(f.fileno())
            new_wal.open_for_append()
            self._write_current(new_id)
            old_id = self.snap_id
            old_wal_path = self._wal.path
            self.snap_id = new_id
            self._wal = new_wal
            self._cleanup(old_id, old_wal_path)
            obs.counter("storage.checkpoints").inc()
            return snap_dir

    def _cleanup(self, old_id: int, old_wal_path: str) -> None:
        """Best-effort removal of superseded snapshot/WAL/segments."""
        old_snap = os.path.join(self.directory, _snap_name(old_id))
        for path in (old_wal_path,):
            if os.path.exists(path):
                os.remove(path)
        if os.path.isdir(old_snap):
            shutil.rmtree(old_snap)
        # The new snapshot holds the data; all segments are consumed.
        seg_dir = os.path.join(self.directory, "segments")
        for name in os.listdir(seg_dir):
            os.remove(os.path.join(seg_dir, name))
        self._next_seg = 0
        # Stale tmp dirs from crashed checkpoints.
        for name in os.listdir(self.directory):
            if name.endswith(".tmp"):
                shutil.rmtree(
                    os.path.join(self.directory, name), ignore_errors=True
                )

    # -- CURRENT pointer --------------------------------------------------

    def _current_path(self) -> str:
        return os.path.join(self.directory, "CURRENT")

    def _read_current(self) -> Optional[int]:
        path = self._current_path()
        if not os.path.exists(path):
            return None
        with open(path) as f:
            name = f.read().strip()
        if not name.startswith("snap-"):
            raise StorageError(f"corrupt CURRENT pointer: {name!r}")
        return int(name[len("snap-"):])

    def _write_current(self, snap_id: int) -> None:
        path = self._current_path()
        tmp = path + ".tmp"
        with open(tmp, "w") as f:
            f.write(_snap_name(snap_id) + "\n")
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
        fsync_path(self.directory)

    # -- segments ---------------------------------------------------------

    def _scan_next_segment(self) -> int:
        seg_dir = os.path.join(self.directory, "segments")
        highest = -1
        if os.path.isdir(seg_dir):
            for name in os.listdir(seg_dir):
                if name.startswith("seg-") and name.endswith(".npz"):
                    try:
                        highest = max(highest, int(name[4:-4]))
                    except ValueError:
                        continue
        return highest + 1

    def _write_segment(self, payload: Dict[str, np.ndarray]) -> str:
        """Write one fsynced ``.npz`` segment; returns its file name.

        ``storage.segment`` fires before any byte is written; transient
        injected faults are absorbed by retrying the whole write.
        """
        with self._lock:
            name = f"seg-{self._next_seg:08d}.npz"
            self._next_seg += 1
        path = os.path.join(self.directory, "segments", name)

        def attempt() -> None:
            faults.maybe_fail("storage.segment")
            with open(path, "wb") as f:
                np.savez(f, **payload)
                f.flush()
                os.fsync(f.fileno())

        resilience.call_with_retry(
            attempt, self.retry, label="storage.segment"
        )
        return name

    def _segment_path(self, name: str) -> str:
        return os.path.join(self.directory, "segments", name)

    # -- journal hooks (called by Table / Catalog / SciArray) -------------

    def _append(self, record: dict) -> None:
        if self._replaying:
            return
        with self._lock:
            if self._wal is None:
                raise StorageError(
                    "storage engine is closed; reopen before writing"
                )
            self._wal.append(record)

    def log_create_table(self, table: Table) -> None:
        if self._replaying:
            return
        self._append(
            {
                "op": "create_table",
                "name": table.name,
                "columns": [
                    [c.name, c.ctype.name] for c in table.columns
                ],
            }
        )
        table.journal = self

    def log_drop_table(self, name: str) -> None:
        self._append({"op": "drop_table", "name": name})

    def log_create_array(self, array: SciArray) -> None:
        """One record carrying schema *and* plane segments, so a crash
        between them can never surface a half-created array."""
        if self._replaying:
            return
        planes = {
            attr: self._plane_segment(array, attr)
            for attr, _ in array.attributes
        }
        self._append(
            {
                "op": "create_array",
                "name": array.name,
                "dims": [
                    [d.name, d.start, d.stop] for d in array.dimensions
                ],
                "attrs": [[n, t.name] for n, t in array.attributes],
                "planes": planes,
            }
        )
        array.journal = self

    def log_drop_array(self, name: str) -> None:
        self._append({"op": "drop_array", "name": name})

    def log_insert(self, table: str, rows: List[List[Any]]) -> None:
        if self._replaying or not rows:
            return
        if len(rows) >= self.segment_threshold:
            table_obj = self.db.table(table)
            n = len(rows)
            prepared: Dict[str, Any] = {}
            for j, col in enumerate(table_obj.columns):
                data = col.ctype.empty_array(n)
                valid = np.empty(n, dtype=bool)
                coerce = col.ctype.coerce
                filler = (
                    None if col.ctype.dtype == np.dtype(object) else 0
                )
                for i, row in enumerate(rows):
                    value = coerce(row[j])
                    if value is None:
                        valid[i] = False
                        data[i] = filler
                    else:
                        valid[i] = True
                        data[i] = value
                prepared[col.name] = (data, valid)
            self.log_insert_columns(table, prepared, n)
            return
        self._append(
            {
                "op": "insert",
                "table": table,
                "rows": [encode_row(r) for r in rows],
            }
        )

    def log_insert_columns(
        self, table: str, prepared: Dict[str, Any], rows: int
    ) -> None:
        """Bulk append journaled as one binary segment + one record.

        ``prepared`` maps column name → ``(data, valid)`` arrays already
        coerced to the column dtype (the shape :meth:`Table.insert_columns`
        stages), so journaling is a straight binary write — this is the
        no-per-row-cost path the catalog broker's 100k-scene ingest uses.
        """
        if self._replaying or not rows:
            return
        table_obj = self.db.table(table)
        payload: Dict[str, np.ndarray] = {}
        for col in table_obj.columns:
            data, valid = prepared[col.name]
            valid = np.asarray(valid, dtype=bool)
            if col.ctype.dtype == np.dtype(object):
                payload[f"d_{col.name}"] = encode_object_column(data, valid)
            else:
                payload[f"d_{col.name}"] = np.asarray(data)
            payload[f"v_{col.name}"] = valid
        seg = self._write_segment(payload)
        self._append(
            {"op": "insert_seg", "table": table, "seg": seg, "rows": rows}
        )
        obs.counter("storage.segment_rows").inc(rows)

    def log_delete(self, table: str, positions: Sequence[int]) -> None:
        self._append(
            {
                "op": "delete",
                "table": table,
                "positions": [int(p) for p in positions],
            }
        )

    def log_update(
        self,
        table: str,
        positions: Sequence[int],
        assignments: Dict[str, List[Any]],
    ) -> None:
        self._append(
            {
                "op": "update",
                "table": table,
                "positions": [int(p) for p in positions],
                "assignments": {
                    col: encode_row(values)
                    for col, values in assignments.items()
                },
            }
        )

    def log_truncate(self, table: str) -> None:
        self._append({"op": "truncate", "table": table})

    def _plane_segment(self, array: SciArray, attr: str) -> str:
        plane = array.attribute(attr)
        if plane.dtype == np.dtype(object):
            flat = plane.reshape(-1)
            valid = np.fromiter(
                (v is not None for v in flat), count=flat.size, dtype=bool
            )
            encoded = encode_object_column(flat, valid).reshape(plane.shape)
            return self._write_segment({"plane": encoded, "object": np.array([True])})
        return self._write_segment({"plane": plane})

    def log_plane(self, array_name: str, attr: str) -> None:
        """Journal a whole attribute plane after a SciQL write."""
        if self._replaying:
            return
        array = self.db.array(array_name)
        seg = self._plane_segment(array, attr)
        self._append(
            {"op": "plane", "array": array_name, "attr": attr, "seg": seg}
        )

    def log_add_attribute(
        self, array_name: str, attr: str, type_name: str
    ) -> None:
        if self._replaying:
            return
        array = self.db.array(array_name)
        seg = self._plane_segment(array, attr)
        self._append(
            {
                "op": "add_attr",
                "array": array_name,
                "attr": attr,
                "type": type_name,
                "seg": seg,
            }
        )

    # -- recovery ---------------------------------------------------------

    def _load_segment_columns(
        self, seg: str, table: Table, rows: int
    ) -> Dict[str, Any]:
        archive = np.load(self._segment_path(seg), allow_pickle=False)
        out: Dict[str, Any] = {}
        for col in table.columns:
            data = archive[f"d_{col.name}"]
            valid = archive[f"v_{col.name}"]
            if col.ctype.dtype == np.dtype(object):
                decoded = np.empty(rows, dtype=object)
                for i in range(rows):
                    decoded[i] = (
                        decode_object_cell(str(data[i]), col.ctype)
                        if valid[i]
                        else None
                    )
                data = decoded
            out[col.name] = (data, valid.astype(bool))
        return out

    def _load_plane(self, seg: str, ctype) -> np.ndarray:
        archive = np.load(self._segment_path(seg), allow_pickle=False)
        plane = archive["plane"]
        if "object" in archive.files:
            flat = plane.reshape(-1)
            decoded = np.empty(flat.size, dtype=object)
            for i in range(flat.size):
                text = str(flat[i])
                decoded[i] = decode_object_cell(text, ctype) if text else None
            plane = decoded.reshape(plane.shape)
        return plane

    def _apply_record(self, record: dict) -> None:
        """Replay one WAL record against the in-memory database."""
        op = record["op"]
        catalog = self.db.catalog
        if op == "create_table":
            catalog.add_table(
                Table(
                    record["name"],
                    [
                        Column(n, type_by_name(t))
                        for n, t in record["columns"]
                    ],
                )
            )
        elif op == "drop_table":
            catalog.drop_table(record["name"], if_exists=True)
        elif op == "create_array":
            dims = [Dimension(n, a, b) for n, a, b in record["dims"]]
            attrs = [(n, type_by_name(t)) for n, t in record["attrs"]]
            array = SciArray(record["name"], dims, attrs)
            for attr, ctype in attrs:
                plane = self._load_plane(record["planes"][attr], ctype)
                array._values[attr] = plane.astype(ctype.dtype, copy=True)
            catalog.add_array(array)
        elif op == "drop_array":
            catalog.drop_array(record["name"], if_exists=True)
        elif op == "insert":
            self.db.table(record["table"]).insert_rows(
                [decode_row(r) for r in record["rows"]]
            )
        elif op == "insert_seg":
            table = self.db.table(record["table"])
            columns = self._load_segment_columns(
                record["seg"], table, record["rows"]
            )
            for name, (data, valid) in columns.items():
                table.column(name).extend_arrays(data, valid)
        elif op == "delete":
            self.db.table(record["table"]).delete_positions(
                np.asarray(record["positions"], dtype=np.int64)
            )
        elif op == "update":
            self.db.table(record["table"]).update_positions(
                np.asarray(record["positions"], dtype=np.int64),
                {
                    col: decode_row(values)
                    for col, values in record["assignments"].items()
                },
            )
        elif op == "truncate":
            self.db.table(record["table"]).truncate()
        elif op == "plane":
            array = self.db.array(record["array"])
            ctype = array.attribute_type(record["attr"])
            plane = self._load_plane(record["seg"], ctype)
            array._values[record["attr"].lower()] = plane.astype(
                ctype.dtype, copy=True
            )
        elif op == "add_attr":
            array = self.db.array(record["array"])
            ctype = type_by_name(record["type"])
            array.add_attribute(record["attr"], ctype)
            plane = self._load_plane(record["seg"], ctype)
            array._values[record["attr"].lower()] = plane.astype(
                ctype.dtype, copy=True
            )
        elif op == "meta":
            self.meta[record["k"]] = decode_value(record["v"])
        else:
            raise StorageError(f"unknown WAL record op {op!r}")

    # -- hook management --------------------------------------------------

    def _attach(self, db: Database) -> None:
        db.catalog.journal = self
        for name in db.tables():
            db.table(name).journal = self
        for name in db.arrays():
            db.array(name).journal = self
        db.engine = self

    def __repr__(self) -> str:
        state = "open" if self.is_open else "closed"
        return (
            f"<StorageEngine {self.directory} {state} "
            f"snap={self.snap_id} sync={self.sync_policy}>"
        )


def open_database(
    directory: Optional[str] = None,
    sync_policy: Optional[str] = None,
) -> StorageEngine:
    """Open (recovering if needed) a durable database directory."""
    return StorageEngine(directory, sync_policy=sync_policy).open()
