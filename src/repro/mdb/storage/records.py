"""WAL record framing and value codecs.

A WAL is a sequence of self-delimiting frames::

    [u32 payload length][u32 crc32(payload)][payload bytes]

The payload is canonical JSON (sorted keys, no whitespace).  A frame is
valid only when its full length is present *and* the CRC matches, so a
torn append — a crash mid-write — yields an invalid tail that recovery
discards instead of half-applying.  Everything before the first invalid
frame is exactly the set of acknowledged records.

Cell values cross the JSON boundary with one tagged escape: a
``datetime`` becomes ``{"t": "<isoformat>"}`` (mirroring the
``.npz``-dump encoding in :mod:`repro.mdb.persistence`); numpy scalars
are unwrapped to their Python values.  JSON round-trips Python floats
exactly (``repr``-based), so decoded rows re-coerce bit-identically.
"""

from __future__ import annotations

import json
import struct
import zlib
from datetime import datetime
from typing import Any, BinaryIO, Iterator, List, Sequence, Tuple

import numpy as np

from repro.mdb.errors import MDBError

_HEADER = struct.Struct("<II")

#: Refuse absurd frame lengths (corrupt header) instead of allocating.
MAX_RECORD_BYTES = 256 * 1024 * 1024


class StorageError(MDBError):
    """Raised for unrecoverable storage-layer conditions."""


def encode_value(value: Any) -> Any:
    """One cell value → its JSON-able form."""
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, datetime):
        return {"t": value.isoformat()}
    return value


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, dict) and "t" in value:
        return datetime.fromisoformat(value["t"])
    return value


def encode_row(row: Sequence[Any]) -> List[Any]:
    return [encode_value(v) for v in row]


def decode_row(row: Sequence[Any]) -> List[Any]:
    return [decode_value(v) for v in row]


def pack_record(record: dict) -> bytes:
    """Serialise one record into a framed byte string."""
    payload = json.dumps(
        record, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def iter_records(handle: BinaryIO) -> Iterator[Tuple[int, dict]]:
    """Yield ``(end_offset, record)`` for every valid frame in ``handle``.

    Stops silently at EOF or at the first torn/corrupt frame; the last
    yielded ``end_offset`` is the byte position recovery should truncate
    the log to before appending.
    """
    offset = handle.tell()
    while True:
        header = handle.read(_HEADER.size)
        if len(header) < _HEADER.size:
            return
        length, crc = _HEADER.unpack(header)
        if length > MAX_RECORD_BYTES:
            return
        payload = handle.read(length)
        if len(payload) < length or zlib.crc32(payload) != crc:
            return
        try:
            record = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return
        if not isinstance(record, dict):
            return
        offset += _HEADER.size + length
        yield offset, record
