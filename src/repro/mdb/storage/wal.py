"""The write-ahead log: fsync-ordered, crash-truncating, chaos-testable.

Append path (``storage.wal`` injection point fires before any byte is
written, so an injected crash loses the whole record, never part of
it)::

    frame = pack_record(record)
    maybe_fail("storage.wal")      # <- deterministic chaos crashes here
    write(frame); flush(); fsync() # fsync per REPRO_WAL_SYNC policy

A record is *acknowledged* once :meth:`WriteAheadLog.append` returns.
Recovery replays every valid frame and truncates the first torn one, so
the recovered state is exactly the acknowledged prefix.

Sync policies (``REPRO_WAL_SYNC``):

* ``always`` (default) — fsync after every append: an acknowledged
  record survives an OS crash, not just a process crash.
* ``batch`` — fsync only on :meth:`sync` / close / checkpoint; bulk
  loaders group thousands of appends per fsync.
* ``off`` — never fsync (tests and benchmarks on tmpfs).
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional

from repro import faults, resilience
from repro.mdb.storage.records import (
    StorageError,
    iter_records,
    pack_record,
)

#: Environment variable selecting the fsync policy.
WAL_SYNC_ENV = "REPRO_WAL_SYNC"

SYNC_POLICIES = ("always", "batch", "off")


def resolve_sync_policy(policy: Optional[str] = None) -> str:
    """The effective sync policy (argument > env > ``always``)."""
    value = policy or os.environ.get(WAL_SYNC_ENV) or "always"
    value = value.strip().lower()
    if value not in SYNC_POLICIES:
        raise StorageError(
            f"unknown WAL sync policy {value!r}; "
            f"expected one of {SYNC_POLICIES}"
        )
    return value


class WriteAheadLog:
    """An append-only log of framed records with torn-tail recovery."""

    def __init__(
        self,
        path: str,
        sync_policy: Optional[str] = None,
        retry: Optional[resilience.RetryPolicy] = None,
    ):
        self.path = path
        self.sync_policy = resolve_sync_policy(sync_policy)
        # Transient injected faults (the CI chaos leg runs the whole
        # suite at ``*:p=0.1``) are absorbed by retrying the append —
        # safe because the fault fires before any byte is written.
        # ``hard`` faults propagate: they are the crash simulation.
        self.retry = retry or resilience.DEFAULT_RETRY
        self._handle = None
        self._dirty = False
        self.appended = 0

    # -- lifecycle --------------------------------------------------------

    def open_for_append(self) -> int:
        """Open the log, truncating any torn tail; returns valid length."""
        valid_end = 0
        if os.path.exists(self.path):
            with open(self.path, "rb") as f:
                for end, _record in iter_records(f):
                    valid_end = end
        self._handle = open(self.path, "ab")
        if self._handle.tell() != valid_end:
            self._handle.truncate(valid_end)
            self._handle.seek(valid_end)
            os.fsync(self._handle.fileno())
        return valid_end

    def close(self) -> None:
        if self._handle is not None:
            self.sync()
            self._handle.close()
            self._handle = None

    @property
    def is_open(self) -> bool:
        return self._handle is not None

    # -- writes -----------------------------------------------------------

    def append(self, record: dict) -> None:
        """Durably append one record (the acknowledgement point)."""
        if self._handle is None:
            raise StorageError(f"WAL {self.path!r} is not open")
        frame = pack_record(record)

        def write_frame() -> None:
            faults.maybe_fail("storage.wal")
            self._handle.write(frame)
            self._handle.flush()
            if self.sync_policy == "always":
                os.fsync(self._handle.fileno())
                self._dirty = False
            else:
                self._dirty = True

        resilience.call_with_retry(
            write_frame, self.retry, label="storage.wal"
        )
        self.appended += 1

    def sync(self) -> None:
        """Flush and (policy permitting) fsync buffered appends."""
        if self._handle is None or not self._dirty:
            return
        self._handle.flush()
        if self.sync_policy != "off":
            os.fsync(self._handle.fileno())
        self._dirty = False

    # -- reads ------------------------------------------------------------

    def replay(self, apply: Callable[[dict], None]) -> int:
        """Apply every valid record in file order; returns the count."""
        count = 0
        if not os.path.exists(self.path):
            return 0
        with open(self.path, "rb") as f:
            for _end, record in iter_records(f):
                apply(record)
                count += 1
        return count

    def records(self) -> List[dict]:
        """All valid records (diagnostics and tests)."""
        out: List[dict] = []
        self.replay(out.append)
        return out

    def __repr__(self) -> str:
        state = "open" if self.is_open else "closed"
        return f"<WriteAheadLog {self.path} {state} sync={self.sync_policy}>"
