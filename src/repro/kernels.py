"""Compiled vectorised kernels for SciQL/SQL expressions and stSPARQL FILTERs.

TELEIOS's bet is column-at-a-time execution *inside* the database.  This
module closes the remaining interpretation gaps by lowering expression
ASTs into fused numpy kernels:

* **SQL/SciQL** — :func:`compile_update` turns a ``SciQL UPDATE``
  statement into a plan of closures evaluating directly over the array's
  attribute planes (no ``to_frame`` meshgrid), compiled once per
  ``(schema signature, statement)`` and cached in an LRU.  Assignments
  run gather-compute-scatter over only the cells passing the WHERE mask.
* **Shared vector primitives** — :func:`vec_arith`, :func:`vec_compare`,
  :func:`vec_concat` and :func:`vec_inlist_literals` implement the SQL
  operator semantics once, with vectorised fast paths in front of the
  exact per-row fallbacks.  The interpretive :class:`~repro.mdb.sql.
  executor.Evaluator` delegates to the same functions, so the compiled
  and interpreted paths cannot diverge at the operator level.
* **stSPARQL** — :func:`compile_filter` lowers numeric FILTER
  expressions into one batched kernel call over packed binding columns;
  solutions whose bindings fall outside the kernel's type contract are
  routed individually through the caller's exact fallback.
* **Adaptive tiling** — :class:`AdaptiveTiler` replaces the static
  ``PARALLEL_MIN_CELLS`` floor: row-band tiling engages only when the
  observed cells/sec rate predicts the serial pass is long enough to
  amortise band bookkeeping.

Everything is gated by ``REPRO_KERNELS`` (default on); with the gate off
the engines fall back to the retained interpretive paths, which double
as the in-engine oracle for the differential tests in
:mod:`repro.testkit`.

Fallback contract: a compiler raises :class:`Unsupported` (internally)
for any construct it does not lower, and the public ``compile_*``
entry points return ``None`` — the caller then takes the interpretive
path.  Catalog errors (unknown columns) are *not* swallowed: they raise
the same exception the interpretive path would.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.cache import LRUCache
from repro.rdf.term import Literal

# The SQL AST, mdb error types and stSPARQL algebra are imported
# lazily: both engines import this module at package-import time (the
# executor aliases the vector primitives), so a top-level import of
# either engine from here would be circular.


def _sql_ast():
    from repro.mdb.sql import ast

    return ast


def _mdb_errors():
    from repro.mdb import errors

    return errors


def _algebra():
    from repro.strabon.stsparql import algebra

    return algebra

__all__ = [
    "KERNELS_ENV",
    "enabled",
    "Unsupported",
    "vec_arith",
    "vec_compare",
    "vec_concat",
    "vec_inlist_literals",
    "bool_mask",
    "broadcast_literal",
    "is_numeric",
    "compile_update",
    "UpdatePlan",
    "compile_filter",
    "run_filter",
    "FilterPlan",
    "AdaptiveTiler",
    "TILER",
    "sql_kernel_cache",
    "filter_kernel_cache",
    "clear_caches",
]

Vector = Tuple[np.ndarray, np.ndarray]

KERNELS_ENV = "REPRO_KERNELS"

#: Integers beyond 2**53 are not exactly representable as float64; the
#: fast lanes refuse them so exact python-int comparisons never round.
_EXACT_INT = 2**53

#: Minimum candidate-solution count before packing binding columns for a
#: batched FILTER pays for itself (kept tiny so the fuzz sweep exercises
#: the kernel lane on small graphs too).
FILTER_BATCH_MIN_SOLUTIONS = 2


def enabled() -> bool:
    """Whether compiled kernels are active (``REPRO_KERNELS``, default on)."""
    raw = os.environ.get(KERNELS_ENV, "").strip().lower()
    return raw not in ("0", "false", "off", "no")


class Unsupported(Exception):
    """An expression the kernel compiler does not lower (take the
    interpretive path)."""


# ---------------------------------------------------------------------------
# shared vector primitives (exact SQL operator semantics)
# ---------------------------------------------------------------------------


def is_numeric(arr: np.ndarray) -> bool:
    return arr.dtype.kind in "ifb"


_TRUE1 = np.ones(1, dtype=bool)
_TRUE1.flags.writeable = False


def all_valid(n: int) -> np.ndarray:
    """An all-True validity mask as a stride-0 broadcast view — O(1) to
    build and recognisable (see :func:`_const_true`) so the hot paths
    can skip masking work entirely when no NULLs are in play."""
    return np.broadcast_to(_TRUE1, (n,))


def _const_true(valid: np.ndarray) -> bool:
    """True when ``valid`` is a stride-0 all-True broadcast view."""
    return valid.strides == (0,) and valid.size > 0 and bool(valid[0])


def and_valid(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a & b`` without allocating when either side is known all-True."""
    if a is b or _const_true(b):
        return a
    if _const_true(a):
        return b
    return a & b


def broadcast_literal(value: Any, nrows: int) -> Vector:
    if value is None:
        return (
            np.empty(nrows, dtype=object),
            np.zeros(nrows, dtype=bool),
        )
    if isinstance(value, bool):
        data = np.full(nrows, value, dtype=bool)
    elif isinstance(value, int):
        data = np.full(nrows, value, dtype=np.int64)
    elif isinstance(value, float):
        data = np.full(nrows, value, dtype=np.float64)
    else:
        data = np.empty(nrows, dtype=object)
        data[:] = value
    return data, np.ones(nrows, dtype=bool)


def bool_mask(vec: Vector) -> np.ndarray:
    """Vector → WHERE mask (NULL counts as False)."""
    data, valid = vec
    if data.dtype == object:
        truth = np.fromiter(
            (bool(v) for v in data), count=len(data), dtype=bool
        )
    elif data.dtype == np.bool_:
        truth = data
    else:
        truth = data.astype(bool)
    # The result may alias ``data`` when it is already boolean and every
    # row is valid; callers treat masks as read-only.
    if _const_true(valid):
        return truth
    return truth & valid


def _valid_index(valid: np.ndarray) -> Optional[np.ndarray]:
    """Positions of valid rows, or None when every row is valid."""
    if valid.all():
        return None
    return np.nonzero(valid)[0]


def _all_plain_str(data: np.ndarray, valid: np.ndarray) -> bool:
    """True when every valid element is an (exact) str — the precondition
    of the vectorised string lanes.  ``np.str_`` counts: it subclasses
    str without changing comparison or formatting semantics."""
    if data.dtype.kind == "U":
        return True
    if data.dtype != np.dtype(object):
        return False
    values = data if valid.all() else data[valid]
    return all(type(v) in (str, np.str_) for v in values)


def _float_subset(data: np.ndarray) -> Optional[np.ndarray]:
    """``data`` as float64 when every element is an exact python float.

    ``np.float64`` elements are deliberately excluded: python floats
    raise ``ZeroDivisionError`` where numpy scalars return inf/nan, and
    the fast lane must reproduce the per-row loop's exception exactly.
    """
    if data.dtype != np.dtype(object):
        return None
    for v in data:
        if type(v) is not float:
            return None
    return data.astype(np.float64)


def _exact_number_subset(data: np.ndarray) -> Optional[np.ndarray]:
    """``data`` as float64 when every element is a python int/float whose
    float64 image is exact (so vectorised comparison equals the loop)."""
    if data.dtype != np.dtype(object):
        return None
    for v in data:
        t = type(v)
        if t is float:
            continue
        if t is int and -_EXACT_INT <= v <= _EXACT_INT:
            continue
        return None
    return data.astype(np.float64)


def vec_arith(
    op: str, ldata: np.ndarray, rdata: np.ndarray, valid: np.ndarray
) -> Vector:
    """SQL ``+ - * / %`` with NULL masking (shared by both engines).

    Numeric arrays evaluate vectorised; ``/`` between two integer
    columns is floor division with zero denominators masked invalid.
    Object columns of pure python floats take a vectorised lane that
    reproduces the loop's ``ZeroDivisionError``; anything else falls to
    the exact per-row loop (timestamps, mixed types).
    """
    if is_numeric(ldata) and is_numeric(rdata):
        with np.errstate(all="ignore"):
            if op == "+":
                out = ldata + rdata
            elif op == "-":
                out = ldata - rdata
            elif op == "*":
                out = ldata * rdata
            elif op == "/":
                denom_zero = rdata == 0
                if ldata.dtype.kind == "i" and rdata.dtype.kind == "i":
                    safe = np.where(denom_zero, 1, rdata)
                    out = ldata // safe
                else:
                    safe = np.where(denom_zero, 1.0, rdata)
                    out = ldata / safe
                valid = valid & ~denom_zero
            else:  # %
                denom_zero = rdata == 0
                safe = np.where(denom_zero, 1, rdata)
                out = ldata % safe
                valid = valid & ~denom_zero
        return out, valid
    idx = _valid_index(valid)
    lsub = ldata if idx is None else ldata[idx]
    rsub = rdata if idx is None else rdata[idx]
    lf = _float_subset(lsub)
    rf = _float_subset(rsub) if lf is not None else None
    if lf is not None and rf is not None:
        if op in ("/", "%") and bool((rf == 0).any()):
            raise ZeroDivisionError(
                "float division by zero" if op == "/" else "float modulo"
            )
        ufunc = {
            "+": np.add,
            "-": np.subtract,
            "*": np.multiply,
            "/": np.divide,
            "%": np.mod,
        }[op]
        with np.errstate(all="ignore"):
            res = ufunc(lf, rf)
        out = np.empty(len(ldata), dtype=object)
        if idx is None:
            out[:] = res.tolist()
        else:
            out[idx] = res.tolist()
        return out, valid
    out = np.empty(len(ldata), dtype=object)
    for i in range(len(ldata)):
        if not valid[i]:
            out[i] = None
            continue
        a, b = ldata[i], rdata[i]
        try:
            if op == "+":
                out[i] = a + b
            elif op == "-":
                out[i] = a - b
            elif op == "*":
                out[i] = a * b
            elif op == "/":
                out[i] = a / b
            else:
                out[i] = a % b
        except TypeError as exc:
            raise _mdb_errors().SQLTypeError(str(exc)) from exc
    return out, valid


_CMP_UFUNCS = {
    "=": np.equal,
    "<>": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


def vec_compare(
    op: str, ldata: np.ndarray, rdata: np.ndarray, valid: np.ndarray
) -> Vector:
    """SQL comparison with NULL masking (shared by both engines).

    Numeric arrays compare vectorised.  Object columns of all-str or
    all-exact-number values take vectorised lanes; everything else
    (mixed types) keeps the per-row loop with its ``SQLTypeError``.
    """
    if is_numeric(ldata) and is_numeric(rdata):
        return _CMP_UFUNCS[op](ldata, rdata), valid
    n = len(ldata)
    idx = _valid_index(valid)
    lsub = ldata if idx is None else ldata[idx]
    rsub = rdata if idx is None else rdata[idx]
    hits = _fast_compare(op, lsub, rsub)
    if hits is not None:
        out = np.zeros(n, dtype=bool)
        if idx is None:
            out[:] = hits
        else:
            out[idx] = hits
        return out, valid
    out = np.zeros(n, dtype=bool)
    for i in range(n):
        if not valid[i]:
            continue
        a, b = ldata[i], rdata[i]
        try:
            if op == "=":
                out[i] = a == b
            elif op == "<>":
                out[i] = a != b
            elif op == "<":
                out[i] = a < b
            elif op == "<=":
                out[i] = a <= b
            elif op == ">":
                out[i] = a > b
            else:
                out[i] = a >= b
        except TypeError:
            raise _mdb_errors().SQLTypeError(
                f"cannot compare {type(a).__name__} with "
                f"{type(b).__name__}"
            ) from None
    return out, valid


def _fast_compare(
    op: str, lsub: np.ndarray, rsub: np.ndarray
) -> Optional[np.ndarray]:
    """Vectorised comparison of the valid subsets, or None to fall back."""
    all_valid = np.ones(len(lsub), dtype=bool)
    if _all_plain_str(lsub, all_valid) and _all_plain_str(rsub, all_valid):
        return _CMP_UFUNCS[op](lsub.astype(str), rsub.astype(str))
    lf = _exact_number_subset(lsub)
    if lf is None:
        return None
    rf = _exact_number_subset(rsub)
    if rf is None:
        return None
    return _CMP_UFUNCS[op](lf, rf)


def vec_concat(
    ldata: np.ndarray, rdata: np.ndarray, valid: np.ndarray
) -> Vector:
    """SQL ``||`` with NULL masking; ``np.char.add`` when both sides are
    str-typed, the f-string loop otherwise (identical output)."""
    n = len(ldata)
    if _all_plain_str(ldata, valid) and _all_plain_str(rdata, valid):
        out = np.empty(n, dtype=object)
        idx = _valid_index(valid)
        if idx is None:
            out[:] = np.char.add(
                ldata.astype(str), rdata.astype(str)
            ).tolist()
        else:
            out[idx] = np.char.add(
                ldata[idx].astype(str), rdata[idx].astype(str)
            ).tolist()
        return out, valid
    out = np.empty(n, dtype=object)
    for i in range(n):
        out[i] = f"{ldata[i]}{rdata[i]}" if valid[i] else None
    return out, valid


def vec_inlist_literals(
    data: np.ndarray,
    valid: np.ndarray,
    values: Sequence[Any],
    negated: bool,
) -> Optional[Vector]:
    """``operand IN (literal, ...)`` in one ``np.isin`` pass.

    ``values`` are raw literal values (``ast.Literal.value``); NULL items
    contribute no matches (SQL three-valued logic as implemented by the
    per-item loop).  Returns None when the operand/item type mix has no
    exact vectorised equivalent — the caller then runs the loop.
    """
    live = [v for v in values if v is not None]
    if is_numeric(data):
        nums = [v for v in live if isinstance(v, (int, float))]
        # An int item compared through a float64 `isin` buffer would
        # round; the loop compares it exactly as int64.  Mixed lists
        # with oversized ints therefore fall back.
        if any(isinstance(v, float) for v in nums) and any(
            isinstance(v, int)
            and not isinstance(v, bool)
            and not -_EXACT_INT <= v <= _EXACT_INT
            for v in nums
        ):
            return None
        if nums:
            hits = np.isin(data, np.asarray(nums))
            if not _const_true(valid):
                hits &= valid
        else:
            hits = np.zeros(len(data), dtype=bool)
    elif _all_plain_str(data, valid):
        strs = [v for v in live if isinstance(v, str)]
        if strs:
            sub = data if valid.all() else data[valid]
            inner = np.isin(sub.astype(str), np.asarray(strs))
            hits = np.zeros(len(data), dtype=bool)
            if valid.all():
                hits[:] = inner
            else:
                hits[np.nonzero(valid)[0]] = inner
            hits &= valid
        else:
            hits = np.zeros(len(data), dtype=bool)
    else:
        return None
    if negated:
        hits = ~hits
        if not _const_true(valid):
            hits &= valid
    return hits, all_valid(len(hits))


# ---------------------------------------------------------------------------
# SQL expression compiler (SciQL UPDATE)
# ---------------------------------------------------------------------------


class KernelEnv:
    """Columns a compiled kernel evaluates over: name → (data, valid)."""

    __slots__ = ("cols", "n")

    def __init__(self, cols: Dict[str, Vector], n: int):
        self.cols = cols
        self.n = n

    def window(self, lo: int, hi: int) -> "KernelEnv":
        return KernelEnv(
            {k: (d[lo:hi], v[lo:hi]) for k, (d, v) in self.cols.items()},
            hi - lo,
        )

    def gather(self, idx: np.ndarray) -> "KernelEnv":
        # Fancy-indexing a stride-0 all-True mask would materialise it;
        # keep the constant-True representation instead.
        return KernelEnv(
            {
                k: (
                    d[idx],
                    all_valid(len(idx)) if _const_true(v) else v[idx],
                )
                for k, (d, v) in self.cols.items()
            },
            len(idx),
        )


KernelFn = Callable[[KernelEnv], Vector]


@dataclass
class UpdatePlan:
    """A compiled ``UPDATE array`` statement."""

    where: Optional[KernelFn]
    assignments: List[Tuple[str, KernelFn]]  # (attr name, value kernel)
    columns: Tuple[str, ...]  # referenced column names (env keys)


#: Compiled UPDATE plans keyed by (schema signature, statement); the
#: sentinel marks statements the compiler refused so they are not
#: re-lowered on every call.
sql_kernel_cache = LRUCache(maxsize=256, name="kernels.sql")
_REFUSED = object()


def array_signature(array: Any) -> Tuple:
    """Hashable schema signature of a SciArray (cache-key component)."""
    return (
        array.name,
        tuple((d.name, "dim") for d in array.dimensions),
        tuple(
            (name, "attr", ctype.name) for name, ctype in array.attributes
        ),
    )


def compile_update(array: Any, stmt: ast.Update) -> Optional[UpdatePlan]:
    """Compile one SciQL UPDATE against an array's schema, or None.

    The plan is cached per ``(schema signature, statement)``; AST nodes
    are frozen dataclasses, hence hashable.  Unknown columns raise
    :class:`CatalogError` with the interpretive path's message.
    """
    sig = array_signature(array)
    key = (sig, stmt.where, tuple(stmt.assignments))
    cached = sql_kernel_cache.get(key)
    if cached is not None:
        return None if cached is _REFUSED else cached
    schema = {d.name: "dim" for d in array.dimensions}
    for name, _ in array.attributes:
        schema[name] = "attr"
    refs: set = set()
    try:
        where = (
            None
            if stmt.where is None
            else _compile_sql(stmt.where, schema, array.name, refs)
        )
        assignments = []
        for attr_name, expr in stmt.assignments:
            if schema.get(attr_name.lower()) != "attr":
                raise _mdb_errors().CatalogError(
                    f"no attribute {attr_name!r} in array {array.name!r}"
                )
            assignments.append(
                (attr_name, _compile_sql(expr, schema, array.name, refs))
            )
    except Unsupported:
        sql_kernel_cache.put(key, _REFUSED)
        return None
    plan = UpdatePlan(where, assignments, tuple(sorted(refs)))
    sql_kernel_cache.put(key, plan)
    return plan


def _compile_sql(
    expr: ast.Expr, schema: Dict[str, str], binding: str, refs: set
) -> KernelFn:
    """Lower one SQL expression AST node to a closure over a KernelEnv."""
    ast = _sql_ast()
    if isinstance(expr, ast.Literal):
        value = expr.value
        # Materialise the literal once at compile time and stretch it
        # with stride-0 broadcast views per call: ufuncs treat those
        # like scalars, so no per-evaluation n-sized allocation.
        seed_data, seed_valid = broadcast_literal(value, 1)

        def literal(env: KernelEnv) -> Vector:
            return (
                np.broadcast_to(seed_data, (env.n,)),
                np.broadcast_to(seed_valid, (env.n,)),
            )

        return literal
    if isinstance(expr, ast.ColumnRef):
        name = expr.name
        if expr.table is not None:
            if expr.table != binding or name not in schema:
                raise _mdb_errors().CatalogError(
                    f"unknown column {expr.table}.{name}"
                )
        elif name not in schema:
            raise _mdb_errors().CatalogError(f"unknown column {name!r}")
        refs.add(name)
        return lambda env: env.cols[name]
    if isinstance(expr, ast.UnaryOp):
        inner = _compile_sql(expr.operand, schema, binding, refs)
        if expr.op == "-":

            def negate(env: KernelEnv) -> Vector:
                data, valid = inner(env)
                if is_numeric(data):
                    return -data, valid
                out = np.empty(len(data), dtype=object)
                for i, v in enumerate(data):
                    out[i] = -v if valid[i] else None
                return out, valid

            return negate
        if expr.op == "NOT":

            def invert(env: KernelEnv) -> Vector:
                mask = bool_mask(inner(env))
                return ~mask, all_valid(len(mask))

            return invert
        raise Unsupported(expr.op)
    if isinstance(expr, ast.BinaryOp):
        op = expr.op
        left = _compile_sql(expr.left, schema, binding, refs)
        right = _compile_sql(expr.right, schema, binding, refs)
        if op in ("AND", "OR"):

            def logical(env: KernelEnv) -> Vector:
                lmask = bool_mask(left(env))
                rmask = bool_mask(right(env))
                out = (lmask & rmask) if op == "AND" else (lmask | rmask)
                return out, all_valid(len(out))

            return logical
        if op == "||":

            def concat(env: KernelEnv) -> Vector:
                ldata, lvalid = left(env)
                rdata, rvalid = right(env)
                return vec_concat(ldata, rdata, and_valid(lvalid, rvalid))

            return concat
        if op in ("+", "-", "*", "/", "%"):

            def arith(env: KernelEnv) -> Vector:
                ldata, lvalid = left(env)
                rdata, rvalid = right(env)
                return vec_arith(op, ldata, rdata, and_valid(lvalid, rvalid))

            return arith
        if op in ("=", "<>", "<", "<=", ">", ">="):

            def compare(env: KernelEnv) -> Vector:
                ldata, lvalid = left(env)
                rdata, rvalid = right(env)
                return vec_compare(
                    op, ldata, rdata, and_valid(lvalid, rvalid)
                )

            return compare
        raise Unsupported(op)
    if isinstance(expr, ast.InList):
        operand = _compile_sql(expr.operand, schema, binding, refs)
        negated = expr.negated
        if all(isinstance(item, ast.Literal) for item in expr.items):
            values = tuple(item.value for item in expr.items)

            def inlist_fast(env: KernelEnv) -> Vector:
                data, valid = operand(env)
                fast = vec_inlist_literals(data, valid, values, negated)
                if fast is not None:
                    return fast
                item_vecs = [
                    broadcast_literal(v, env.n) for v in values
                ]
                return _inlist_loop(data, valid, item_vecs, negated)

            return inlist_fast
        items = [
            _compile_sql(item, schema, binding, refs) for item in expr.items
        ]

        def inlist(env: KernelEnv) -> Vector:
            data, valid = operand(env)
            return _inlist_loop(
                data, valid, [item(env) for item in items], negated
            )

        return inlist
    if isinstance(expr, ast.Between):
        operand = _compile_sql(expr.operand, schema, binding, refs)
        low = _compile_sql(expr.low, schema, binding, refs)
        high = _compile_sql(expr.high, schema, binding, refs)
        negated = expr.negated

        def between(env: KernelEnv) -> Vector:
            data, valid = operand(env)
            low_d, low_v = low(env)
            high_d, high_v = high(env)
            ge = bool_mask(
                vec_compare(">=", data, low_d, and_valid(valid, low_v))
            )
            le = bool_mask(
                vec_compare("<=", data, high_d, and_valid(valid, high_v))
            )
            out = ge & le
            if negated:
                out = ~out & valid
            return out, all_valid(len(out))

        return between
    if isinstance(expr, ast.IsNull):
        operand = _compile_sql(expr.operand, schema, binding, refs)
        negated = expr.negated

        def isnull(env: KernelEnv) -> Vector:
            _, valid = operand(env)
            out = valid.copy() if negated else ~valid
            return out, all_valid(len(out))

        return isnull
    # FunctionCall / Like / Cast / Case / Star: interpretive path.
    raise Unsupported(type(expr).__name__)


def _inlist_loop(
    data: np.ndarray,
    valid: np.ndarray,
    item_vecs: Sequence[Vector],
    negated: bool,
) -> Vector:
    """The exact per-item IN evaluation (matches the interpreter)."""
    hits = np.zeros(len(data), dtype=bool)
    for idata, ivalid in item_vecs:
        hits |= bool_mask(vec_compare("=", data, idata, valid & ivalid))
    if negated:
        hits = ~hits
        if not _const_true(valid):
            hits &= valid
    return hits, all_valid(len(hits))


# ---------------------------------------------------------------------------
# stSPARQL FILTER compiler
# ---------------------------------------------------------------------------


class _FilterCtx:
    """Packed numeric binding columns over the kernel lane's rows."""

    __slots__ = ("cols", "n", "no_err")

    def __init__(self, cols: Dict[str, np.ndarray], n: int):
        self.cols = cols
        self.n = n
        self.no_err = np.zeros(n, dtype=bool)


#: (value, error) pair over the lane; kind is fixed at compile time.
_FilterNode = Tuple[Callable[[_FilterCtx], Tuple[np.ndarray, np.ndarray]], str]


@dataclass
class FilterPlan:
    """A compiled FILTER expression over numeric variable bindings."""

    variables: Tuple[str, ...]
    fn: Callable[[_FilterCtx], np.ndarray]  # → pass/fail verdict per row


filter_kernel_cache = LRUCache(maxsize=256, name="kernels.filter")


def compile_filter(expr: alg.Expr) -> Optional[FilterPlan]:
    """Compile one stSPARQL FILTER expression, or None when any part of
    it falls outside the numeric kernel subset (spatial calls, string
    operands, ...).  Compiled plans — and refusals — are cached on the
    expression node itself (algebra nodes are frozen dataclasses)."""
    cached = filter_kernel_cache.get(expr)
    if cached is not None:
        return None if cached is _REFUSED else cached
    refs: set = set()
    try:
        node, kind = _compile_filter_expr(expr, refs)
    except Unsupported:
        filter_kernel_cache.put(expr, _REFUSED)
        return None

    def verdict(ctx: _FilterCtx) -> np.ndarray:
        value, err = node(ctx)
        return _filter_ebv(value, kind) & ~err

    plan = FilterPlan(tuple(sorted(refs)), verdict)
    filter_kernel_cache.put(expr, plan)
    return plan


def _filter_ebv(value: np.ndarray, kind: str) -> np.ndarray:
    """SPARQL effective boolean value of a lowered (num|bool) vector."""
    if kind == "bool":
        return value
    return (value != 0) & ~np.isnan(value)


def _filter_const(term: Literal) -> Tuple[float, str]:
    """(value, kind) of a constant literal, or Unsupported."""
    try:
        py = term.to_python()
    except Exception:  # unparseable lexical form: interpretive path
        raise Unsupported("literal") from None
    if isinstance(py, bool):
        return (1.0 if py else 0.0), "bool"
    if isinstance(py, int):
        if not -_EXACT_INT <= py <= _EXACT_INT:
            raise Unsupported("oversized int literal")
        return float(py), "num"
    if isinstance(py, float):
        return py, "num"
    raise Unsupported("non-numeric literal")


def _compile_filter_expr(expr: alg.Expr, refs: set) -> _FilterNode:
    """Lower one algebra node to ``ctx → (value, error)`` over the lane.

    The lane contract (enforced by :func:`run_filter`) is that every
    referenced variable is bound to an exactly-representable numeric
    literal, so an EVar is simply its packed column.  Error vectors
    reproduce ``_ExprError`` propagation: an erroring subexpression
    poisons its row, except across ``||`` (error recovery) exactly as
    the interpreter's short-circuit rules dictate.
    """
    alg = _algebra()
    if isinstance(expr, alg.EVar):
        name = expr.name
        refs.add(name)
        return (lambda ctx: (ctx.cols[name], ctx.no_err)), "num"
    if isinstance(expr, alg.ETerm):
        if not isinstance(expr.term, Literal):
            raise Unsupported("non-literal term")
        if expr.term.is_numeric:
            value, kind = _filter_const(expr.term)
        else:
            py = expr.term.to_python()
            if not isinstance(py, bool):
                raise Unsupported("non-numeric literal")
            value, kind = (1.0 if py else 0.0), "bool"
        if kind == "bool":
            const = bool(value)
            return (
                lambda ctx: (np.full(ctx.n, const, dtype=bool), ctx.no_err)
            ), "bool"
        return (
            lambda ctx: (np.full(ctx.n, value, dtype=np.float64), ctx.no_err)
        ), "num"
    if isinstance(expr, alg.EUnary):
        inner, kind = _compile_filter_expr(expr.operand, refs)
        if expr.op == "!":

            def negation(ctx: _FilterCtx):
                value, err = inner(ctx)
                return ~_filter_ebv(value, kind), err

            return negation, "bool"
        if expr.op == "-":
            if kind != "num":
                raise Unsupported("unary minus on boolean")

            def minus(ctx: _FilterCtx):
                value, err = inner(ctx)
                return -value, err

            return minus, "num"
        raise Unsupported(expr.op)
    if isinstance(expr, alg.EBinary):
        return _compile_filter_binary(expr, refs)
    if isinstance(expr, alg.ECall):
        if expr.name == "bound" and len(expr.args) == 1:
            arg = expr.args[0]
            if isinstance(arg, alg.EVar):
                # Lane rows have every referenced variable bound.
                refs.add(arg.name)
                return (
                    lambda ctx: (
                        np.ones(ctx.n, dtype=bool),
                        ctx.no_err,
                    )
                ), "bool"
            return (
                lambda ctx: (np.zeros(ctx.n, dtype=bool), ctx.no_err)
            ), "bool"
        raise Unsupported(expr.name)
    raise Unsupported(type(expr).__name__)


def _compile_filter_binary(expr: alg.EBinary, refs: set) -> _FilterNode:
    op = expr.op
    left, lkind = _compile_filter_expr(expr.left, refs)
    right, rkind = _compile_filter_expr(expr.right, refs)
    if op == "&&":
        # left-error → whole expression errors (→ row fails); a False
        # left short-circuits before the right can error.  Both encode
        # as: fail on any error, else l and r.
        def logical_and(ctx: _FilterCtx):
            lv, le = left(ctx)
            rv, re_ = right(ctx)
            return (
                _filter_ebv(lv, lkind) & _filter_ebv(rv, rkind),
                le | re_,
            )

        return logical_and, "bool"
    if op == "||":
        # || recovers from a left error; a true left short-circuits a
        # right error away.
        def logical_or(ctx: _FilterCtx):
            lv, le = left(ctx)
            rv, re_ = right(ctx)
            lt = _filter_ebv(lv, lkind) & ~le
            rt = _filter_ebv(rv, rkind) & ~re_
            return lt | rt, np.zeros(ctx.n, dtype=bool)

        return logical_or, "bool"
    if op in ("=", "!="):

        def equality(ctx: _FilterCtx):
            lv, le = left(ctx)
            rv, re_ = right(ctx)
            if lkind == "num" and rkind == "num":
                eq = lv == rv
            else:
                # _terms_equal falls back to EBV equality as soon as one
                # side is boolean.
                eq = _filter_ebv(lv, lkind) == _filter_ebv(rv, rkind)
            return (eq if op == "=" else ~eq), le | re_

        return equality, "bool"
    if op in ("<", "<=", ">", ">="):

        def comparison(ctx: _FilterCtx):
            lv, le = left(ctx)
            rv, re_ = right(ctx)
            # Booleans compare as 0/1 (python bool is an int).
            lf = lv.astype(np.float64) if lkind == "bool" else lv
            rf = rv.astype(np.float64) if rkind == "bool" else rv
            return _CMP_UFUNCS[op](lf, rf), le | re_

        return comparison, "bool"
    if op in ("+", "-", "*", "/"):
        if lkind != "num" or rkind != "num":
            raise Unsupported("boolean in numeric context")
        ufunc = {
            "+": np.add,
            "-": np.subtract,
            "*": np.multiply,
            "/": np.divide,
        }[op]

        def arithmetic(ctx: _FilterCtx):
            lv, le = left(ctx)
            rv, re_ = right(ctx)
            err = le | re_
            if op == "/":
                err = err | (rv == 0)
                with np.errstate(all="ignore"):
                    return ufunc(lv, np.where(rv == 0, 1.0, rv)), err
            with np.errstate(all="ignore"):
                return ufunc(lv, rv), err

        return arithmetic, "num"
    raise Unsupported(op)


def run_filter(
    plan: FilterPlan,
    solutions: List[Dict[str, Any]],
    fallback: Callable[[Dict[str, Any]], bool],
) -> List[Dict[str, Any]]:
    """Apply a compiled FILTER over candidate solutions.

    Bindings of every referenced variable are packed into float64
    columns; rows where each binding is an exactly-representable numeric
    literal form the kernel lane (one vectorised verdict), the rest are
    judged individually by ``fallback`` (the interpreter) — order is
    preserved either way.
    """
    n = len(solutions)
    lane = np.ones(n, dtype=bool)
    columns: Dict[str, np.ndarray] = {}
    for var in plan.variables:
        vals = np.zeros(n, dtype=np.float64)
        ok = np.zeros(n, dtype=bool)
        for i, sol in enumerate(solutions):
            term = sol.get(var)
            if not isinstance(term, Literal) or not term.is_numeric:
                continue
            try:
                py = term.to_python()
            except Exception:
                continue
            if isinstance(py, bool):
                continue
            if isinstance(py, int):
                if not -_EXACT_INT <= py <= _EXACT_INT:
                    continue
                vals[i] = float(py)
            elif isinstance(py, float):
                vals[i] = py
            else:
                continue
            ok[i] = True
        lane &= ok
        columns[var] = vals
    idx = np.nonzero(lane)[0]
    verdict = None
    if idx.size:
        ctx = _FilterCtx(
            {var: vals[idx] for var, vals in columns.items()}, int(idx.size)
        )
        verdict = plan.fn(ctx)
    out: List[Dict[str, Any]] = []
    j = 0
    fell_back = 0
    for i, sol in enumerate(solutions):
        if lane[i]:
            if verdict[j]:
                out.append(sol)
            j += 1
        else:
            fell_back += 1
            if fallback(sol):
                out.append(sol)
    obs.counter("stsparql.filter.kernel_rows").inc(int(idx.size))
    if fell_back:
        obs.counter("stsparql.filter.fallback_rows").inc(fell_back)
    return out


# ---------------------------------------------------------------------------
# adaptive tiling
# ---------------------------------------------------------------------------


class AdaptiveTiler:
    """Decides row-band tiling from observed serial throughput.

    Each operation name carries an EWMA of serial cells/sec.  Tiling
    engages only when the predicted serial time is long enough that a
    band is worth at least :data:`MIN_TASK_SECONDS` of work — the
    adaptive replacement for the old static ``PARALLEL_MIN_CELLS``
    floor, which tiled cheap numpy passes whose band bookkeeping cost
    more than the pass itself.
    """

    #: Cold-start estimate: with no observation yet, ~65k cells predict
    #: ~3.3ms of work — just under the tiling threshold, matching the
    #: old static floor's behaviour until real rates arrive.
    DEFAULT_RATE = 2e7
    #: A band must be worth at least this much predicted serial time.
    MIN_TASK_SECONDS = 0.002

    def __init__(self) -> None:
        self._rates: Dict[str, float] = {}
        self._lock = threading.Lock()

    def observe(self, op: str, cells: int, seconds: float) -> None:
        """Record one *serial* pass (cells processed, wall seconds)."""
        if cells <= 0 or seconds <= 0:
            return
        rate = cells / seconds
        with self._lock:
            previous = self._rates.get(op)
            self._rates[op] = (
                rate if previous is None else 0.7 * previous + 0.3 * rate
            )
        obs.gauge(f"kernels.tiler.rate.{op}").set(self._rates[op])

    def rate(self, op: str) -> float:
        with self._lock:
            return self._rates.get(op, self.DEFAULT_RATE)

    def parts(self, op: str, cells: int, workers: int) -> int:
        """Number of row bands to split into (1 = stay serial)."""
        estimate = cells / self.rate(op)
        if estimate < 2 * self.MIN_TASK_SECONDS:
            return 1
        return max(
            2,
            min(workers * 2, int(estimate / self.MIN_TASK_SECONDS)),
        )

    def reset(self) -> None:
        with self._lock:
            self._rates.clear()


#: Process-wide tiler shared by the SciQL operators.
TILER = AdaptiveTiler()


def clear_caches() -> None:
    """Drop every compiled kernel and learned tiling rate (benchmarks
    use this to measure cold-compile cost)."""
    sql_kernel_cache.clear()
    filter_kernel_cache.clear()
    TILER.reset()


