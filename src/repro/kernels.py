"""Compiled vectorised kernels for SciQL/SQL expressions and stSPARQL FILTERs.

TELEIOS's bet is column-at-a-time execution *inside* the database.  This
module closes the remaining interpretation gaps by lowering expression
ASTs into fused numpy kernels:

* **SQL/SciQL** — :func:`compile_update` turns a ``SciQL UPDATE``
  statement into a plan of closures evaluating directly over the array's
  attribute planes (no ``to_frame`` meshgrid), compiled once per
  ``(schema signature, statement)`` and cached in an LRU.  Assignments
  run gather-compute-scatter over only the cells passing the WHERE mask.
  :func:`compile_select` lowers single-array ``SELECT`` statements the
  same way (WHERE over the planes, projections over only the gathered
  rows), and :func:`compile_tile_aggregate` plans ``tile_aggregate``
  reductions that reduce float64 planes in place without the
  interpretive path's ``astype`` copy.  Scalar functions (``abs``,
  ``sqrt``, ``floor``, ``ceil``, ``power``) lower instead of refusing:
  the unary functions delegate to the registry's vectorised
  implementations, while ``power`` goes through :func:`vec_power`,
  which keeps the per-row loop (numpy's SIMD ``pow`` is not
  bit-identical to libm's) so error rows and results match exactly.
  Closure trees reuse owned temporaries in place (``out=`` on
  the commutative arithmetic lanes) to cut allocation traffic.
* **Shared vector primitives** — :func:`vec_arith`, :func:`vec_compare`,
  :func:`vec_concat` and :func:`vec_inlist_literals` implement the SQL
  operator semantics once, with vectorised fast paths in front of the
  exact per-row fallbacks.  The interpretive :class:`~repro.mdb.sql.
  executor.Evaluator` delegates to the same functions, so the compiled
  and interpreted paths cannot diverge at the operator level.
* **stSPARQL** — :func:`compile_filter` lowers numeric FILTER
  expressions into one batched kernel call over packed binding columns;
  solutions whose bindings fall outside the kernel's type contract are
  routed individually through the caller's exact fallback.
  :func:`compile_spatial_filter` lowers *spatial* FILTERs — indexable
  predicate calls and ``strdf:distance`` comparisons over one variable
  and one constant geometry — into one
  :class:`~repro.geometry.envelope.PackedEnvelopes` pass that fuses the
  evaluator's envelope prefilter with the verdict: envelope-disjoint
  rows fail (or far rows decide a distance comparison) vectorised, and
  only envelope survivors take the exact geometry test.
* **Adaptive tiling** — :class:`AdaptiveTiler` replaces the static
  ``PARALLEL_MIN_CELLS`` floor: row-band tiling engages only when the
  observed cells/sec rate predicts the serial pass is long enough to
  amortise band bookkeeping.

Everything is gated by ``REPRO_KERNELS`` (default on); with the gate off
the engines fall back to the retained interpretive paths, which double
as the in-engine oracle for the differential tests in
:mod:`repro.testkit`.

Fallback contract: a compiler raises :class:`Unsupported` (internally)
for any construct it does not lower, and the public ``compile_*``
entry points return ``None`` — the caller then takes the interpretive
path.  Catalog errors (unknown columns) are *not* swallowed: they raise
the same exception the interpretive path would.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.cache import LRUCache
from repro.rdf.term import Literal

# The SQL AST, mdb error types and stSPARQL algebra are imported
# lazily: both engines import this module at package-import time (the
# executor aliases the vector primitives), so a top-level import of
# either engine from here would be circular.


def _sql_ast():
    from repro.mdb.sql import ast

    return ast


def _mdb_errors():
    from repro.mdb import errors

    return errors


def _algebra():
    from repro.strabon.stsparql import algebra

    return algebra


def _sql_functions():
    from repro.mdb.sql import functions

    return functions


def _stsparql_functions():
    from repro.strabon.stsparql import functions

    return functions


def _strdf():
    from repro.strabon import strdf

    return strdf


def _sql_executor():
    from repro.mdb.sql import executor

    return executor


def _stsparql_evaluator():
    from repro.strabon.stsparql import evaluator

    return evaluator


__all__ = [
    "KERNELS_ENV",
    "enabled",
    "Unsupported",
    "vec_arith",
    "vec_compare",
    "vec_concat",
    "vec_inlist_literals",
    "vec_power",
    "bool_mask",
    "broadcast_literal",
    "is_numeric",
    "compile_update",
    "UpdatePlan",
    "compile_select",
    "SelectPlan",
    "compile_tile_aggregate",
    "TileAggregatePlan",
    "compile_filter",
    "run_filter",
    "FilterPlan",
    "compile_spatial_filter",
    "run_spatial_filter",
    "SpatialFilterPlan",
    "AdaptiveTiler",
    "TILER",
    "sql_kernel_cache",
    "filter_kernel_cache",
    "clear_caches",
]

Vector = Tuple[np.ndarray, np.ndarray]

KERNELS_ENV = "REPRO_KERNELS"

#: Integers beyond 2**53 are not exactly representable as float64; the
#: fast lanes refuse them so exact python-int comparisons never round.
_EXACT_INT = 2**53

#: Minimum candidate-solution count before packing binding columns for a
#: batched FILTER pays for itself (kept tiny so the fuzz sweep exercises
#: the kernel lane on small graphs too).
FILTER_BATCH_MIN_SOLUTIONS = 2


def enabled() -> bool:
    """Whether compiled kernels are active (``REPRO_KERNELS``, default on)."""
    raw = os.environ.get(KERNELS_ENV, "").strip().lower()
    return raw not in ("0", "false", "off", "no")


class Unsupported(Exception):
    """An expression the kernel compiler does not lower (take the
    interpretive path)."""


# ---------------------------------------------------------------------------
# shared vector primitives (exact SQL operator semantics)
# ---------------------------------------------------------------------------


def is_numeric(arr: np.ndarray) -> bool:
    return arr.dtype.kind in "ifb"


_TRUE1 = np.ones(1, dtype=bool)
_TRUE1.flags.writeable = False


def all_valid(n: int) -> np.ndarray:
    """An all-True validity mask as a stride-0 broadcast view — O(1) to
    build and recognisable (see :func:`_const_true`) so the hot paths
    can skip masking work entirely when no NULLs are in play."""
    return np.broadcast_to(_TRUE1, (n,))


def _const_true(valid: np.ndarray) -> bool:
    """True when ``valid`` is a stride-0 all-True broadcast view."""
    return valid.strides == (0,) and valid.size > 0 and bool(valid[0])


def and_valid(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a & b`` without allocating when either side is known all-True."""
    if a is b or _const_true(b):
        return a
    if _const_true(a):
        return b
    return a & b


def broadcast_literal(value: Any, nrows: int) -> Vector:
    if value is None:
        return (
            np.empty(nrows, dtype=object),
            np.zeros(nrows, dtype=bool),
        )
    if isinstance(value, bool):
        data = np.full(nrows, value, dtype=bool)
    elif isinstance(value, int):
        data = np.full(nrows, value, dtype=np.int64)
    elif isinstance(value, float):
        data = np.full(nrows, value, dtype=np.float64)
    else:
        data = np.empty(nrows, dtype=object)
        data[:] = value
    return data, np.ones(nrows, dtype=bool)


def bool_mask(vec: Vector) -> np.ndarray:
    """Vector → WHERE mask (NULL counts as False)."""
    data, valid = vec
    if data.dtype == object:
        truth = np.fromiter(
            (bool(v) for v in data), count=len(data), dtype=bool
        )
    elif data.dtype == np.bool_:
        truth = data
    else:
        truth = data.astype(bool)
    # The result may alias ``data`` when it is already boolean and every
    # row is valid; callers treat masks as read-only.
    if _const_true(valid):
        return truth
    return truth & valid


def _valid_index(valid: np.ndarray) -> Optional[np.ndarray]:
    """Positions of valid rows, or None when every row is valid."""
    if valid.all():
        return None
    return np.nonzero(valid)[0]


def _all_plain_str(data: np.ndarray, valid: np.ndarray) -> bool:
    """True when every valid element is an (exact) str — the precondition
    of the vectorised string lanes.  ``np.str_`` counts: it subclasses
    str without changing comparison or formatting semantics."""
    if data.dtype.kind == "U":
        return True
    if data.dtype != np.dtype(object):
        return False
    values = data if valid.all() else data[valid]
    return all(type(v) in (str, np.str_) for v in values)


def _float_subset(data: np.ndarray) -> Optional[np.ndarray]:
    """``data`` as float64 when every element is an exact python float.

    ``np.float64`` elements are deliberately excluded: python floats
    raise ``ZeroDivisionError`` where numpy scalars return inf/nan, and
    the fast lane must reproduce the per-row loop's exception exactly.
    """
    if data.dtype != np.dtype(object):
        return None
    for v in data:
        if type(v) is not float:
            return None
    return data.astype(np.float64)


def _exact_number_subset(data: np.ndarray) -> Optional[np.ndarray]:
    """``data`` as float64 when every element is a python int/float whose
    float64 image is exact (so vectorised comparison equals the loop)."""
    if data.dtype != np.dtype(object):
        return None
    for v in data:
        t = type(v)
        if t is float:
            continue
        if t is int and -_EXACT_INT <= v <= _EXACT_INT:
            continue
        return None
    return data.astype(np.float64)


def vec_arith(
    op: str,
    ldata: np.ndarray,
    rdata: np.ndarray,
    valid: np.ndarray,
    *,
    reuse: Optional[np.ndarray] = None,
) -> Vector:
    """SQL ``+ - * / %`` with NULL masking (shared by both engines).

    Numeric arrays evaluate vectorised; ``/`` between two integer
    columns is floor division with zero denominators masked invalid.
    Object columns of pure python floats take a vectorised lane that
    reproduces the loop's ``ZeroDivisionError``; anything else falls to
    the exact per-row loop (timestamps, mixed types).

    ``reuse`` may name a writable temporary (one of the operands the
    caller owns) to receive the result of the ``+ - *`` numeric lanes
    in place; it must already have the exact result dtype and shape.
    The compiled closure trees use this to avoid allocating a fresh
    array per operator node.
    """
    if is_numeric(ldata) and is_numeric(rdata):
        with np.errstate(all="ignore"):
            if op == "+":
                out = (
                    np.add(ldata, rdata, out=reuse)
                    if reuse is not None
                    else ldata + rdata
                )
            elif op == "-":
                out = (
                    np.subtract(ldata, rdata, out=reuse)
                    if reuse is not None
                    else ldata - rdata
                )
            elif op == "*":
                out = (
                    np.multiply(ldata, rdata, out=reuse)
                    if reuse is not None
                    else ldata * rdata
                )
            elif op == "/":
                denom_zero = rdata == 0
                if ldata.dtype.kind == "i" and rdata.dtype.kind == "i":
                    safe = np.where(denom_zero, 1, rdata)
                    out = ldata // safe
                else:
                    safe = np.where(denom_zero, 1.0, rdata)
                    out = ldata / safe
                valid = valid & ~denom_zero
            else:  # %
                denom_zero = rdata == 0
                safe = np.where(denom_zero, 1, rdata)
                out = ldata % safe
                valid = valid & ~denom_zero
        return out, valid
    idx = _valid_index(valid)
    lsub = ldata if idx is None else ldata[idx]
    rsub = rdata if idx is None else rdata[idx]
    lf = _float_subset(lsub)
    rf = _float_subset(rsub) if lf is not None else None
    if lf is not None and rf is not None:
        if op in ("/", "%") and bool((rf == 0).any()):
            raise ZeroDivisionError(
                "float division by zero" if op == "/" else "float modulo"
            )
        ufunc = {
            "+": np.add,
            "-": np.subtract,
            "*": np.multiply,
            "/": np.divide,
            "%": np.mod,
        }[op]
        with np.errstate(all="ignore"):
            res = ufunc(lf, rf)
        out = np.empty(len(ldata), dtype=object)
        if idx is None:
            out[:] = res.tolist()
        else:
            out[idx] = res.tolist()
        return out, valid
    out = np.empty(len(ldata), dtype=object)
    for i in range(len(ldata)):
        if not valid[i]:
            out[i] = None
            continue
        a, b = ldata[i], rdata[i]
        try:
            if op == "+":
                out[i] = a + b
            elif op == "-":
                out[i] = a - b
            elif op == "*":
                out[i] = a * b
            elif op == "/":
                out[i] = a / b
            else:
                out[i] = a % b
        except TypeError as exc:
            raise _mdb_errors().SQLTypeError(str(exc)) from exc
    return out, valid


_CMP_UFUNCS = {
    "=": np.equal,
    "<>": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


def vec_compare(
    op: str, ldata: np.ndarray, rdata: np.ndarray, valid: np.ndarray
) -> Vector:
    """SQL comparison with NULL masking (shared by both engines).

    Numeric arrays compare vectorised.  Object columns of all-str or
    all-exact-number values take vectorised lanes; everything else
    (mixed types) keeps the per-row loop with its ``SQLTypeError``.
    """
    if is_numeric(ldata) and is_numeric(rdata):
        return _CMP_UFUNCS[op](ldata, rdata), valid
    n = len(ldata)
    idx = _valid_index(valid)
    lsub = ldata if idx is None else ldata[idx]
    rsub = rdata if idx is None else rdata[idx]
    hits = _fast_compare(op, lsub, rsub)
    if hits is not None:
        out = np.zeros(n, dtype=bool)
        if idx is None:
            out[:] = hits
        else:
            out[idx] = hits
        return out, valid
    out = np.zeros(n, dtype=bool)
    for i in range(n):
        if not valid[i]:
            continue
        a, b = ldata[i], rdata[i]
        try:
            if op == "=":
                out[i] = a == b
            elif op == "<>":
                out[i] = a != b
            elif op == "<":
                out[i] = a < b
            elif op == "<=":
                out[i] = a <= b
            elif op == ">":
                out[i] = a > b
            else:
                out[i] = a >= b
        except TypeError:
            raise _mdb_errors().SQLTypeError(
                f"cannot compare {type(a).__name__} with "
                f"{type(b).__name__}"
            ) from None
    return out, valid


def _fast_compare(
    op: str, lsub: np.ndarray, rsub: np.ndarray
) -> Optional[np.ndarray]:
    """Vectorised comparison of the valid subsets, or None to fall back."""
    all_valid = np.ones(len(lsub), dtype=bool)
    if _all_plain_str(lsub, all_valid) and _all_plain_str(rsub, all_valid):
        return _CMP_UFUNCS[op](lsub.astype(str), rsub.astype(str))
    lf = _exact_number_subset(lsub)
    if lf is None:
        return None
    rf = _exact_number_subset(rsub)
    if rf is None:
        return None
    return _CMP_UFUNCS[op](lf, rf)


def vec_concat(
    ldata: np.ndarray, rdata: np.ndarray, valid: np.ndarray
) -> Vector:
    """SQL ``||`` with NULL masking; ``np.char.add`` when both sides are
    str-typed, the f-string loop otherwise (identical output)."""
    n = len(ldata)
    if _all_plain_str(ldata, valid) and _all_plain_str(rdata, valid):
        out = np.empty(n, dtype=object)
        idx = _valid_index(valid)
        if idx is None:
            out[:] = np.char.add(
                ldata.astype(str), rdata.astype(str)
            ).tolist()
        else:
            out[idx] = np.char.add(
                ldata[idx].astype(str), rdata[idx].astype(str)
            ).tolist()
        return out, valid
    out = np.empty(n, dtype=object)
    for i in range(n):
        out[i] = f"{ldata[i]}{rdata[i]}" if valid[i] else None
    return out, valid


def vec_inlist_literals(
    data: np.ndarray,
    valid: np.ndarray,
    values: Sequence[Any],
    negated: bool,
) -> Optional[Vector]:
    """``operand IN (literal, ...)`` in one ``np.isin`` pass.

    ``values`` are raw literal values (``ast.Literal.value``); NULL items
    contribute no matches (SQL three-valued logic as implemented by the
    per-item loop).  Returns None when the operand/item type mix has no
    exact vectorised equivalent — the caller then runs the loop.
    """
    live = [v for v in values if v is not None]
    if is_numeric(data):
        nums = [v for v in live if isinstance(v, (int, float))]
        # An int item compared through a float64 `isin` buffer would
        # round; the loop compares it exactly as int64.  Mixed lists
        # with oversized ints therefore fall back.
        if any(isinstance(v, float) for v in nums) and any(
            isinstance(v, int)
            and not isinstance(v, bool)
            and not -_EXACT_INT <= v <= _EXACT_INT
            for v in nums
        ):
            return None
        if nums:
            hits = np.isin(data, np.asarray(nums))
            if not _const_true(valid):
                hits &= valid
        else:
            hits = np.zeros(len(data), dtype=bool)
    elif _all_plain_str(data, valid):
        strs = [v for v in live if isinstance(v, str)]
        if strs:
            sub = data if valid.all() else data[valid]
            inner = np.isin(sub.astype(str), np.asarray(strs))
            hits = np.zeros(len(data), dtype=bool)
            if valid.all():
                hits[:] = inner
            else:
                hits[np.nonzero(valid)[0]] = inner
            hits &= valid
        else:
            hits = np.zeros(len(data), dtype=bool)
    else:
        return None
    if negated:
        hits = ~hits
        if not _const_true(valid):
            hits &= valid
    return hits, all_valid(len(hits))


def vec_power(lvec: Vector, rvec: Vector) -> Vector:
    """SQL ``power(x, y)`` lane for compiled kernels.

    Unlike the unary scalar functions, ``power`` cannot take a
    vectorised fast path: the interpreter's per-row loop evaluates
    python's ``float ** float`` (libm ``pow``), while ``np.power``
    dispatches to numpy's own SIMD implementation whose results differ
    from libm in the last ulp on a few percent of ordinary finite
    inputs (measured on uniform doubles for exponents 2.0, 2.5, 3.0).
    ``REPRO_KERNELS=0`` is the bit-identical oracle, so this lane
    delegates to the exact registry loop — which also preserves the
    per-row error semantics verbatim: ``0 ** negative`` raises
    ``ExecutionError``, overflow raises a raw ``OverflowError``, and a
    negative base with a fractional exponent yields a complex result.
    Compiling ``power`` still pays off: the statement around it stays
    on the kernel path instead of being refused wholesale.
    """
    return _sql_functions().SCALAR_FUNCTIONS["power"](lvec, rvec)


# ---------------------------------------------------------------------------
# SQL expression compiler (SciQL UPDATE / SELECT)
# ---------------------------------------------------------------------------


class KernelEnv:
    """Columns a compiled kernel evaluates over: name → (data, valid)."""

    __slots__ = ("cols", "n")

    def __init__(self, cols: Dict[str, Vector], n: int):
        self.cols = cols
        self.n = n

    def window(self, lo: int, hi: int) -> "KernelEnv":
        return KernelEnv(
            {k: (d[lo:hi], v[lo:hi]) for k, (d, v) in self.cols.items()},
            hi - lo,
        )

    def gather(self, idx: np.ndarray) -> "KernelEnv":
        # Fancy-indexing a stride-0 all-True mask would materialise it;
        # keep the constant-True representation instead.
        return KernelEnv(
            {
                k: (
                    d[idx],
                    all_valid(len(idx)) if _const_true(v) else v[idx],
                )
                for k, (d, v) in self.cols.items()
            },
            len(idx),
        )


KernelFn = Callable[[KernelEnv], Vector]


@dataclass
class UpdatePlan:
    """A compiled ``UPDATE array`` statement."""

    where: Optional[KernelFn]
    assignments: List[Tuple[str, KernelFn]]  # (attr name, value kernel)
    columns: Tuple[str, ...]  # referenced column names (env keys)


#: Compiled SQL/SciQL plans (UPDATE, SELECT, tile_aggregate) keyed by
#: (schema signature, statement); the sentinel marks statements the
#: compiler refused so they are not re-lowered on every call.
sql_kernel_cache = LRUCache(maxsize=256, name="kernels.sql")
_REFUSED = object()
_MISS = object()


def _plan_cache_get(cache: LRUCache, key: Any) -> Any:
    """Cached plan, ``None`` for a cached refusal, or :data:`_MISS`.

    A refusal-sentinel lookup is reclassified on the cache's stats
    (:meth:`LRUCache.mark_refusal`): it saves re-lowering work but did
    not serve a usable plan, so counting it as a hit would overstate
    the compile caches' effectiveness in the obs snapshot.
    """
    cached = cache.get(key, _MISS)
    if cached is _REFUSED:
        cache.mark_refusal()
        return None
    return cached


def array_signature(array: Any) -> Tuple:
    """Hashable schema signature of a SciArray (cache-key component)."""
    return (
        array.name,
        tuple((d.name, "dim") for d in array.dimensions),
        tuple(
            (name, "attr", ctype.name) for name, ctype in array.attributes
        ),
    )


def compile_update(array: Any, stmt: ast.Update) -> Optional[UpdatePlan]:
    """Compile one SciQL UPDATE against an array's schema, or None.

    The plan is cached per ``(schema signature, statement)``; AST nodes
    are frozen dataclasses, hence hashable.  Unknown columns raise
    :class:`CatalogError` with the interpretive path's message.
    """
    sig = array_signature(array)
    key = (sig, stmt.where, tuple(stmt.assignments))
    cached = _plan_cache_get(sql_kernel_cache, key)
    if cached is not _MISS:
        return cached
    schema = {d.name: "dim" for d in array.dimensions}
    for name, _ in array.attributes:
        schema[name] = "attr"
    refs: set = set()
    try:
        where = (
            None
            if stmt.where is None
            else _compile_sql(stmt.where, schema, array.name, refs)
        )
        assignments = []
        for attr_name, expr in stmt.assignments:
            if schema.get(attr_name.lower()) != "attr":
                raise _mdb_errors().CatalogError(
                    f"no attribute {attr_name!r} in array {array.name!r}"
                )
            assignments.append(
                (attr_name, _compile_sql(expr, schema, array.name, refs))
            )
    except Unsupported:
        sql_kernel_cache.put(key, _REFUSED)
        return None
    plan = UpdatePlan(where, assignments, tuple(sorted(refs)))
    sql_kernel_cache.put(key, plan)
    return plan


@dataclass
class SelectPlan:
    """A compiled single-array ``SELECT`` statement."""

    where: Optional[KernelFn]
    outputs: List[Tuple[str, KernelFn]]  # (output name, projection kernel)
    columns: Tuple[str, ...]  # referenced column names (env keys)
    # Columns the WHERE kernel reads — the only ones that must exist at
    # full array length; everything else is materialised already gathered.
    where_columns: Tuple[str, ...]


def compile_select(array: Any, stmt: ast.Select) -> Optional[SelectPlan]:
    """Compile one single-array SELECT against the array's schema, or None.

    Lowers the WHERE and every projection item into kernels over the
    attribute planes: the interpretive path's full-frame materialisation
    (``to_frame`` plus a whole-frame ``take``) disappears — only the
    referenced columns are touched, and projections evaluate over only
    the gathered WHERE survivors.  Joins, GROUP BY, HAVING, ORDER BY
    and aggregates stay interpretive; ``DISTINCT``/``LIMIT``/``OFFSET``
    are applied by the caller's shared helpers after the plan runs, so
    they need no lowering.  Unknown columns raise :class:`CatalogError`;
    the caller falls back to the interpretive path, which owns the
    raise order.
    """
    ast = _sql_ast()
    sig = array_signature(array)
    key = (sig, "select", stmt)
    cached = _plan_cache_get(sql_kernel_cache, key)
    if cached is not _MISS:
        return cached
    schema = {d.name: "dim" for d in array.dimensions}
    for name, _ in array.attributes:
        schema[name] = "attr"
    refs: set = set()
    where_refs: set = set()
    try:
        if (
            stmt.from_table is None
            or stmt.joins
            or stmt.group_by
            or stmt.having is not None
            or stmt.order_by
        ):
            raise Unsupported("select shape")
        binding = stmt.from_table.binding
        # WHERE first: projection kernels run over only its survivors.
        where = (
            None
            if stmt.where is None
            else _compile_sql(stmt.where, schema, binding, where_refs)
        )
        outputs: List[Tuple[str, KernelFn]] = []
        for item in stmt.items:
            if isinstance(item.expr, ast.Star):
                if (
                    item.expr.table is not None
                    and item.expr.table != binding
                ):
                    raise Unsupported("qualified star")
                # Schema insertion order (dims, then attributes) is the
                # frame's column order, so `*` expands identically.
                for name in schema:
                    refs.add(name)
                    outputs.append(
                        (name, lambda env, _n=name: env.cols[_n])
                    )
                continue
            fn = _compile_sql(item.expr, schema, binding, refs)
            name = item.alias or _sql_executor()._default_name(item.expr)
            outputs.append((name, fn))
    except Unsupported:
        sql_kernel_cache.put(key, _REFUSED)
        return None
    plan = SelectPlan(
        where,
        outputs,
        tuple(sorted(refs | where_refs)),
        tuple(sorted(where_refs)),
    )
    sql_kernel_cache.put(key, plan)
    return plan


@dataclass
class TileAggregatePlan:
    """A compiled ``tile_aggregate`` reduction over one attribute plane."""

    attr: str
    func: str
    tile: Tuple[int, ...]
    axes: Tuple[int, ...]
    # (plane, start tile-row, stop tile-row) → reduced block
    fn: Callable[[np.ndarray, int, int], np.ndarray]


_TILE_REDUCERS = {
    "mean": np.mean,
    "sum": np.sum,
    "min": np.min,
    "max": np.max,
}


def compile_tile_aggregate(
    array: Any, tile: Sequence[int], func: str, attr: str
) -> Optional[TileAggregatePlan]:
    """Plan one tiled reduction, or None outside the kernel subset
    (unknown reducer, mismatched tile rank, object-typed plane — the
    interpretive path owns validation errors).

    The compiled reduction skips the interpretive path's unconditional
    ``astype(float)`` when the plane is already float64, reducing
    straight from the reshaped block — bit-identical, since ``astype``
    on float64 input is an identity copy and the reduction input is
    C-contiguous either way (``reshape`` of a trimmed block copies into
    contiguous layout when the view cannot be reshaped in place).
    """
    tile = tuple(int(t) for t in tile)
    # The schema signature carries no dimension extents (UPDATE/SELECT
    # kernels are length-agnostic), but a tile plan bakes the trimmed
    # shape into its closure — key on the concrete shape too.
    key = (array_signature(array), array.shape, "tile", tile, func, attr)
    cached = _plan_cache_get(sql_kernel_cache, key)
    if cached is not _MISS:
        return cached
    reducer = _TILE_REDUCERS.get(func)
    shape = array.shape
    if (
        reducer is None
        or len(tile) != len(shape)
        or any(t < 1 for t in tile)
        or any(s // t == 0 for s, t in zip(shape, tile))
        or not array.has_attribute(attr)
        or array.attribute_type(attr).dtype == np.dtype(object)
    ):
        sql_kernel_cache.put(key, _REFUSED)
        return None
    trimmed = tuple((s // t) * t for s, t in zip(shape, tile))
    axes = tuple(range(1, 2 * len(shape), 2))
    tail = tuple(slice(0, s) for s in trimmed[1:])
    inner_shape: List[int] = []
    for s, t in zip(trimmed[1:], tile[1:]):
        inner_shape.extend([s // t, t])
    skip_cast = array.attribute_type(attr).dtype == np.float64

    def reduce_rows(data: np.ndarray, start: int, stop: int) -> np.ndarray:
        block = data[(slice(start * tile[0], stop * tile[0]),) + tail]
        block = block.reshape([stop - start, tile[0], *inner_shape])
        if not skip_cast:
            block = block.astype(float)
        return reducer(block, axis=axes)

    plan = TileAggregatePlan(attr, func, tile, axes, reduce_rows)
    sql_kernel_cache.put(key, plan)
    return plan


def _compile_sql(
    expr: ast.Expr, schema: Dict[str, str], binding: str, refs: set
) -> KernelFn:
    """Lower one SQL expression AST node to a closure over a KernelEnv."""
    fn, _owned = _compile_sql_node(expr, schema, binding, refs)
    return fn


#: Scalar functions the compiler lowers (name → arity).  Everything
#: else refuses to the interpretive path, which owns unknown-function,
#: aggregate-misuse and arity errors.
_COMPILED_FUNCTIONS = {
    "abs": 1,
    "sqrt": 1,
    "floor": 1,
    "ceil": 1,
    "ceiling": 1,
    "power": 2,
}


def _compile_sql_node(
    expr: ast.Expr, schema: Dict[str, str], binding: str, refs: set
) -> Tuple[KernelFn, bool]:
    """Lower one SQL AST node to ``(closure, owned)``.

    ``owned`` marks closures whose result array is freshly allocated on
    every call — a temporary the parent operator may overwrite in place
    (``reuse=`` on :func:`vec_arith`, ``out=`` on unary negate).
    Literal broadcasts and column references are *borrowed*: they alias
    read-only compile-time seeds or live :class:`KernelEnv` columns
    that every assignment kernel of a plan shares, so they are never
    written through.
    """
    ast = _sql_ast()
    if isinstance(expr, ast.Literal):
        value = expr.value
        # Materialise the literal once at compile time and stretch it
        # with stride-0 broadcast views per call: ufuncs treat those
        # like scalars, so no per-evaluation n-sized allocation.
        seed_data, seed_valid = broadcast_literal(value, 1)

        def literal(env: KernelEnv) -> Vector:
            return (
                np.broadcast_to(seed_data, (env.n,)),
                np.broadcast_to(seed_valid, (env.n,)),
            )

        return literal, False
    if isinstance(expr, ast.ColumnRef):
        name = expr.name
        if expr.table is not None:
            if expr.table != binding or name not in schema:
                raise _mdb_errors().CatalogError(
                    f"unknown column {expr.table}.{name}"
                )
        elif name not in schema:
            raise _mdb_errors().CatalogError(f"unknown column {name!r}")
        refs.add(name)
        return (lambda env: env.cols[name]), False
    if isinstance(expr, ast.UnaryOp):
        inner, inner_owned = _compile_sql_node(
            expr.operand, schema, binding, refs
        )
        if expr.op == "-":

            def negate(env: KernelEnv) -> Vector:
                data, valid = inner(env)
                if is_numeric(data):
                    if inner_owned:
                        return np.negative(data, out=data), valid
                    return -data, valid
                out = np.empty(len(data), dtype=object)
                for i, v in enumerate(data):
                    out[i] = -v if valid[i] else None
                return out, valid

            return negate, True
        if expr.op == "NOT":

            def invert(env: KernelEnv) -> Vector:
                mask = bool_mask(inner(env))
                return ~mask, all_valid(len(mask))

            return invert, True
        raise Unsupported(expr.op)
    if isinstance(expr, ast.BinaryOp):
        op = expr.op
        left, left_owned = _compile_sql_node(
            expr.left, schema, binding, refs
        )
        right, right_owned = _compile_sql_node(
            expr.right, schema, binding, refs
        )
        if op in ("AND", "OR"):

            def logical(env: KernelEnv) -> Vector:
                lmask = bool_mask(left(env))
                rmask = bool_mask(right(env))
                out = (lmask & rmask) if op == "AND" else (lmask | rmask)
                return out, all_valid(len(out))

            return logical, True
        if op == "||":

            def concat(env: KernelEnv) -> Vector:
                ldata, lvalid = left(env)
                rdata, rvalid = right(env)
                return vec_concat(ldata, rdata, and_valid(lvalid, rvalid))

            return concat, True
        if op in ("+", "-", "*", "/", "%"):
            in_place = op in ("+", "-", "*")

            def arith(env: KernelEnv) -> Vector:
                ldata, lvalid = left(env)
                rdata, rvalid = right(env)
                reuse = None
                if in_place and is_numeric(ldata) and is_numeric(rdata):
                    # Overwrite an owned operand whose dtype already
                    # matches the result: no allocation, same values
                    # (ufuncs are well-defined with out= aliasing an
                    # input).
                    rt = np.result_type(ldata, rdata)
                    if left_owned and ldata.dtype == rt:
                        reuse = ldata
                    elif right_owned and rdata.dtype == rt:
                        reuse = rdata
                return vec_arith(
                    op, ldata, rdata, and_valid(lvalid, rvalid), reuse=reuse
                )

            return arith, True
        if op in ("=", "<>", "<", "<=", ">", ">="):

            def compare(env: KernelEnv) -> Vector:
                ldata, lvalid = left(env)
                rdata, rvalid = right(env)
                return vec_compare(
                    op, ldata, rdata, and_valid(lvalid, rvalid)
                )

            return compare, True
        raise Unsupported(op)
    if isinstance(expr, ast.FunctionCall):
        name = expr.name
        fns = _sql_functions()
        if (
            expr.star
            or expr.distinct
            or fns.is_aggregate(name)
            or _COMPILED_FUNCTIONS.get(name) != len(expr.args)
            or name not in fns.SCALAR_FUNCTIONS
        ):
            raise Unsupported(name)
        arg_fns = [
            _compile_sql_node(arg, schema, binding, refs)[0]
            for arg in expr.args
        ]
        if name == "power":
            base_fn, exp_fn = arg_fns

            def power_call(env: KernelEnv) -> Vector:
                return vec_power(base_fn(env), exp_fn(env))

            return power_call, True
        # The registry implementations of the unary functions are
        # already vectorised (`_numeric_unary`); delegating to them —
        # exactly as the interpreter's FunctionCall evaluation does —
        # makes divergence between the paths structurally impossible.
        fn = fns.SCALAR_FUNCTIONS[name]
        arg0 = arg_fns[0]

        def scalar_call(env: KernelEnv) -> Vector:
            return fn(arg0(env))

        return scalar_call, True
    if isinstance(expr, ast.InList):
        operand, _ = _compile_sql_node(expr.operand, schema, binding, refs)
        negated = expr.negated
        if all(isinstance(item, ast.Literal) for item in expr.items):
            values = tuple(item.value for item in expr.items)

            def inlist_fast(env: KernelEnv) -> Vector:
                data, valid = operand(env)
                fast = vec_inlist_literals(data, valid, values, negated)
                if fast is not None:
                    return fast
                item_vecs = [
                    broadcast_literal(v, env.n) for v in values
                ]
                return _inlist_loop(data, valid, item_vecs, negated)

            return inlist_fast, True
        items = [
            _compile_sql(item, schema, binding, refs) for item in expr.items
        ]

        def inlist(env: KernelEnv) -> Vector:
            data, valid = operand(env)
            return _inlist_loop(
                data, valid, [item(env) for item in items], negated
            )

        return inlist, True
    if isinstance(expr, ast.Between):
        operand, _ = _compile_sql_node(expr.operand, schema, binding, refs)
        low = _compile_sql(expr.low, schema, binding, refs)
        high = _compile_sql(expr.high, schema, binding, refs)
        negated = expr.negated

        def between(env: KernelEnv) -> Vector:
            data, valid = operand(env)
            low_d, low_v = low(env)
            high_d, high_v = high(env)
            ge = bool_mask(
                vec_compare(">=", data, low_d, and_valid(valid, low_v))
            )
            le = bool_mask(
                vec_compare("<=", data, high_d, and_valid(valid, high_v))
            )
            out = ge & le
            if negated:
                out = ~out & valid
            return out, all_valid(len(out))

        return between, True
    if isinstance(expr, ast.IsNull):
        operand, _ = _compile_sql_node(expr.operand, schema, binding, refs)
        negated = expr.negated

        def isnull(env: KernelEnv) -> Vector:
            _, valid = operand(env)
            out = valid.copy() if negated else ~valid
            return out, all_valid(len(out))

        return isnull, True
    # Like / Cast / Case / Star: interpretive path.
    raise Unsupported(type(expr).__name__)


def _inlist_loop(
    data: np.ndarray,
    valid: np.ndarray,
    item_vecs: Sequence[Vector],
    negated: bool,
) -> Vector:
    """The exact per-item IN evaluation (matches the interpreter)."""
    hits = np.zeros(len(data), dtype=bool)
    for idata, ivalid in item_vecs:
        hits |= bool_mask(vec_compare("=", data, idata, valid & ivalid))
    if negated:
        hits = ~hits
        if not _const_true(valid):
            hits &= valid
    return hits, all_valid(len(hits))


# ---------------------------------------------------------------------------
# stSPARQL FILTER compiler
# ---------------------------------------------------------------------------


class _FilterCtx:
    """Packed numeric binding columns over the kernel lane's rows."""

    __slots__ = ("cols", "n", "no_err")

    def __init__(self, cols: Dict[str, np.ndarray], n: int):
        self.cols = cols
        self.n = n
        self.no_err = np.zeros(n, dtype=bool)


#: (value, error) pair over the lane; kind is fixed at compile time.
_FilterNode = Tuple[Callable[[_FilterCtx], Tuple[np.ndarray, np.ndarray]], str]


@dataclass
class FilterPlan:
    """A compiled FILTER expression over numeric variable bindings."""

    variables: Tuple[str, ...]
    fn: Callable[[_FilterCtx], np.ndarray]  # → pass/fail verdict per row


filter_kernel_cache = LRUCache(maxsize=256, name="kernels.filter")


def compile_filter(expr: alg.Expr) -> Optional[FilterPlan]:
    """Compile one stSPARQL FILTER expression, or None when any part of
    it falls outside the numeric kernel subset (spatial calls, string
    operands, ...).  Compiled plans — and refusals — are cached on the
    expression node itself (algebra nodes are frozen dataclasses)."""
    cached = _plan_cache_get(filter_kernel_cache, expr)
    if cached is not _MISS:
        return cached
    refs: set = set()
    try:
        node, kind = _compile_filter_expr(expr, refs)
    except Unsupported:
        filter_kernel_cache.put(expr, _REFUSED)
        return None

    def verdict(ctx: _FilterCtx) -> np.ndarray:
        value, err = node(ctx)
        return _filter_ebv(value, kind) & ~err

    plan = FilterPlan(tuple(sorted(refs)), verdict)
    filter_kernel_cache.put(expr, plan)
    return plan


def _filter_ebv(value: np.ndarray, kind: str) -> np.ndarray:
    """SPARQL effective boolean value of a lowered (num|bool) vector."""
    if kind == "bool":
        return value
    return (value != 0) & ~np.isnan(value)


def _filter_const(term: Literal) -> Tuple[float, str]:
    """(value, kind) of a constant literal, or Unsupported."""
    try:
        py = term.to_python()
    except Exception:  # unparseable lexical form: interpretive path
        raise Unsupported("literal") from None
    if isinstance(py, bool):
        return (1.0 if py else 0.0), "bool"
    if isinstance(py, int):
        if not -_EXACT_INT <= py <= _EXACT_INT:
            raise Unsupported("oversized int literal")
        return float(py), "num"
    if isinstance(py, float):
        return py, "num"
    raise Unsupported("non-numeric literal")


def _compile_filter_expr(expr: alg.Expr, refs: set) -> _FilterNode:
    """Lower one algebra node to ``ctx → (value, error)`` over the lane.

    The lane contract (enforced by :func:`run_filter`) is that every
    referenced variable is bound to an exactly-representable numeric
    literal, so an EVar is simply its packed column.  Error vectors
    reproduce ``_ExprError`` propagation: an erroring subexpression
    poisons its row, except across ``||`` (error recovery) exactly as
    the interpreter's short-circuit rules dictate.
    """
    alg = _algebra()
    if isinstance(expr, alg.EVar):
        name = expr.name
        refs.add(name)
        return (lambda ctx: (ctx.cols[name], ctx.no_err)), "num"
    if isinstance(expr, alg.ETerm):
        if not isinstance(expr.term, Literal):
            raise Unsupported("non-literal term")
        if expr.term.is_numeric:
            value, kind = _filter_const(expr.term)
        else:
            py = expr.term.to_python()
            if not isinstance(py, bool):
                raise Unsupported("non-numeric literal")
            value, kind = (1.0 if py else 0.0), "bool"
        if kind == "bool":
            const = bool(value)
            return (
                lambda ctx: (np.full(ctx.n, const, dtype=bool), ctx.no_err)
            ), "bool"
        return (
            lambda ctx: (np.full(ctx.n, value, dtype=np.float64), ctx.no_err)
        ), "num"
    if isinstance(expr, alg.EUnary):
        inner, kind = _compile_filter_expr(expr.operand, refs)
        if expr.op == "!":

            def negation(ctx: _FilterCtx):
                value, err = inner(ctx)
                return ~_filter_ebv(value, kind), err

            return negation, "bool"
        if expr.op == "-":
            if kind != "num":
                raise Unsupported("unary minus on boolean")

            def minus(ctx: _FilterCtx):
                value, err = inner(ctx)
                return -value, err

            return minus, "num"
        raise Unsupported(expr.op)
    if isinstance(expr, alg.EBinary):
        return _compile_filter_binary(expr, refs)
    if isinstance(expr, alg.ECall):
        if expr.name == "bound" and len(expr.args) == 1:
            arg = expr.args[0]
            if isinstance(arg, alg.EVar):
                # Lane rows have every referenced variable bound.
                refs.add(arg.name)
                return (
                    lambda ctx: (
                        np.ones(ctx.n, dtype=bool),
                        ctx.no_err,
                    )
                ), "bool"
            return (
                lambda ctx: (np.zeros(ctx.n, dtype=bool), ctx.no_err)
            ), "bool"
        raise Unsupported(expr.name)
    raise Unsupported(type(expr).__name__)


def _compile_filter_binary(expr: alg.EBinary, refs: set) -> _FilterNode:
    op = expr.op
    left, lkind = _compile_filter_expr(expr.left, refs)
    right, rkind = _compile_filter_expr(expr.right, refs)
    if op == "&&":
        # left-error → whole expression errors (→ row fails); a False
        # left short-circuits before the right can error.  Both encode
        # as: fail on any error, else l and r.
        def logical_and(ctx: _FilterCtx):
            lv, le = left(ctx)
            rv, re_ = right(ctx)
            return (
                _filter_ebv(lv, lkind) & _filter_ebv(rv, rkind),
                le | re_,
            )

        return logical_and, "bool"
    if op == "||":
        # || recovers from a left error; a true left short-circuits a
        # right error away.
        def logical_or(ctx: _FilterCtx):
            lv, le = left(ctx)
            rv, re_ = right(ctx)
            lt = _filter_ebv(lv, lkind) & ~le
            rt = _filter_ebv(rv, rkind) & ~re_
            return lt | rt, np.zeros(ctx.n, dtype=bool)

        return logical_or, "bool"
    if op in ("=", "!="):

        def equality(ctx: _FilterCtx):
            lv, le = left(ctx)
            rv, re_ = right(ctx)
            if lkind == "num" and rkind == "num":
                eq = lv == rv
            else:
                # _terms_equal falls back to EBV equality as soon as one
                # side is boolean.
                eq = _filter_ebv(lv, lkind) == _filter_ebv(rv, rkind)
            return (eq if op == "=" else ~eq), le | re_

        return equality, "bool"
    if op in ("<", "<=", ">", ">="):

        def comparison(ctx: _FilterCtx):
            lv, le = left(ctx)
            rv, re_ = right(ctx)
            # Booleans compare as 0/1 (python bool is an int).
            lf = lv.astype(np.float64) if lkind == "bool" else lv
            rf = rv.astype(np.float64) if rkind == "bool" else rv
            return _CMP_UFUNCS[op](lf, rf), le | re_

        return comparison, "bool"
    if op in ("+", "-", "*", "/"):
        if lkind != "num" or rkind != "num":
            raise Unsupported("boolean in numeric context")
        ufunc = {
            "+": np.add,
            "-": np.subtract,
            "*": np.multiply,
            "/": np.divide,
        }[op]

        def arithmetic(ctx: _FilterCtx):
            lv, le = left(ctx)
            rv, re_ = right(ctx)
            err = le | re_
            if op == "/":
                err = err | (rv == 0)
                with np.errstate(all="ignore"):
                    return ufunc(lv, np.where(rv == 0, 1.0, rv)), err
            with np.errstate(all="ignore"):
                return ufunc(lv, rv), err

        return arithmetic, "num"
    raise Unsupported(op)


def run_filter(
    plan: FilterPlan,
    solutions: List[Dict[str, Any]],
    fallback: Callable[[Dict[str, Any]], bool],
) -> List[Dict[str, Any]]:
    """Apply a compiled FILTER over candidate solutions.

    Bindings of every referenced variable are packed into float64
    columns; rows where each binding is an exactly-representable numeric
    literal form the kernel lane (one vectorised verdict), the rest are
    judged individually by ``fallback`` (the interpreter) — order is
    preserved either way.
    """
    n = len(solutions)
    lane = np.ones(n, dtype=bool)
    columns: Dict[str, np.ndarray] = {}
    for var in plan.variables:
        vals = np.zeros(n, dtype=np.float64)
        ok = np.zeros(n, dtype=bool)
        for i, sol in enumerate(solutions):
            term = sol.get(var)
            if not isinstance(term, Literal) or not term.is_numeric:
                continue
            try:
                py = term.to_python()
            except Exception:
                continue
            if isinstance(py, bool):
                continue
            if isinstance(py, int):
                if not -_EXACT_INT <= py <= _EXACT_INT:
                    continue
                vals[i] = float(py)
            elif isinstance(py, float):
                vals[i] = py
            else:
                continue
            ok[i] = True
        lane &= ok
        columns[var] = vals
    idx = np.nonzero(lane)[0]
    verdict = None
    if idx.size:
        ctx = _FilterCtx(
            {var: vals[idx] for var, vals in columns.items()}, int(idx.size)
        )
        verdict = plan.fn(ctx)
    out: List[Dict[str, Any]] = []
    j = 0
    fell_back = 0
    for i, sol in enumerate(solutions):
        if lane[i]:
            if verdict[j]:
                out.append(sol)
            j += 1
        else:
            fell_back += 1
            if fallback(sol):
                out.append(sol)
    obs.counter("stsparql.filter.kernel_rows").inc(int(idx.size))
    if fell_back:
        obs.counter("stsparql.filter.fallback_rows").inc(fell_back)
    return out


# ---------------------------------------------------------------------------
# stSPARQL spatial FILTER compiler (batched over PackedEnvelopes)
# ---------------------------------------------------------------------------


@dataclass
class SpatialFilterPlan:
    """A compiled spatial FILTER: one variable against one constant
    geometry, prefiltered (or decided outright) through packed
    envelopes."""

    variable: str
    const: Any  # the constant geometry literal term
    geom: Any  # its parsed geometry
    envelope: Any  # its envelope
    srid: int
    kind: str  # "predicate" | "distance"
    op: str = ""  # normalised: distance(var, const) OP bound
    bound: float = 0.0


#: Comparison flip for ``bound OP distance(...)`` → ``distance(...) OP'
#: bound``.
_DISTANCE_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def compile_spatial_filter(expr: alg.Expr) -> Optional[SpatialFilterPlan]:
    """Compile one spatial FILTER over packed envelopes, or None.

    Two shapes lower:

    * an **indexable predicate call** (``strdf:intersects(?g, CONST)``,
      either argument order) — every such predicate implies envelope
      intersection, so envelope-disjoint rows fail vectorised (the same
      reasoning as the evaluator's prefilter) and only envelope
      survivors run the exact geometry test;
    * a **distance comparison** against a numeric bound
      (``strdf:distance(?g, CONST) < 10``, call on either side) — the
      envelope distance lower-bounds the geometry distance, so rows
      whose envelope distance already exceeds the bound are decided
      without the exact geometry pass.

    Plans — and refusals — are cached in :data:`filter_kernel_cache`
    under ``("spatial", expr)``, disjoint from :func:`compile_filter`'s
    numeric-plan keys on the bare expression node.
    """
    key = ("spatial", expr)
    cached = _plan_cache_get(filter_kernel_cache, key)
    if cached is not _MISS:
        return cached
    try:
        plan = _lower_spatial(expr)
    except Unsupported:
        filter_kernel_cache.put(key, _REFUSED)
        return None
    filter_kernel_cache.put(key, plan)
    return plan


def _const_geometry(term: Any) -> Tuple[Any, Any]:
    """Parse a constant geometry literal at compile time, or refuse."""
    strdf = _strdf()
    try:
        geom = strdf.literal_geometry(term)
    except strdf.StRDFError:
        raise Unsupported("unparseable constant geometry") from None
    envelope = geom.envelope
    if envelope.is_empty:
        # Envelope reasoning says nothing about an empty probe; let the
        # exact filter judge every solution.
        raise Unsupported("empty probe envelope")
    return geom, envelope


def _lower_spatial(expr: alg.Expr) -> SpatialFilterPlan:
    alg = _algebra()
    spec = _stsparql_evaluator()._indexable_call_spec(expr)
    if spec is not None:
        var, const = spec
        geom, envelope = _const_geometry(const)
        return SpatialFilterPlan(
            var, const, geom, envelope, geom.srid, "predicate"
        )
    if not isinstance(expr, alg.EBinary) or expr.op not in _DISTANCE_FLIP:
        raise Unsupported("not a spatial filter")
    if isinstance(expr.left, alg.ECall):
        call, bound_side, flipped = expr.left, expr.right, False
    elif isinstance(expr.right, alg.ECall):
        call, bound_side, flipped = expr.right, expr.left, True
    else:
        raise Unsupported("not a spatial filter")
    if (
        call.name not in _stsparql_functions().DISTANCE_FUNCTIONS
        or len(call.args) != 2
    ):
        raise Unsupported("not a distance call")
    strdf = _strdf()
    var, const = None, None
    for arg in call.args:
        if isinstance(arg, alg.EVar):
            var = arg.name
        elif isinstance(arg, alg.ETerm) and strdf.is_geometry_literal(
            arg.term
        ):
            const = arg.term
    if var is None or const is None:
        raise Unsupported("distance arguments")
    if not isinstance(bound_side, alg.ETerm) or not isinstance(
        bound_side.term, Literal
    ):
        raise Unsupported("non-constant bound")
    if not bound_side.term.is_numeric:
        raise Unsupported("non-numeric bound")
    bound, kind = _filter_const(bound_side.term)
    if kind != "num":
        raise Unsupported("boolean bound")
    op = _DISTANCE_FLIP[expr.op] if flipped else expr.op
    geom, envelope = _const_geometry(const)
    return SpatialFilterPlan(
        var, const, geom, envelope, geom.srid, "distance", op, float(bound)
    )


def run_spatial_filter(
    plan: SpatialFilterPlan,
    solutions: List[Dict[str, Any]],
    geometry: Callable[[Any], Any],
    fallback: Callable[[Dict[str, Any]], bool],
) -> List[Dict[str, Any]]:
    """Apply a compiled spatial FILTER over candidate solutions.

    Rows whose binding is a parseable geometry literal in the
    constant's SRID are packed into one
    :class:`~repro.geometry.envelope.PackedEnvelopes` pass:

    * predicate plans: envelope-disjoint rows fail vectorised;
      envelope survivors run the exact geometry test via ``fallback``;
    * distance plans: rows whose envelope distance (a lower bound on
      the geometry distance) strictly exceeds the bound are decided
      vectorised — True for ``>``/``>=`` plans, False for ``<``/``<=``
      — and only the near rows run exact.

    Rows outside the lane (missing binding, non-geometry term, parse
    error, SRID mismatch) are judged individually by ``fallback``, so
    the exact path keeps its verdict on them; solution order is
    preserved either way.
    """
    from repro.geometry.envelope import PackedEnvelopes

    strdf = _strdf()
    n = len(solutions)
    lane_idx: List[int] = []
    envelopes = []
    for i, sol in enumerate(solutions):
        term = sol.get(plan.variable)
        if term is None or not strdf.is_geometry_literal(term):
            continue
        try:
            geom = geometry(term)
        except strdf.StRDFError:
            continue
        if geom.srid != plan.srid:
            continue
        lane_idx.append(i)
        envelopes.append(geom.envelope)
    decided = np.zeros(n, dtype=bool)
    verdicts = np.zeros(n, dtype=bool)
    if lane_idx:
        packed = PackedEnvelopes.pack(envelopes)
        idx = np.asarray(lane_idx, dtype=int)
        if plan.kind == "predicate":
            hit = packed.intersects(plan.envelope)
            decided[idx[~hit]] = True  # env-disjoint ⇒ predicate False
        else:
            env_dist = packed.distance(plan.envelope)
            # np.hypot can land an ulp above the correctly-rounded
            # scalar distance, so shave a relative margin off the lower
            # bound before deciding; rows inside the margin go to the
            # exact fallback instead of risking a mis-decided verdict.
            far = env_dist * (1.0 - 1e-12) > plan.bound
            decided[idx[far]] = True
            if plan.op in (">", ">="):
                verdicts[idx[far]] = True
    out: List[Dict[str, Any]] = []
    exact_rows = 0
    for i, sol in enumerate(solutions):
        if decided[i]:
            if verdicts[i]:
                out.append(sol)
            continue
        exact_rows += 1
        if fallback(sol):
            out.append(sol)
    obs.counter("stsparql.spatial.batch_rows").inc(n)
    obs.counter("stsparql.spatial.env_decided").inc(int(decided.sum()))
    if exact_rows:
        obs.counter("stsparql.spatial.exact_rows").inc(exact_rows)
    return out


# ---------------------------------------------------------------------------
# adaptive tiling
# ---------------------------------------------------------------------------


class AdaptiveTiler:
    """Decides row-band tiling from observed serial throughput.

    Each operation name carries an EWMA of serial cells/sec.  Tiling
    engages only when the predicted serial time is long enough that a
    band is worth at least :data:`MIN_TASK_SECONDS` of work — the
    adaptive replacement for the old static ``PARALLEL_MIN_CELLS``
    floor, which tiled cheap numpy passes whose band bookkeeping cost
    more than the pass itself.
    """

    #: Cold-start estimate: with no observation yet, ~65k cells predict
    #: ~3.3ms of work — just under the tiling threshold, matching the
    #: old static floor's behaviour until real rates arrive.
    DEFAULT_RATE = 2e7
    #: A band must be worth at least this much predicted serial time.
    MIN_TASK_SECONDS = 0.002

    def __init__(self) -> None:
        self._rates: Dict[str, float] = {}
        self._lock = threading.Lock()

    def observe(self, op: str, cells: int, seconds: float) -> None:
        """Record one *serial* pass (cells processed, wall seconds)."""
        if cells <= 0 or seconds <= 0:
            return
        rate = cells / seconds
        with self._lock:
            previous = self._rates.get(op)
            self._rates[op] = (
                rate if previous is None else 0.7 * previous + 0.3 * rate
            )
        obs.gauge(f"kernels.tiler.rate.{op}").set(self._rates[op])

    def rate(self, op: str) -> float:
        with self._lock:
            return self._rates.get(op, self.DEFAULT_RATE)

    def parts(self, op: str, cells: int, workers: int) -> int:
        """Number of row bands to split into (1 = stay serial)."""
        estimate = cells / self.rate(op)
        if estimate < 2 * self.MIN_TASK_SECONDS:
            return 1
        return max(
            2,
            min(workers * 2, int(estimate / self.MIN_TASK_SECONDS)),
        )

    def reset(self) -> None:
        with self._lock:
            self._rates.clear()


#: Process-wide tiler shared by the SciQL operators.
TILER = AdaptiveTiler()


def clear_caches() -> None:
    """Drop every compiled kernel and learned tiling rate (benchmarks
    use this to measure cold-compile cost)."""
    sql_kernel_cache.clear()
    filter_kernel_cache.clear()
    TILER.reset()


