"""The preemptable query serving tier — the observatory's front door.

A TELEIOS deployment serves many concurrent scientists; a query engine
that runs every request to completion on the caller's thread lets one
adversarial scan starve everything queued behind it.  This package puts
a service layer in front of the stores:

* :mod:`repro.server.service` — :class:`QueryServer`, an asyncio tier
  executing stSPARQL requests under quantum-based preemption: a query
  runs for a time slice over the resumable iterator pipeline
  (:mod:`repro.strabon.stsparql.iterators`), suspends, returns the
  partial results plus an opaque continuation token, and resumes from
  exactly that point on the next request.
* :mod:`repro.server.scheduler` — per-tenant FIFO queues drained by a
  deficit round-robin scheduler with queue-depth admission control
  (reject with backpressure instead of queueing without bound).
* :mod:`repro.server.continuations` — the token codec: pipeline state is
  serialised to JSON, bound to the store version it was captured
  against, and base64-encoded into an opaque, self-contained token.
"""

from repro.server.continuations import (
    ContinuationError,
    decode_token,
    encode_token,
)
from repro.server.scheduler import (
    AdmissionError,
    DeficitScheduler,
    ServerRequest,
)
from repro.server.service import QueryPage, QueryServer

__all__ = [
    "AdmissionError",
    "ContinuationError",
    "DeficitScheduler",
    "QueryPage",
    "QueryServer",
    "ServerRequest",
    "decode_token",
    "encode_token",
]
