"""Per-tenant quantum scheduling and admission control.

The serving tier holds one FIFO queue per tenant.  :meth:`take` drains
them with **deficit round-robin**: each tenant accumulates credits at
its quota rate on every scheduler round and spends one credit per
quantum, so a tenant with quota 2 gets two time slices for every one a
quota-1 tenant gets — heavy tenants cannot crowd out light ones, and a
tenant's own long queries queue behind its own short ones only.

Admission control bounds the damage of a flood *before* it queues:
a request for a tenant whose queue already holds ``max_pending``
requests — or arriving when the server-wide ``max_total`` is reached —
is rejected immediately with :class:`AdmissionError` (backpressure the
client can see and retry against), never queued without bound.

The scheduler is synchronous and lock-free by design: the asyncio
serving loop is its only driver, so calls never interleave.  Determinism
matters more here than parallelism — given the same admission order the
same schedule replays, which the fairness tests rely on.
"""

from __future__ import annotations

import os
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro import obs

__all__ = [
    "AdmissionError",
    "DeficitScheduler",
    "ServerRequest",
    "TENANT_QUOTA_ENV",
    "env_max_pending",
]

#: Environment variable: per-tenant admission queue depth (default 8).
TENANT_QUOTA_ENV = "REPRO_TENANT_QUOTA"

_DEFAULT_MAX_PENDING = 8


def env_max_pending(default: int = _DEFAULT_MAX_PENDING) -> int:
    """Per-tenant queue depth from ``REPRO_TENANT_QUOTA``.

    Mis-set values degrade to the default (recorded on the
    ``server.config.invalid`` counter) — an operator typo must not turn
    into either an uncapped queue or a server that admits nothing.
    """
    raw = os.environ.get(TENANT_QUOTA_ENV, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        value = 0
    if value < 1:
        obs.counter("server.config.invalid").inc()
        return default
    return value


class AdmissionError(RuntimeError):
    """A request was rejected at admission (queue depth exhausted)."""

    def __init__(self, tenant: str, depth: int, limit: int, scope: str):
        super().__init__(
            f"admission rejected for tenant {tenant!r}: "
            f"{scope} queue depth {depth} at limit {limit}"
        )
        self.tenant = tenant
        self.depth = depth
        self.limit = limit
        self.scope = scope


class ServerRequest:
    """One admitted unit of work: a query (or resumption) awaiting its
    single quantum.  The serving tier attaches the execution payload
    (pipeline or one-shot plan) and the asyncio future."""

    __slots__ = (
        "tenant", "query", "pipeline", "oneshot", "deadline",
        "future", "enqueued_at", "payload",
    )

    def __init__(
        self,
        tenant: str,
        query: str,
        pipeline: Any = None,
        oneshot: bool = False,
        deadline: Any = None,
    ):
        self.tenant = tenant
        self.query = query
        self.pipeline = pipeline
        self.oneshot = oneshot
        self.deadline = deadline
        self.future: Any = None
        self.enqueued_at: float = 0.0
        self.payload: Any = None

    def __repr__(self) -> str:
        mode = "oneshot" if self.oneshot else "pipeline"
        return f"<ServerRequest {self.tenant} {mode} {self.query[:40]!r}>"


class DeficitScheduler:
    """Deficit round-robin over per-tenant FIFO queues."""

    def __init__(
        self,
        max_pending: Optional[int] = None,
        max_total: Optional[int] = None,
        quotas: Optional[Dict[str, float]] = None,
        default_quota: float = 1.0,
    ):
        self.max_pending = (
            env_max_pending() if max_pending is None else int(max_pending)
        )
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.max_total = max_total
        self.quotas = dict(quotas or {})
        self.default_quota = float(default_quota)
        if self.default_quota <= 0 or any(
            q <= 0 for q in self.quotas.values()
        ):
            raise ValueError("tenant quotas must be > 0")
        self._queues: Dict[str, Deque[ServerRequest]] = {}
        self._credits: Dict[str, float] = {}
        self._ring: List[str] = []
        self._index = 0
        self._fresh_visit = True
        self._total = 0

    # -- admission -----------------------------------------------------------

    def quota(self, tenant: str) -> float:
        return float(self.quotas.get(tenant, self.default_quota))

    def depth(self, tenant: Optional[str] = None) -> int:
        if tenant is None:
            return self._total
        queue = self._queues.get(tenant)
        return len(queue) if queue else 0

    def admit(self, request: ServerRequest) -> None:
        """Queue a request, or raise :class:`AdmissionError`."""
        tenant = request.tenant
        queue = self._queues.get(tenant)
        pending = len(queue) if queue else 0
        if pending >= self.max_pending:
            obs.counter("server.admission.rejected").inc()
            obs.counter(f"server.admission.rejected.{tenant}").inc()
            raise AdmissionError(tenant, pending, self.max_pending, "tenant")
        if self.max_total is not None and self._total >= self.max_total:
            obs.counter("server.admission.rejected").inc()
            raise AdmissionError(tenant, self._total, self.max_total, "server")
        if queue is None:
            queue = self._queues[tenant] = deque()
            self._credits.setdefault(tenant, 0.0)
            self._ring.append(tenant)
        queue.append(request)
        self._total += 1
        obs.counter("server.admission.accepted").inc()
        obs.gauge("server.queue_depth").set(self._total)

    # -- scheduling ----------------------------------------------------------

    def _advance(self) -> None:
        self._index = (self._index + 1) % max(1, len(self._ring))
        self._fresh_visit = True

    def take(self) -> Optional[ServerRequest]:
        """Pop the next request to run, or None when everything is idle.

        Classic DRR with a ring cursor: *arriving* at a tenant grants it
        ``quota`` credits, each served request spends one, and the cursor
        only moves on when the tenant's credits drop below one (or its
        queue empties) — so a quota-2 tenant gets a two-slice burst per
        visit, twice the service of a quota-1 tenant.  Tenants visited
        with an empty queue forfeit their stored credits: an idle tenant
        cannot hoard capacity to blast through later.

        Termination is guaranteed while work is queued: every full lap
        grants each non-empty queue at least ``quota > 0`` credits, so
        some tenant reaches a full credit within finitely many laps.
        """
        if self._total == 0:
            return None
        while True:
            tenant = self._ring[self._index % len(self._ring)]
            queue = self._queues[tenant]
            if not queue:
                self._credits[tenant] = 0.0
                self._advance()
                continue
            if self._fresh_visit:
                self._credits[tenant] += self.quota(tenant)
                self._fresh_visit = False
            if self._credits[tenant] < 1.0:
                self._advance()
                continue
            self._credits[tenant] -= 1.0
            request = queue.popleft()
            self._total -= 1
            if not queue or self._credits[tenant] < 1.0:
                self._advance()
            obs.gauge("server.queue_depth").set(self._total)
            return request

    def drain(self) -> int:
        """Drop every queued request (server shutdown); returns count."""
        dropped = self._total
        for queue in self._queues.values():
            queue.clear()
        self._total = 0
        obs.gauge("server.queue_depth").set(0)
        return dropped

    def __repr__(self) -> str:
        return (
            f"<DeficitScheduler tenants={len(self._queues)} "
            f"pending={self._total} max_pending={self.max_pending}>"
        )
