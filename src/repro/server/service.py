"""The preemptable query server.

:class:`QueryServer` follows the Web-preemption model of sage-engine:
**one submit is one quantum is one page**.  A submitted query (or a
continuation token from an earlier page) passes admission control, waits
its turn under deficit round-robin, then runs on the server's single
cooperative executor for at most one time quantum.  Whatever solutions
it produced come back immediately as a :class:`QueryPage`; if the query
is not finished, the page carries an opaque continuation token and the
client re-submits it for the next slice.  Fairness needs no preemptive
threads: every quantum boundary sends the query back through admission,
so an adversarial full-scan costs its tenant one queue slot per slice
while everyone else's short queries interleave between its slices.

The executor is deliberately a *single* cooperative drain loop — the
quantum is the blocking unit.  Running a quantum blocks the loop for at
most ``quantum_ms``; with preemption disabled (``quantum_ms=None``, or
``REPRO_QUANTUM_MS=0``/``inf``/``off``) a query runs to completion in
one slice and concurrent tenants feel the full head-of-line blocking —
exactly the baseline benchmark A8 measures against.

Resilience wiring: each quantum fires the ``server.request`` fault
injection point under the store's retry policy (transient faults are
absorbed and retried, permanent ones fail the request), and a
per-request :class:`repro.resilience.Deadline` is checked at every
quantum boundary and installed as the ambient deadline while the
quantum runs.
"""

from __future__ import annotations

import asyncio
import os
import time
from typing import Any, Dict, List, Optional

from repro import faults, obs, resilience
from repro.server.continuations import decode_token, encode_token
from repro.server.scheduler import DeficitScheduler, ServerRequest
from repro.strabon.stsparql import algebra as alg
from repro.strabon.stsparql.iterators import (
    ContinuationError,
    Solution,
    build_select_pipeline,
    pipeline_variables,
    restore_pipeline,
)
from repro.strabon.stsparql.parser import parse_query
from repro.strabon.stsparql.results import SelectResult

__all__ = [
    "QUANTUM_ENV",
    "QueryPage",
    "QueryServer",
    "env_quantum_ms",
]

#: Environment variable: quantum length in milliseconds.  ``0``, ``inf``
#: or ``off`` disable preemption (queries run to completion).
QUANTUM_ENV = "REPRO_QUANTUM_MS"

_DEFAULT_QUANTUM_MS = 25.0


def env_quantum_ms(
    default: Optional[float] = _DEFAULT_QUANTUM_MS,
) -> Optional[float]:
    """Quantum from ``REPRO_QUANTUM_MS``; None disables preemption."""
    raw = os.environ.get(QUANTUM_ENV, "").strip().lower()
    if not raw:
        return default
    if raw in ("off", "inf", "none"):
        return None
    try:
        value = float(raw)
    except ValueError:
        obs.counter("server.config.invalid").inc()
        return default
    if value <= 0:
        return None
    return value


class QueryPage:
    """One quantum's worth of results.

    ``rows`` holds the solutions produced during the slice (decoded
    bindings, same shape as :class:`SelectResult` rows).  ``token`` is
    the continuation to re-submit for the next slice, or None when
    ``done``.  Non-streamable queries (aggregates, ORDER BY, ASK,
    CONSTRUCT, ...) complete in a single page with the raw engine result
    in ``result``.
    """

    __slots__ = (
        "tenant", "query", "variables", "rows", "token", "done",
        "result", "quantum_ms", "elapsed_ms",
    )

    def __init__(
        self,
        tenant: str,
        query: str,
        variables: List[str],
        rows: List[Solution],
        token: Optional[str],
        result: Any = None,
        quantum_ms: Optional[float] = None,
        elapsed_ms: float = 0.0,
    ):
        self.tenant = tenant
        self.query = query
        self.variables = variables
        self.rows = rows
        self.token = token
        self.done = token is None
        self.result = result
        self.quantum_ms = quantum_ms
        self.elapsed_ms = elapsed_ms

    def __repr__(self) -> str:
        state = "done" if self.done else "suspended"
        return (
            f"<QueryPage {self.tenant} rows={len(self.rows)} {state} "
            f"elapsed={self.elapsed_ms:.1f}ms>"
        )


class QueryServer:
    """Asyncio serving tier over one :class:`StrabonStore`.

    Usage::

        server = QueryServer(store, quantum_ms=25)
        page = await server.submit("tenant-a", query=text)
        while not page.done:
            page = await server.submit("tenant-a", token=page.token)

    or, for callers that just want the complete answer while still
    yielding the executor at every quantum boundary::

        result = await server.fetch("tenant-a", text)
    """

    def __init__(
        self,
        store,
        quantum_ms: Optional[float] = -1.0,
        scheduler: Optional[DeficitScheduler] = None,
        max_pending: Optional[int] = None,
        max_total: Optional[int] = None,
        quotas: Optional[Dict[str, float]] = None,
        use_spatial_index: Optional[bool] = None,
    ):
        self.store = store
        # -1 (the default) means "consult the environment"; an explicit
        # None means preemption off.
        self.quantum_ms = (
            env_quantum_ms() if quantum_ms == -1.0 else quantum_ms
        )
        self.scheduler = scheduler or DeficitScheduler(
            max_pending=max_pending, max_total=max_total, quotas=quotas
        )
        self.use_spatial_index = (
            store.use_spatial_index
            if use_spatial_index is None
            else use_spatial_index
        )
        self.retry_policy = getattr(
            store, "retry_policy", resilience.DEFAULT_RETRY
        )
        self._wake = asyncio.Event()
        self._drain_task: Optional[asyncio.Task] = None
        self._closed = False

    # -- public API ----------------------------------------------------------

    async def submit(
        self,
        tenant: str,
        query: Optional[str] = None,
        token: Optional[str] = None,
        deadline: Optional[resilience.Deadline] = None,
    ) -> QueryPage:
        """Admit one request (fresh query or continuation) and await its
        single quantum.  Raises :class:`AdmissionError` when the tenant's
        queue is full, :class:`ContinuationError` for stale or malformed
        tokens (raised when the quantum runs, not at admission)."""
        if self._closed:
            raise RuntimeError("server is closed")
        if (query is None) == (token is None):
            raise ValueError("provide exactly one of query= or token=")
        if token is not None:
            request = ServerRequest(tenant, "", deadline=deadline)
            request.payload = token
        else:
            request = ServerRequest(tenant, query, deadline=deadline)
        request.enqueued_at = time.monotonic()
        request.future = asyncio.get_running_loop().create_future()
        self.scheduler.admit(request)  # may raise AdmissionError
        obs.counter("server.requests").inc()
        self._ensure_drain()
        self._wake.set()
        return await request.future

    async def fetch(
        self,
        tenant: str,
        query: str,
        deadline: Optional[resilience.Deadline] = None,
    ) -> Any:
        """Run a query to completion, one quantum at a time.

        Returns the complete engine result: a :class:`SelectResult`
        assembled from the pages for streamed queries, or the one-shot
        result object otherwise.
        """
        page = await self.submit(tenant, query=query, deadline=deadline)
        if page.done and page.result is not None:
            return page.result
        rows = list(page.rows)
        while not page.done:
            page = await self.submit(tenant, token=page.token, deadline=deadline)
            rows.extend(page.rows)
        return SelectResult(page.variables, rows)

    async def close(self) -> None:
        """Stop the drain loop and drop queued requests."""
        self._closed = True
        dropped = self.scheduler.drain()
        if dropped:
            obs.counter("server.dropped_at_close").inc()
        self._wake.set()
        if self._drain_task is not None:
            task = self._drain_task
            self._drain_task = None
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass

    # -- drain loop ----------------------------------------------------------

    def _ensure_drain(self) -> None:
        if self._drain_task is None or self._drain_task.done():
            self._drain_task = asyncio.get_running_loop().create_task(
                self._drain()
            )

    async def _drain(self) -> None:
        """The single cooperative executor: pop → run one quantum → repeat.

        Yields control between quanta (``sleep(0)``) so submitters admit
        new work and page futures resolve; blocks on the wake event when
        every queue is empty.
        """
        while not self._closed:
            request = self.scheduler.take()
            if request is None:
                self._wake.clear()
                await self._wake.wait()
                continue
            self._run_quantum(request)
            await asyncio.sleep(0)

    # -- quantum execution ---------------------------------------------------

    def _run_quantum(self, request: ServerRequest) -> None:
        """Execute one time slice of ``request`` and resolve its future."""
        future = request.future
        if future is None or future.cancelled():
            return
        started = time.monotonic()
        try:
            with obs.span("server.quantum", tenant=request.tenant):
                # The injection point models the request touching a flaky
                # transport/authn dependency once per slice: transient
                # faults are retried here, permanent ones fail the page.
                resilience.call_with_retry(
                    lambda: faults.maybe_fail("server.request"),
                    self.retry_policy,
                    label="server.request",
                )
                if request.deadline is not None:
                    # Cooperative deadline: enforced at the quantum
                    # boundary (a slice is the scheduling atom), ambient
                    # for any deadline-aware code inside the slice.
                    request.deadline.check("server.quantum")
                    with resilience.deadline_scope(request.deadline):
                        page = self._execute(request, started)
                else:
                    page = self._execute(request, started)
        except BaseException as exc:  # noqa: BLE001 — routed to the caller
            obs.counter("server.errors").inc()
            self._finish(request, started)
            if not future.done():
                future.set_exception(exc)
            return
        self._finish(request, started)
        if not future.done():
            future.set_result(page)

    def _finish(self, request: ServerRequest, started: float) -> None:
        now = time.monotonic()
        obs.histogram("server.latency").observe(now - request.enqueued_at)
        obs.histogram(f"server.latency.{request.tenant}").observe(
            now - request.enqueued_at
        )
        if self.quantum_ms:
            obs.histogram("server.quantum.utilization").observe(
                min(1.0, (now - started) / (self.quantum_ms / 1000.0))
            )

    def _execute(self, request: ServerRequest, started: float) -> QueryPage:
        """Build or restore the execution state, then run one slice."""
        if request.payload is not None:  # continuation token
            query_text, version, state = decode_token(request.payload)
            if version != self.store.version:
                obs.counter("server.stale_tokens").inc()
                raise ContinuationError(
                    f"continuation built against store version {version}, "
                    f"store is now at {self.store.version}"
                )
            parsed = self._parse(query_text)
            pipeline = restore_pipeline(
                parsed, self.store, state,
                use_spatial_index=self.use_spatial_index,
            )
            request.query = query_text
            return self._run_pipeline(request, parsed, pipeline, started)

        parsed = self._parse(request.query)
        if isinstance(parsed, alg.SelectQuery):
            pipeline = build_select_pipeline(
                parsed, self.store,
                use_spatial_index=self.use_spatial_index,
            )
            if pipeline is not None:
                return self._run_pipeline(request, parsed, pipeline, started)
        # Non-streamable: one-shot evaluation, complete in this slice.
        obs.counter("server.oneshot").inc()
        result = self.store.query(request.query)
        rows = list(result.bindings) if isinstance(result, SelectResult) else []
        variables = (
            list(result.variables)
            if isinstance(result, SelectResult)
            else []
        )
        return QueryPage(
            request.tenant, request.query, variables, rows, None,
            result=result, quantum_ms=self.quantum_ms,
            elapsed_ms=(time.monotonic() - started) * 1000.0,
        )

    def _parse(self, text: str):
        return self.store.plan_cache.get_or_compute(
            ("query", text), lambda: parse_query(text)
        )

    def _run_pipeline(
        self,
        request: ServerRequest,
        parsed: alg.SelectQuery,
        pipeline,
        started: float,
    ) -> QueryPage:
        """Pull solutions until the quantum expires or the stream ends."""
        variables = pipeline_variables(parsed)
        budget = (
            None if self.quantum_ms is None else self.quantum_ms / 1000.0
        )
        rows: List[Solution] = []
        token: Optional[str] = None
        while True:
            sol = pipeline.next()
            if sol is None:
                break
            rows.append(sol)
            if budget is not None and time.monotonic() - started >= budget:
                token = encode_token(
                    request.query, self.store.version, pipeline.save()
                )
                obs.counter("server.suspends").inc()
                break
        obs.counter("server.pages").inc()
        return QueryPage(
            request.tenant, request.query, variables, rows, token,
            quantum_ms=self.quantum_ms,
            elapsed_ms=(time.monotonic() - started) * 1000.0,
        )
