"""Continuation tokens: opaque, self-contained suspension points.

A token carries everything needed to resume a preempted query — the
query text, the saved iterator-pipeline state, and the store version the
state was captured against — JSON-serialised and base64-encoded.  The
server is therefore stateless between quanta: any process holding the
same store (at the same version) can resume any token.

Versioning makes staleness explicit instead of silently wrong: scan
cursors index into deterministically ordered match lists, which only
replay exactly while the store is unchanged, so resuming a token whose
embedded version differs from ``store.version`` raises
:class:`ContinuationError` (the serving tier surfaces it as a rejected
resumption; the client re-issues the query from the start).
"""

from __future__ import annotations

import base64
import binascii
import json
from typing import Any, Dict, Tuple

from repro.strabon.stsparql.iterators import ContinuationError

__all__ = ["ContinuationError", "decode_token", "encode_token"]

#: Token format marker, bumped on incompatible state-layout changes so
#: an old token fails loudly instead of half-restoring.
_FORMAT = 1


def encode_token(
    query: str, store_version: int, state: Dict[str, Any]
) -> str:
    """Pack a suspension point into an opaque ASCII token."""
    payload = {
        "f": _FORMAT,
        "q": query,
        "v": int(store_version),
        "s": state,
    }
    raw = json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return base64.urlsafe_b64encode(raw).decode("ascii")


def decode_token(token: str) -> Tuple[str, int, Dict[str, Any]]:
    """Unpack a token into ``(query, store_version, state)``.

    Raises :class:`ContinuationError` for anything that is not a token
    this codec produced (truncated, tampered with, or from a different
    format generation).
    """
    try:
        raw = base64.urlsafe_b64decode(token.encode("ascii"))
        payload = json.loads(raw.decode("utf-8"))
    except (ValueError, binascii.Error, UnicodeError) as exc:
        raise ContinuationError(f"malformed continuation token: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("f") != _FORMAT:
        raise ContinuationError(
            "continuation token has an unknown format marker"
        )
    query = payload.get("q")
    version = payload.get("v")
    state = payload.get("s")
    if (
        not isinstance(query, str)
        or not isinstance(version, int)
        or not isinstance(state, dict)
    ):
        raise ContinuationError("continuation token payload is incomplete")
    return query, version, state
