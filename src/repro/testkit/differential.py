"""Differential runners: optimised variants vs oracle, vs each other.

``run_case(domain, spec)`` executes one spec every way the engine can
execute it and returns ``None`` on agreement or a human-readable
divergence description.  ``sweep`` generates seeded cases round-robin
across domains inside a time budget, shrinking any divergence to a
locally minimal, replayable counterexample.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import kernels, obs
from repro.geometry import RTree, from_wkt
from repro.mdb import Database
from repro.server import decode_token, encode_token
from repro.strabon import StrabonStore
from repro.strabon.stsparql.iterators import (
    build_select_pipeline,
    restore_pipeline,
)
from repro.strabon.stsparql.parser import parse_query
from repro.testkit import oracles
from repro.testkit.generators import SPEC_DOMAINS, case_seed, gen_spec

#: Default sweep schedule.  The chain domain is an order of magnitude
#: slower per case than the in-memory domains, so it runs once per
#: ten cases.
DOMAINS = (
    "spatial",
    "stsparql",
    "sciql",
    "storage",
    "mining",
    "spatial",
    "stsparql",
    "sciql",
    "storage",
    "mining",
    "chain",
)

PREFIXES = (
    "PREFIX ex: <http://example.org/>\n"
    "PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>\n"
)


@dataclass
class Counterexample:
    """A diverging case: the raw spec and its shrunk minimal form."""

    domain: str
    seed: Optional[int]
    spec: Dict[str, Any]
    detail: str
    shrunk_spec: Optional[Dict[str, Any]] = None
    shrunk_detail: Optional[str] = None

    def format(self) -> str:
        lines = [
            f"REPRO_TESTKIT_SEED={self.seed if self.seed is not None else '-'}"
            f" domain={self.domain}",
            f"divergence: {self.detail}",
        ]
        if self.shrunk_spec is not None:
            lines.append(
                "shrunk spec: " + json.dumps(self.shrunk_spec, sort_keys=True)
            )
            if self.shrunk_detail:
                lines.append(f"shrunk divergence: {self.shrunk_detail}")
        lines.append(
            "full spec: " + json.dumps(self.spec, sort_keys=True)
        )
        if self.seed is not None:
            lines.append(
                "replay: PYTHONPATH=src python -m repro.testkit replay "
                f"--domain {self.domain} --seed {self.seed}"
            )
        return "\n".join(lines)


def _outcome(fn: Callable[[], Any]) -> Tuple[str, Any]:
    """Run a variant; engines must agree on results *and* on errors."""
    try:
        return ("rows", fn())
    except Exception as exc:  # noqa: BLE001 — compared, not swallowed
        return ("error", type(exc).__name__)


# -- spatial -------------------------------------------------------------------


def _compare_spatial(entries, probes, trees, phase: str) -> Optional[str]:
    expected = [
        sorted(oracles.naive_spatial_query(entries, probe))
        for probe in probes
    ]
    for label, tree in trees:
        for j, probe in enumerate(probes):
            got = sorted(tree.query(probe))
            if got != expected[j]:
                return (
                    f"{phase}/{label} query probe {j}: "
                    f"{got} != oracle {expected[j]}"
                )
        for workers in (1, 3):
            batched = tree.query_batch(probes, workers=workers)
            for j, got in enumerate(batched):
                if sorted(got) != expected[j]:
                    return (
                        f"{phase}/{label} query_batch(workers={workers}) "
                        f"probe {j}: {sorted(got)} != oracle {expected[j]}"
                    )
    return None


def _check_spatial(spec: Dict[str, Any]) -> Optional[str]:
    geoms = [from_wkt(text) for text in spec["geometries"]]
    entries = [(g.envelope, i) for i, g in enumerate(geoms)]
    probes = [from_wkt(text).envelope for text in spec["probes"]]

    tree = RTree(max_entries=4)
    half = (len(entries) + 1) // 2
    for env, item in entries[:half]:
        tree.insert(env, item)
    if probes:
        # Prime the packed snapshot so later inserts must invalidate it.
        tree.query_batch(probes, workers=1)
    for env, item in entries[half:]:
        tree.insert(env, item)

    bulk = RTree.bulk_load(entries, max_entries=4)
    detail = _compare_spatial(
        entries, probes, [("incremental", tree), ("bulk", bulk)], "grown"
    )
    if detail:
        return detail

    removed = set(spec["removals"])
    if probes:
        tree.query_batch(probes, workers=1)  # re-prime before removals
    for index in sorted(removed):
        tree.remove(entries[index][0], index)
    live = [(env, item) for env, item in entries if item not in removed]
    rebuilt = RTree.bulk_load(live, max_entries=4)
    return _compare_spatial(
        live, probes, [("incremental", tree), ("rebuilt", rebuilt)], "shrunk"
    )


# -- stSPARQL ------------------------------------------------------------------


def _render_term(term: Sequence[Any]) -> str:
    tag, value = term[0], term[1]
    if tag == "u":
        return f"ex:{value}"
    if tag == "i":
        return str(value)
    if tag == "w":
        return f'"{value}"^^strdf:WKT'
    if tag == "v":
        return f"?{value}"
    raise ValueError(f"unknown term tag {tag!r}")


def render_query(spec: Dict[str, Any]) -> Tuple[str, List[str]]:
    """The stSPARQL text of a query spec and its projected variables."""
    variables = sorted(
        {
            term[1]
            for pattern in spec["patterns"]
            for term in pattern
            if term[0] == "v"
        }
    )
    body = " . ".join(
        " ".join(_render_term(term) for term in pattern)
        for pattern in spec["patterns"]
    )
    filter_spec = spec.get("filter")
    if filter_spec:
        if filter_spec["kind"] == "cmp":
            body += (
                f" . FILTER(?{filter_spec['var']} {filter_spec['op']} "
                f"{filter_spec['value']})"
            )
        elif filter_spec["kind"] == "dist":
            const = f'"{filter_spec["wkt"]}"^^strdf:WKT'
            call = f"strdf:distance(?{filter_spec['var']}, {const})"
            op, bound = filter_spec["op"], filter_spec["bound"]
            if filter_spec.get("flip"):
                # Mirror the comparison (bound on the left) without
                # changing its meaning.
                mirrored = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
                body += f" . FILTER({bound} {mirrored[op]} {call})"
            else:
                body += f" . FILTER({call} {op} {bound})"
        else:
            const = f'"{filter_spec["wkt"]}"^^strdf:WKT'
            var = f"?{filter_spec['var']}"
            args = f"{const}, {var}" if filter_spec.get("flip") else (
                f"{var}, {const}"
            )
            body += f" . FILTER(strdf:{filter_spec['pred']}({args}))"
    select = "SELECT DISTINCT" if spec["distinct"] else "SELECT"
    projection = " ".join(f"?{name}" for name in variables)
    return (
        f"{PREFIXES}{select} {projection} WHERE {{ {body} }}",
        variables,
    )


def _store_rows(
    store: StrabonStore, query: str, variables: Sequence[str]
) -> List[Tuple[Optional[str], ...]]:
    result = store.query(query)
    order = [result.variables.index(name) for name in variables]
    rows = [
        tuple(
            row[i].n3() if row[i] is not None else None for i in order
        )
        for row in result.rows()
    ]
    return sorted(rows, key=lambda r: tuple(x or "" for x in r))


def _pipeline_rows(
    store: StrabonStore,
    query: str,
    variables: Sequence[str],
    suspend_every_row: bool,
) -> List[Tuple[Optional[str], ...]]:
    """Rows via the preemptable iterator pipeline (repro.server path).

    ``suspend_every_row=False`` is the quantum=∞ shape (one slice runs
    the query dry); ``True`` is the worst-case preemption shape — after
    *every* solution the pipeline state makes the full round trip through
    a continuation token (encode → decode → rebuild → restore), exactly
    what the serving tier does between quanta.  Both must reproduce the
    one-shot evaluator's solutions with none lost and none duplicated.
    """
    parsed = parse_query(query)
    pipe = build_select_pipeline(parsed, store)
    if pipe is None:  # not streamable: the server falls back to one-shot
        return _store_rows(store, query, variables)
    solutions = []
    while True:
        sol = pipe.next()
        if sol is None:
            break
        solutions.append(sol)
        if suspend_every_row:
            token = encode_token(query, store.version, pipe.save())
            text, _version, state = decode_token(token)
            pipe = restore_pipeline(parse_query(text), store, state)
    rows = [
        tuple(
            sol[v].n3() if sol.get(v) is not None else None
            for v in variables
        )
        for sol in solutions
    ]
    return sorted(rows, key=lambda r: tuple(x or "" for x in r))


def _check_stsparql(spec: Dict[str, Any]) -> Optional[str]:
    # An RDF graph is a set of triples: duplicates in the spec are a
    # no-op for the store and must be a no-op for the oracle too.
    triples = list(dict.fromkeys(oracles.triples_from_json(spec["triples"])))
    extra = [
        triple
        for triple in dict.fromkeys(
            oracles.triples_from_json(spec["extra_triples"])
        )
        if triple not in triples
    ]
    patterns = [
        tuple(oracles.term_from_json(term) for term in pattern)
        for pattern in spec["patterns"]
    ]
    query, variables = render_query(spec)

    def oracle(triple_set):
        return _outcome(
            lambda: oracles.naive_bgp_rows(
                triple_set,
                patterns,
                spec.get("filter"),
                variables,
                spec["distinct"],
            )
        )

    def fresh_store(use_spatial_index=True, bulk=False, triple_set=triples):
        store = StrabonStore(use_spatial_index=use_spatial_index)
        if bulk:
            with store.bulk():
                for triple in triple_set:
                    store.add(triple)
        else:
            for triple in triple_set:
                store.add(triple)
        return store

    store = fresh_store()

    def with_workers(n: int):
        previous = os.environ.get("REPRO_WORKERS")
        os.environ["REPRO_WORKERS"] = str(n)
        try:
            return _store_rows(store, query, variables)
        finally:
            if previous is None:
                del os.environ["REPRO_WORKERS"]
            else:
                os.environ["REPRO_WORKERS"] = previous

    def with_obs_flipped():
        registry = obs.get_registry()
        previous = registry.enabled
        registry.set_enabled(not previous)
        try:
            return _store_rows(store, query, variables)
        finally:
            registry.set_enabled(previous)

    expected = oracle(triples)
    variants = [
        ("cold", lambda: _store_rows(store, query, variables)),
        ("warm-plan-cache", lambda: _store_rows(store, query, variables)),
        (
            "plan-cache-cleared",
            lambda: (
                store.plan_cache.clear(),
                _store_rows(store, query, variables),
            )[1],
        ),
        (
            "no-spatial-index",
            lambda: _store_rows(
                fresh_store(use_spatial_index=False), query, variables
            ),
        ),
        (
            "bulk-loaded",
            lambda: _store_rows(fresh_store(bulk=True), query, variables),
        ),
        ("workers-4", lambda: with_workers(4)),
        ("obs-flipped", with_obs_flipped),
        (
            "kernels-off",
            lambda: _with_env(
                kernels.KERNELS_ENV,
                "0",
                lambda: _store_rows(store, query, variables),
            ),
        ),
        (
            "pipeline-one-quantum",
            lambda: _pipeline_rows(store, query, variables, False),
        ),
        (
            "pipeline-suspend-every-row",
            lambda: _pipeline_rows(store, query, variables, True),
        ),
    ]
    for label, variant in variants:
        got = _outcome(variant)
        if got != expected:
            return f"{label}: {got} != oracle {expected}"

    if extra:
        # Incremental maintenance: same store after more adds must match
        # both the oracle and a store freshly loaded with everything.
        for triple in extra:
            store.add(triple)
        expected = oracle(triples + extra)
        for label, variant in [
            ("incremental", lambda: _store_rows(store, query, variables)),
            (
                "fresh-full",
                lambda: _store_rows(
                    fresh_store(triple_set=triples + extra), query, variables
                ),
            ),
            (
                "pipeline-suspend-every-row",
                lambda: _pipeline_rows(store, query, variables, True),
            ),
        ]:
            got = _outcome(variant)
            if got != expected:
                return f"after-extra/{label}: {got} != oracle {expected}"

    # Removal maintenance: drop one subject's triples and the indexes
    # (triple indexes, R-tree, interner) must all shed them.
    everything = triples + extra
    if everything:
        victim = everything[0][0]
        store.remove((victim, None, None))
        remaining = [t for t in everything if t[0] != victim]
        expected = oracle(remaining)
        for label, variant in [
            ("incremental", lambda: _store_rows(store, query, variables)),
            (
                "fresh-remaining",
                lambda: _store_rows(
                    fresh_store(triple_set=remaining), query, variables
                ),
            ),
        ]:
            got = _outcome(variant)
            if got != expected:
                return f"after-remove/{label}: {got} != oracle {expected}"
    return None


# -- SciQL ---------------------------------------------------------------------


def _sciql_engine_run(spec: Dict[str, Any], workers: int) -> Tuple[str, Any]:
    db = Database()
    height, width = spec["shape"]
    ctype = "DOUBLE" if spec["dtype"] == "float" else "INT"
    db.execute(
        f"CREATE ARRAY a (x INT DIMENSION [0:{height}], "
        f"y INT DIMENSION [0:{width}], v {ctype} DEFAULT 0)"
    )
    array = db.array("a")
    array.set_attribute(
        "v", np.asarray(spec["cells"], dtype=array.attribute("v").dtype)
    )
    for op in spec["program"]:
        name = op["op"]
        if name == "update":
            add = op["add"]
            tail = f" + {add}" if add >= 0 else f" - {-add}"
            set_dim = op.get("set_dim")
            if set_dim:
                tail += f" + {set_dim}"
            where = f"{op['dim']} {op['cmp']} {op['bound']}"
            extra = op.get("extra")
            if extra is not None:
                if extra["kind"] == "in":
                    values = ", ".join(str(v) for v in extra["values"])
                    verb = "NOT IN" if extra["negated"] else "IN"
                    where = f"({where}) AND {extra['dim']} {verb} ({values})"
                elif extra["kind"] == "between":
                    where = (
                        f"({where}) AND {extra['dim']} "
                        f"BETWEEN {extra['lo']} AND {extra['hi']}"
                    )
                elif extra["kind"] == "fn_cmp":
                    where = (
                        f"({where}) OR {extra['fn']}(v) "
                        f"{extra['op']} {extra['value']}"
                    )
                else:
                    where = f"({where}) OR v {extra['op']} {extra['value']}"
            db.execute(
                f"UPDATE a SET v = v * {op['mul']}{tail} WHERE {where}"
            )
            array = db.array("a")
        elif name == "slice":
            array = array.slice(x=tuple(op["x"]), y=tuple(op["y"]))
        elif name == "map":
            mul, add = op["mul"], op["add"]
            array.map(lambda plane: plane * mul + add, workers=workers)
        elif name == "tile":
            array = array.tile_aggregate(
                op["t"], op["func"], workers=workers
            )
        elif name == "count":
            gt = op["gt"]
            return (
                "count",
                array.count_where(lambda plane: plane > gt, workers=workers),
            )
        elif name == "select":
            exprs = {
                "v": "v",
                "abs": "abs(v)",
                "floor": "floor(v)",
                "ceil": "ceil(v)",
                "sqrt_abs": "sqrt(abs(v))",
                "pow2": "power(v, 2)",
            }
            result = db.execute(
                f"SELECT x, y, {exprs[op['expr']]} AS e FROM a "
                f"WHERE v > {op['gt']}"
            )
            return (
                "rows",
                sorted(
                    tuple(float(cell) for cell in row)
                    for row in result.rows()
                ),
            )
        else:
            raise ValueError(f"unknown sciql op {name!r}")
    return ("cells", array.attribute("v").tolist())


def _with_env(key: str, value: str, fn: Callable[[], Any]) -> Any:
    previous = os.environ.get(key)
    os.environ[key] = value
    try:
        return fn()
    finally:
        if previous is None:
            del os.environ[key]
        else:
            os.environ[key] = previous


def _check_sciql(spec: Dict[str, Any]) -> Optional[str]:
    expected = _outcome(lambda: oracles.naive_sciql_run(spec))
    for label, variant in [
        ("serial", lambda: _sciql_engine_run(spec, workers=1)),
        ("tiled-4", lambda: _sciql_engine_run(spec, workers=4)),
        (
            "serial-interpreted",
            lambda: _with_env(
                kernels.KERNELS_ENV,
                "0",
                lambda: _sciql_engine_run(spec, workers=1),
            ),
        ),
        (
            "tiled-4-interpreted",
            lambda: _with_env(
                kernels.KERNELS_ENV,
                "0",
                lambda: _sciql_engine_run(spec, workers=4),
            ),
        ),
    ]:
        got = _outcome(variant)
        if got != expected:
            return f"{label}: {got} != oracle {expected}"
    return None


# -- NOA chain -----------------------------------------------------------------


def _chain_summarize(results) -> List[Any]:
    from repro.noa import ChainResult

    summary = []
    for result in results:
        if not isinstance(result, ChainResult):
            summary.append(("failure", str(result)))
            continue
        summary.append(
            (
                result.source_product.product_id,
                [
                    (
                        hotspot.geometry.wkt,
                        round(hotspot.confidence, 12),
                        hotspot.pixel_count,
                    )
                    for hotspot in result.hotspots
                ],
            )
        )
    return summary


def _check_chain(spec: Dict[str, Any]) -> Optional[str]:
    from repro import faults
    from repro.eo import (
        GreeceLikeWorld,
        SceneSpec,
        generate_scene,
        write_scene,
    )
    from repro.ingest import Ingestor
    from repro.noa import ProcessingChain

    world = GreeceLikeWorld()
    fire_seeds = [(21.63, 37.7), (22.5, 38.5), (23.4, 38.05)]

    def fresh_chain():
        return ProcessingChain(
            Ingestor(Database(), StrabonStore()), classifier="static"
        )

    with tempfile.TemporaryDirectory(prefix="repro-testkit-") as tmp:
        paths = []
        for k, scene_spec in enumerate(spec["scenes"]):
            scene = generate_scene(
                SceneSpec(
                    width=scene_spec["width"],
                    height=scene_spec["height"],
                    seed=scene_spec["seed"],
                    n_fires=scene_spec["n_fires"],
                    n_glints=scene_spec["n_glints"],
                ),
                world.land,
                fire_seeds=fire_seeds,
            )
            path = os.path.join(tmp, f"scene_{k:03d}.nat")
            write_scene(scene, path)
            paths.append(path)

        baseline_chain = fresh_chain()
        baseline = baseline_chain.run_batch(paths, workers=1)

        chaos_chain = fresh_chain()
        with faults.injected(spec["faults"]):
            chaos = chaos_chain.run_batch(
                paths, workers=spec["workers"]
            )

    base_summary = _chain_summarize(baseline)
    chaos_summary = _chain_summarize(chaos)
    if base_summary != chaos_summary:
        diff = oracles.first_difference(base_summary, chaos_summary)
        return f"chaos batch != fault-free baseline: {diff}"
    base_rdf = set(baseline_chain.ingestor.store.triples())
    chaos_rdf = set(chaos_chain.ingestor.store.triples())
    if base_rdf != chaos_rdf:
        return (
            "RDF stores differ: "
            f"{len(base_rdf ^ chaos_rdf)} triples in symmetric difference"
        )
    return None


# -- mining: SciQL patch features + classifiers vs pure-python oracle ----------


def _mining_grid(blocks, patch: int, name: str, workers: int):
    """Engine-side patch grid of blocks stacked into one SciQL array."""
    from repro.mdb.sciql import Dimension, SciArray
    from repro.mdb.types import DOUBLE
    from repro.mining.features import extract_patch_grid

    t039 = np.asarray(
        [row for block in blocks for row in block["t039"]],
        dtype=np.float64,
    )
    t108 = np.asarray(
        [row for block in blocks for row in block["t108"]],
        dtype=np.float64,
    )
    h, w = t039.shape
    array = SciArray(
        name,
        [Dimension("row", 0, h), Dimension("col", 0, w)],
        [("t039", DOUBLE), ("t108", DOUBLE)],
    )
    array.set_attribute("t039", t039)
    array.set_attribute("t108", t108)
    # Unit-degree pixels: the patch footprints come out on exact floats.
    window = (0.0, 0.0, float(w), float(h))
    return extract_patch_grid(
        array, window, patch_size=patch, workers=workers
    )


def _check_mining(spec: Dict[str, Any]) -> Optional[str]:
    from datetime import datetime, timedelta

    from repro.eo.products import ProcessingLevel, Product
    from repro.geometry import Envelope, Polygon
    from repro.mining.annotate import SemanticAnnotator
    from repro.mining.classify import (
        KNNClassifier,
        NearestCentroidClassifier,
        classifier_from_state,
    )
    from repro.mining.queries import annotations_valid_during
    from repro.rdf import URIRef

    patch = spec["patch"]
    oracle_train = oracles.naive_mining_features(spec["train"], patch)
    oracle_test = oracles.naive_mining_features(spec["test"], patch)

    # (1) feature extraction: kernels on/off x workers 1/4, all four
    # variants must reproduce the pure-python features bit for bit.
    grids: Dict[str, Any] = {}
    for label, workers, interpreted in [
        ("serial", 1, False),
        ("workers-4", 4, False),
        ("serial-interpreted", 1, True),
        ("workers-4-interpreted", 4, True),
    ]:
        def run(w=workers):
            return (
                _mining_grid(spec["train"], patch, "mining_case_train", w),
                _mining_grid(spec["test"], patch, "mining_case_test", w),
            )

        if interpreted:
            train_grid, test_grid = _with_env(
                kernels.KERNELS_ENV, "0", run
            )
        else:
            train_grid, test_grid = run()
        grids[label] = (train_grid, test_grid)
        for split, grid, expected in [
            ("train", train_grid, oracle_train),
            ("test", test_grid, oracle_test),
        ]:
            got = grid.feature_matrix().tolist()
            if got != expected:
                diff = oracles.first_difference(got, expected)
                return f"{label}/{split} features != oracle: {diff}"

    # (2) classification: numpy classifier vs the mirrored pure-python
    # oracle, plus a JSON state round trip (what ModelStore persists).
    train_grid, test_grid = grids["serial"]
    train_labels = [block["label"] for block in spec["train"]]
    clf = (
        KNNClassifier(1)
        if spec["classifier"] == "knn1"
        else NearestCentroidClassifier()
    )
    clf.fit(train_grid.feature_matrix(), train_labels)
    engine_labels = clf.predict(test_grid.feature_matrix())
    oracle_labels = oracles.naive_mining_classify(
        oracle_train, train_labels, oracle_test, spec["classifier"]
    )
    if engine_labels != oracle_labels:
        diff = oracles.first_difference(engine_labels, oracle_labels)
        return f"classifier labels != oracle: {diff}"
    restored = classifier_from_state(
        json.loads(json.dumps(clf.to_state(), sort_keys=True))
    )
    replayed = restored.predict(test_grid.feature_matrix())
    if replayed != engine_labels:
        diff = oracles.first_difference(replayed, engine_labels)
        return f"state round-trip changed labels: {diff}"

    # (3) annotation + stRDF valid time: every annotated patch must be
    # found by a containing strdf:during window (offset 0) and none by a
    # disjoint one (offset 30).
    acquired = datetime(2007, 8, 25, 12, 0)
    h = len(spec["test"]) * patch
    product = Product(
        "mining_case",
        "MSG",
        "SEVIRI",
        ProcessingLevel.L1_CALIBRATED,
        acquired,
        Polygon.from_envelope(Envelope(0.0, 0.0, patch, h), srid=4326),
        path="mining_case.nat",
    )
    concept_map = {
        label: URIRef(oracles.EX + label) for label in set(train_labels)
    }
    annotator = SemanticAnnotator(clf, concept_map=concept_map)
    store = StrabonStore()
    store.load_graph(annotator.annotate(product, test_grid, engine_labels))
    offset = spec["offset_min"]
    if offset == 0:
        start = acquired - timedelta(minutes=1)
        end = acquired + annotator.validity + timedelta(minutes=1)
    else:
        start = acquired + timedelta(minutes=offset)
        end = start + annotator.validity
    for label in sorted(set(engine_labels)):
        rows = list(
            store.query(
                annotations_valid_during(oracles.EX + label, start, end)
            ).rows()
        )
        expected_n = engine_labels.count(label) if offset == 0 else 0
        if len(rows) != expected_n:
            return (
                f"valid-time query for {label!r} offset={offset}: "
                f"{len(rows)} rows != expected {expected_n}"
            )
    return None


# -- storage: durable engine vs in-memory oracle -------------------------------

_STORAGE_SCHEMA = "(id INT, name STRING, v DOUBLE)"


def storage_apply(db: Database, op: Dict[str, Any]) -> None:
    """Apply one storage-schedule op to a database (oracle or durable).

    ``reload`` and ``checkpoint`` are engine-level and handled by the
    caller; everything else is plain DML/DDL so the in-memory oracle and
    the journaled database execute byte-identical logical operations.
    """
    kind = op["op"]
    table = op.get("table")
    if kind == "create":
        db.execute(f"CREATE TABLE {table} {_STORAGE_SCHEMA}")
    elif kind == "drop":
        db.execute(f"DROP TABLE {table}")
    elif kind == "insert":
        db.insert_rows(table, [tuple(r) for r in op["rows"]])
    elif kind == "bulk":
        base, count = op["base"], op["count"]
        db.insert_columns(
            table,
            {
                "id": list(range(base, base + count)),
                "name": [f"b{i}" for i in range(base, base + count)],
                "v": [
                    (i % 64) * 0.25 for i in range(base, base + count)
                ],
            },
        )
    elif kind == "update":
        db.execute(
            f"UPDATE {op['table']} SET v = v + {op['add']} "
            f"WHERE id > {op['bound']}"
        )
    elif kind == "delete":
        db.execute(
            f"DELETE FROM {op['table']} WHERE id < {op['bound']}"
        )
    elif kind not in ("reload", "checkpoint"):
        raise ValueError(f"unknown storage op {kind!r}")


def _check_storage(spec: Dict[str, Any]) -> Optional[str]:
    from repro import faults
    from repro.mdb.storage import open_database

    oracle = Database()
    with tempfile.TemporaryDirectory(prefix="repro-testkit-") as tmp:
        data_dir = os.path.join(tmp, "data")
        engine = open_database(data_dir)
        plan = faults.parse_spec(spec.get("faults"))
        previous = faults.install(plan) if plan else None
        try:
            for k, op in enumerate(spec["program"]):
                if op["op"] == "reload":
                    engine.close()
                    engine = open_database(data_dir)
                elif op["op"] == "checkpoint":
                    engine.checkpoint()
                else:
                    storage_apply(oracle, op)
                    storage_apply(engine.db, op)
                if op["op"] == "reload":
                    diff = _storage_diff(oracle, engine.db)
                    if diff:
                        return f"after reload at op {k}: {diff}"
        finally:
            if plan:
                faults.install(previous)
            engine.close()
        engine = open_database(data_dir)
        diff = _storage_diff(oracle, engine.db)
        engine.close()
        if diff:
            return f"after final recovery: {diff}"
    return None


def _storage_diff(oracle: Database, durable: Database) -> Optional[str]:
    a = oracles.database_state(oracle)
    b = oracles.database_state(durable)
    if a == b:
        return None
    if sorted(a) != sorted(b):
        return f"table sets differ: {sorted(a)} != {sorted(b)}"
    for name in sorted(a):
        if a[name]["schema"] != b[name]["schema"]:
            return f"schema of {name!r} differs"
        if a[name]["rows"] != b[name]["rows"]:
            diff = oracles.first_difference(
                a[name]["rows"], b[name]["rows"]
            )
            return f"rows of {name!r} differ: {diff}"
    return "states differ"


_CHECKS = {
    "spatial": _check_spatial,
    "stsparql": _check_stsparql,
    "sciql": _check_sciql,
    "chain": _check_chain,
    "storage": _check_storage,
    "mining": _check_mining,
}


def run_case(domain: str, spec: Dict[str, Any]) -> Optional[str]:
    """Run one differential case; ``None`` means every variant agreed."""
    try:
        check = _CHECKS[domain]
    except KeyError:
        raise ValueError(
            f"unknown domain {domain!r}; expected one of {SPEC_DOMAINS}"
        ) from None
    return check(spec)


@dataclass
class SweepReport:
    """Outcome of a seeded sweep."""

    base_seed: int
    cases_run: int = 0
    elapsed: float = 0.0
    counterexamples: List[Counterexample] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.counterexamples


def sweep(
    base_seed: int,
    budget_seconds: float = 60.0,
    domains: Optional[Sequence[str]] = None,
    max_cases: Optional[int] = None,
    do_shrink: bool = True,
    stop_on_first: bool = False,
    log: Optional[Callable[[str], None]] = None,
) -> SweepReport:
    """Run seeded differential cases until the time budget runs out.

    Case ``i`` uses domain ``schedule[i % len]`` and seed
    ``case_seed(base_seed, i)``, so a sweep is fully reproducible from
    its base seed, and any single case can be replayed in isolation.
    """
    from repro.testkit.shrink import shrink

    schedule = tuple(domains) if domains else DOMAINS
    report = SweepReport(base_seed=base_seed)
    started = time.monotonic()
    index = 0
    while time.monotonic() - started < budget_seconds:
        if max_cases is not None and index >= max_cases:
            break
        domain = schedule[index % len(schedule)]
        seed = case_seed(base_seed, index)
        spec = gen_spec(domain, seed)
        detail = run_case(domain, spec)
        report.cases_run += 1
        if detail is not None:
            counterexample = Counterexample(
                domain=domain, seed=seed, spec=spec, detail=detail
            )
            if do_shrink:
                shrunk, shrunk_detail = shrink(domain, spec)
                counterexample.shrunk_spec = shrunk
                counterexample.shrunk_detail = shrunk_detail
            report.counterexamples.append(counterexample)
            if log:
                log(counterexample.format())
            if stop_on_first:
                break
        elif log and report.cases_run % 50 == 0:
            log(
                f"... {report.cases_run} cases, no divergence "
                f"({time.monotonic() - started:.1f}s)"
            )
        index += 1
    report.elapsed = time.monotonic() - started
    return report
