"""Command line for the differential testkit.

::

    python -m repro.testkit sweep --budget 90 --seed 1234
    python -m repro.testkit replay --domain spatial --seed 87162
    python -m repro.testkit replay --spec-file counterexample.json
    python -m repro.testkit corpus --dir tests/testkit/corpus

``sweep`` exits non-zero if any divergence was found, printing each
counterexample as a ``REPRO_TESTKIT_SEED``/spec pair; ``replay``
re-runs a single case from its seed (or an explicit spec file) and
``corpus`` replays every recorded counterexample.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional, Sequence

from repro.testkit import corpus as corpus_module
from repro.testkit.differential import (
    DOMAINS,
    Counterexample,
    run_case,
    sweep,
)
from repro.testkit.generators import SPEC_DOMAINS, gen_spec
from repro.testkit.shrink import shrink


def _cmd_sweep(args: argparse.Namespace) -> int:
    base_seed = args.seed if args.seed is not None else (
        int(time.time()) & 0x7FFFFFFF
    )
    domains = (
        tuple(args.domains.split(",")) if args.domains else DOMAINS
    )
    for domain in domains:
        if domain not in SPEC_DOMAINS:
            print(f"unknown domain {domain!r}", file=sys.stderr)
            return 2
    print(
        f"testkit sweep: REPRO_TESTKIT_SEED={base_seed} "
        f"budget={args.budget}s domains={','.join(sorted(set(domains)))}"
    )
    report = sweep(
        base_seed,
        budget_seconds=args.budget,
        domains=domains,
        max_cases=args.max_cases,
        do_shrink=not args.no_shrink,
        stop_on_first=args.stop_first,
        log=print,
    )
    print(
        f"{report.cases_run} cases in {report.elapsed:.1f}s, "
        f"{len(report.counterexamples)} divergence(s)"
    )
    if args.save_dir:
        for counterexample in report.counterexamples:
            path = corpus_module.save_counterexample(
                args.save_dir, counterexample, note="found by sweep"
            )
            print(f"saved {path}")
    return 0 if report.ok else 1


def _report(counterexample: Counterexample) -> int:
    print(counterexample.format())
    return 1


def _cmd_replay(args: argparse.Namespace) -> int:
    if args.spec_file:
        with open(args.spec_file, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
        domain = raw.get("domain", args.domain)
        spec = raw.get("spec", raw)
        seed = raw.get("seed")
    else:
        if args.domain is None or args.seed is None:
            print(
                "replay needs --domain and --seed (or --spec-file)",
                file=sys.stderr,
            )
            return 2
        domain, seed = args.domain, args.seed
        spec = gen_spec(domain, seed)
    detail = run_case(domain, spec)
    if detail is None:
        print(f"OK: domain={domain} seed={seed} — no divergence")
        return 0
    counterexample = Counterexample(
        domain=domain, seed=seed, spec=spec, detail=detail
    )
    if not args.no_shrink:
        counterexample.shrunk_spec, counterexample.shrunk_detail = shrink(
            domain, spec
        )
    return _report(counterexample)


def _cmd_corpus(args: argparse.Namespace) -> int:
    entries = corpus_module.load_corpus(args.dir)
    if not entries:
        print(f"no corpus entries under {args.dir}")
        return 0
    failures = 0
    for entry in entries:
        detail = entry.replay()
        status = "OK" if detail is None else f"DIVERGES: {detail}"
        print(f"{entry.path}: {status}")
        if detail is not None:
            failures += 1
    return 0 if failures == 0 else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testkit",
        description="differential-oracle conformance testing",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sweep = sub.add_parser("sweep", help="run a seeded sweep")
    p_sweep.add_argument("--seed", type=int, default=None)
    p_sweep.add_argument("--budget", type=float, default=60.0)
    p_sweep.add_argument(
        "--domains", help="comma-separated domain schedule"
    )
    p_sweep.add_argument("--max-cases", type=int, default=None)
    p_sweep.add_argument("--no-shrink", action="store_true")
    p_sweep.add_argument("--stop-first", action="store_true")
    p_sweep.add_argument(
        "--save-dir", help="write counterexample JSON files here"
    )
    p_sweep.set_defaults(func=_cmd_sweep)

    p_replay = sub.add_parser("replay", help="replay one case")
    p_replay.add_argument("--domain", choices=SPEC_DOMAINS)
    p_replay.add_argument("--seed", type=int)
    p_replay.add_argument("--spec-file")
    p_replay.add_argument("--no-shrink", action="store_true")
    p_replay.set_defaults(func=_cmd_replay)

    p_corpus = sub.add_parser("corpus", help="replay the corpus")
    p_corpus.add_argument(
        "--dir", default=corpus_module.DEFAULT_CORPUS_DIR
    )
    p_corpus.set_defaults(func=_cmd_corpus)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
