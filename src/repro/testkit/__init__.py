"""Differential-oracle conformance testing for the TELEIOS stack.

Every optimisation in the repository (plan caches, BGP join ordering,
R-tree prefilters, tiled parallel SciQL kernels, retried chain runs) is
continuously checked against a slow, obviously-correct reference:

* :mod:`repro.testkit.generators` — seeded, deterministic input
  generators (WKT geometries, stRDF graphs + stSPARQL queries, SciQL
  programs, NOA acquisition batches).  A *spec* is a JSON-able value; a
  seed always regenerates the same spec, so every case is replayable.
* :mod:`repro.testkit.oracles` — brute-force reference implementations
  (all-pairs spatial scan, nested-loop BGP evaluation, pure-python cell
  loops, fault-free sequential chain runs).
* :mod:`repro.testkit.differential` — runs optimised variants against
  the oracle and against each other, reporting the first divergence.
* :mod:`repro.testkit.shrink` — greedy spec shrinking down to a locally
  minimal counterexample.
* :mod:`repro.testkit.corpus` — a directory of past counterexamples
  replayed by the normal test suite.

Run a sweep with ``python -m repro.testkit sweep``; replay a printed
``REPRO_TESTKIT_SEED`` with ``python -m repro.testkit replay``.
"""

from repro.testkit.differential import (
    DOMAINS,
    Counterexample,
    run_case,
    sweep,
)
from repro.testkit.generators import case_seed, gen_geometry, gen_spec
from repro.testkit.shrink import shrink, spec_size

__all__ = [
    "DOMAINS",
    "Counterexample",
    "case_seed",
    "gen_geometry",
    "gen_spec",
    "run_case",
    "shrink",
    "spec_size",
    "sweep",
]
