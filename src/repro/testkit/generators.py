"""Seeded, deterministic input generators.

Every generator takes a :class:`random.Random` (or a seed) and produces
either a geometry object or a JSON-able *spec* — a plain dict fully
describing one differential test case.  The same seed always yields the
same spec, so any counterexample is replayable from its seed alone, and
the shrinker can operate on the spec without re-running the generator.

Coordinates are drawn from a dyadic grid (multiples of 0.25) so WKT
serialisation round-trips exactly and floating-point sums in the SciQL
oracle are exact, removing the need for tolerances anywhere in the
differential comparisons.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Sequence

from repro.geometry import (
    Geometry,
    GeometryError,
    GeometryCollection,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
    to_wkt,
)

#: Domains understood by :func:`gen_spec`.
SPEC_DOMAINS = (
    "spatial",
    "stsparql",
    "sciql",
    "chain",
    "storage",
    "mining",
)

_SEED_MIX = 0x9E3779B97F4A7C15


def case_seed(base_seed: int, index: int) -> int:
    """Derive the seed of sweep case ``index`` from a base seed.

    A splitmix-style mix keeps neighbouring indices uncorrelated while
    staying a pure function of ``(base_seed, index)``.
    """
    x = (base_seed * 1_000_003 + index * _SEED_MIX) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 27
    return x & 0x7FFFFFFF


def _grid(rng: random.Random, lo: float = -8.0, hi: float = 8.0) -> float:
    """A coordinate on the quarter-unit grid (exact in binary)."""
    steps = int((hi - lo) * 4)
    return lo + rng.randint(0, steps) * 0.25


def _gen_point(rng: random.Random) -> Point:
    return Point(_grid(rng), _grid(rng))


def _gen_linestring(rng: random.Random) -> LineString:
    """A polyline; sometimes degenerate linework (repeated/collinear
    vertices) that exercises the constructor's cleaning rules."""
    n = rng.randint(2, 6)
    coords = [(_grid(rng), _grid(rng)) for _ in range(n)]
    if rng.random() < 0.3 and len(coords) >= 2:
        # Duplicate a vertex in place: the constructor must clean it.
        i = rng.randrange(len(coords) - 1)
        coords.insert(i + 1, coords[i])
    if rng.random() < 0.2:
        # Collinear run.
        x, y = coords[0]
        coords[1:1] = [(x + 1.0, y), (x + 2.0, y)]
    try:
        return LineString(coords)
    except GeometryError:
        # Everything collapsed to one distinct vertex: stretch it out.
        x, y = coords[0]
        return LineString([(x, y), (x + 1.0, y)])


def _gen_rect(rng: random.Random, max_side: float = 6.0) -> Polygon:
    x0, y0 = _grid(rng), _grid(rng)
    w = 0.5 + rng.randint(0, int(max_side * 2)) * 0.5
    h = 0.5 + rng.randint(0, int(max_side * 2)) * 0.5
    return Polygon([(x0, y0), (x0 + w, y0), (x0 + w, y0 + h), (x0, y0 + h)])


def _gen_polygon(rng: random.Random) -> Polygon:
    """A rectangle, an angle-sorted convex-ish ring, or a rectangle with
    a hole (a donut), whichever constructs cleanly."""
    shape = rng.random()
    if shape < 0.5:
        return _gen_rect(rng)
    if shape < 0.8:
        # Random CCW subset of an octagon template: always convex.
        cx, cy = _grid(rng, -4, 4), _grid(rng, -4, 4)
        octagon = [
            (2.0, 0.0), (1.5, 1.5), (0.0, 2.0), (-1.5, 1.5),
            (-2.0, 0.0), (-1.5, -1.5), (0.0, -2.0), (1.5, -1.5),
        ]
        picks = sorted(rng.sample(range(8), rng.randint(3, 8)))
        scale = rng.choice([0.5, 1.0, 1.5])
        pts = [
            (cx + octagon[i][0] * scale, cy + octagon[i][1] * scale)
            for i in picks
        ]
        try:
            return Polygon(pts)
        except GeometryError:
            return _gen_rect(rng)
    # Donut: shell with a strictly interior rectangular hole.
    x0, y0 = _grid(rng, -6, 4), _grid(rng, -6, 4)
    shell = [(x0, y0), (x0 + 4, y0), (x0 + 4, y0 + 4), (x0, y0 + 4)]
    hx, hy = x0 + 1, y0 + 1
    hole = [(hx, hy), (hx + 1.5, hy), (hx + 1.5, hy + 1.5), (hx, hy + 1.5)]
    try:
        return Polygon(shell, holes=[hole])
    except (GeometryError, TypeError):
        return Polygon(shell)


def gen_geometry(
    rng: random.Random, kinds: Optional[Sequence[str]] = None
) -> Geometry:
    """One random geometry.  ``kinds`` restricts the geometry types
    (point / linestring / polygon / multipoint / multilinestring /
    multipolygon / collection)."""
    kind = rng.choice(
        list(kinds)
        if kinds
        else [
            "point",
            "point",
            "linestring",
            "polygon",
            "polygon",
            "multipoint",
            "multilinestring",
            "multipolygon",
            "collection",
        ]
    )
    if kind == "point":
        return _gen_point(rng)
    if kind == "linestring":
        return _gen_linestring(rng)
    if kind == "polygon":
        return _gen_polygon(rng)
    if kind == "multipoint":
        return MultiPoint(
            [_gen_point(rng) for _ in range(rng.randint(1, 4))]
        )
    if kind == "multilinestring":
        return MultiLineString(
            [_gen_linestring(rng) for _ in range(rng.randint(1, 3))]
        )
    if kind == "multipolygon":
        return MultiPolygon(
            [_gen_rect(rng) for _ in range(rng.randint(1, 3))]
        )
    return GeometryCollection(
        [
            gen_geometry(rng, ["point", "linestring", "polygon"])
            for _ in range(rng.randint(1, 3))
        ]
    )


def gen_wkt(
    rng: random.Random, kinds: Optional[Sequence[str]] = None
) -> str:
    """WKT text of one random geometry."""
    return to_wkt(gen_geometry(rng, kinds))


# -- spatial (R-tree vs all-pairs scan) ----------------------------------------


def gen_spatial_spec(seed: int) -> Dict[str, Any]:
    """Indexed geometries, probe envelopes, and a removal schedule.

    The differential check inserts half, snapshots (via a batch query),
    inserts the rest, compares, then removes and compares again — the
    phase structure that catches stale-snapshot/invalidation bugs.
    """
    rng = random.Random(("spatial", seed).__repr__())
    n = rng.randint(2, 10)
    geometries = [
        gen_wkt(rng, ["point", "linestring", "polygon", "multipolygon"])
        for _ in range(n)
    ]
    probes = [
        gen_wkt(rng, ["polygon", "point"]) for _ in range(rng.randint(1, 5))
    ]
    k = rng.randint(0, min(3, n))
    removals = sorted(rng.sample(range(n), k))
    return {"geometries": geometries, "probes": probes, "removals": removals}


# -- stSPARQL (nested-loop BGP vs optimised evaluator) -------------------------

#: JSON term forms: ["u", local] URIRef, ["i", n] integer literal,
#: ["w", wkt] geometry literal, ["v", name] variable (patterns only).

_CLASSES = ("ClassA", "ClassB")
_CMP_OPS = ("<", "<=", ">", ">=", "=", "!=")
_SPATIAL_PREDS = (
    "intersects",
    "contains",
    "within",
    "touches",
    "overlaps",
    "equals",
    "disjoint",
)


def gen_stsparql_spec(seed: int) -> Dict[str, Any]:
    """A small stRDF graph plus one BGP/FILTER query.

    ``extra_triples`` are added *after* a first query round so the
    incremental index-maintenance path is differentially exercised too.
    """
    rng = random.Random(("stsparql", seed).__repr__())
    subjects = [f"s{i}" for i in range(rng.randint(2, 5))]

    def gen_triple() -> List[Any]:
        s = rng.choice(subjects)
        kind = rng.random()
        if kind < 0.4:
            return [["u", s], ["u", "geom"], ["w", gen_wkt(rng)]]
        if kind < 0.6:
            return [["u", s], ["u", "kind"], ["u", rng.choice(_CLASSES)]]
        if kind < 0.85:
            return [["u", s], ["u", "value"], ["i", rng.randint(0, 20)]]
        return [["u", s], ["u", "link"], ["u", rng.choice(subjects)]]

    triples = [gen_triple() for _ in range(rng.randint(3, 12))]
    extra = [gen_triple() for _ in range(rng.randint(0, 3))]

    templates = [
        [["v", "s"], ["u", "geom"], ["v", "g"]],
        [["v", "s"], ["u", "kind"], ["u", rng.choice(_CLASSES)]],
        [["v", "s"], ["u", "value"], ["v", "n"]],
        [["v", "s"], ["u", "link"], ["v", "o"]],
        [["v", "s"], ["v", "p"], ["v", "o"]],
    ]
    patterns = [rng.choice(templates) for _ in range(rng.randint(1, 3))]

    filter_spec: Optional[Dict[str, Any]] = None
    pattern_vars = {
        t[1]
        for p in patterns
        for t in p
        if t[0] == "v"
    }
    roll = rng.random()
    if roll < 0.3 and "g" in pattern_vars:
        filter_spec = {
            "kind": "spatial",
            "pred": rng.choice(_SPATIAL_PREDS),
            "var": "g",
            "wkt": gen_wkt(rng, ["polygon", "point"]),
            "flip": rng.random() < 0.3,
        }
    elif roll < 0.45 and "g" in pattern_vars:
        # strdf:distance(?g, const) compared against a dyadic bound —
        # the shape the batched spatial FILTER lane lowers.  ``flip``
        # mirrors the comparison (bound on the left) without changing
        # its meaning, covering the flipped lowering path.
        filter_spec = {
            "kind": "dist",
            "var": "g",
            "wkt": gen_wkt(rng, ["polygon", "point"]),
            "op": rng.choice(("<", "<=", ">", ">=")),
            "bound": rng.randint(0, 64) * 0.25,
            "flip": rng.random() < 0.4,
        }
    elif roll < 0.6 and "n" in pattern_vars:
        filter_spec = {
            "kind": "cmp",
            "var": "n",
            "op": rng.choice(_CMP_OPS),
            "value": rng.randint(0, 20),
        }
    return {
        "triples": triples,
        "extra_triples": extra,
        "patterns": patterns,
        "filter": filter_spec,
        "distinct": rng.random() < 0.3,
    }


# -- SciQL (tiled kernels vs pure-python cell loop) ----------------------------


def gen_sciql_spec(seed: int) -> Dict[str, Any]:
    """An array (explicit cells) plus a short kernel program.

    Float cells are multiples of 0.25 and stay small, so every sum in
    both the numpy kernels and the python oracle is exactly
    representable — results are compared with ``==``, no tolerance.
    """
    rng = random.Random(("sciql", seed).__repr__())
    h, w = rng.randint(2, 9), rng.randint(2, 9)
    dtype = rng.choice(["float", "int"])
    if dtype == "float":
        cells = [
            [rng.randint(-16, 16) * 0.25 for _ in range(w)]
            for _ in range(h)
        ]
    else:
        cells = [
            [rng.randint(-8, 8) for _ in range(w)] for _ in range(h)
        ]
    program: List[Dict[str, Any]] = []
    if rng.random() < 0.4:
        update: Dict[str, Any] = {
            "op": "update",
            "mul": rng.randint(1, 3),
            "add": rng.randint(-2, 2),
            "dim": rng.choice(["x", "y"]),
            "cmp": rng.choice(["=", ">", "<"]),
            "bound": rng.randint(0, 3),
        }
        # Optionally compose a richer WHERE clause / assignment so the
        # sweep exercises the compiled kernel lanes: IN lists, BETWEEN
        # ranges, attribute predicates, dimension columns in the SET
        # expression.  Old specs without these keys stay valid.
        roll = rng.random()
        if roll < 0.2:
            update["extra"] = {
                "kind": "in",
                "dim": rng.choice(["x", "y"]),
                "values": sorted(
                    rng.sample(range(0, 9), rng.randint(1, 4))
                ),
                "negated": rng.random() < 0.5,
            }
        elif roll < 0.4:
            lo = rng.randint(0, 4)
            update["extra"] = {
                "kind": "between",
                "dim": rng.choice(["x", "y"]),
                "lo": lo,
                "hi": lo + rng.randint(0, 4),
            }
        elif roll < 0.6:
            update["extra"] = {
                "kind": "attr_cmp",
                "op": rng.choice([">", "<"]),
                "value": rng.randint(-4, 4),
            }
        elif roll < 0.75:
            # A compiled scalar-function lane in the WHERE clause:
            # ``... OR fn(v) op value``.
            update["extra"] = {
                "kind": "fn_cmp",
                "fn": rng.choice(["abs", "floor", "ceil"]),
                "op": rng.choice([">", "<"]),
                "value": rng.randint(-4, 6),
            }
        if rng.random() < 0.3:
            update["set_dim"] = rng.choice(["x", "y"])
        program.append(update)
    ch, cw = h, w
    # A mean over a block whose size is not a power of two divides an
    # exact dyadic sum by e.g. 3 — from then on float cells are inexact
    # and summation *order* matters (python's left-to-right sum vs
    # numpy's unrolled reduction can differ in the last bit).  Once that
    # happens, only order-insensitive tile funcs keep == comparable.
    inexact = False
    if rng.random() < 0.3 and ch > 2 and cw > 2:
        x0 = rng.randint(0, ch - 2)
        y0 = rng.randint(0, cw - 2)
        program.append(
            {
                "op": "slice",
                "x": [x0, rng.randint(x0 + 2, ch)],
                "y": [y0, rng.randint(y0 + 2, cw)],
            }
        )
        x = program[-1]
        ch, cw = x["x"][1] - x["x"][0], x["y"][1] - x["y"][0]
    for _ in range(rng.randint(1, 3)):
        roll = rng.random()
        if roll < 0.55:
            program.append(
                {
                    "op": "map",
                    "mul": rng.randint(-3, 3),
                    "add": rng.randint(-8, 8) * 0.25
                    if dtype == "float"
                    else rng.randint(-4, 4),
                }
            )
        elif roll < 0.85:
            th = rng.randint(1, ch)
            tw = rng.randint(1, cw)
            funcs = (
                ["min", "max"]
                if inexact
                else ["mean", "sum", "min", "max"]
            )
            func = rng.choice(funcs)
            if (
                dtype == "float"
                and func == "mean"
                and (th * tw) & (th * tw - 1) != 0
            ):
                inexact = True
            program.append({"op": "tile", "t": [th, tw], "func": func})
            ch, cw = ch // th, cw // tw
        else:
            program.append(
                {"op": "count", "gt": rng.randint(-4, 4)}
            )
            break
    if rng.random() < 0.3:
        # Terminal SELECT over the updated array: projections and the
        # compiled scalar-function lanes (sqrt/power stay bit-exact
        # because the kernels delegate to the registry loops).  The
        # SELECT queries the catalogued array, so slices/maps/tiles
        # that rebased the working view are dropped.
        program = [op for op in program if op["op"] == "update"]
        program.append(
            {
                "op": "select",
                "expr": rng.choice(
                    ["v", "abs", "floor", "ceil", "sqrt_abs", "pow2"]
                ),
                "gt": rng.randint(-6, 6),
            }
        )
    return {
        "shape": [h, w],
        "dtype": dtype,
        "cells": cells,
        "program": program,
    }


# -- NOA chain (fault-free sequential vs retried parallel batch) ---------------


def gen_chain_spec(seed: int) -> Dict[str, Any]:
    """A batch of small synthetic SEVIRI acquisitions plus a fault plan.

    Fault probabilities stay at or below 10% so the default retry
    policy absorbs every transient with overwhelming probability; the
    check then demands bitwise-equal hotspots and RDF against a
    fault-free sequential baseline.
    """
    rng = random.Random(("chain", seed).__repr__())
    scenes = [
        {
            "width": rng.choice([24, 32, 40]),
            "height": rng.choice([24, 32, 40]),
            "seed": rng.randint(0, 10_000),
            "n_fires": rng.randint(0, 3),
            "n_glints": rng.randint(0, 2),
        }
        for _ in range(rng.randint(1, 3))
    ]
    sites = rng.sample(
        ["chain.*", "scheduler.task", "strabon.bulk", "ingest.file"],
        rng.randint(1, 2),
    )
    p = rng.choice([0.02, 0.05, 0.1])
    rules = ";".join(f"{site}:p={p}" for site in sites)
    return {
        "scenes": scenes,
        "workers": rng.choice([2, 3]),
        "faults": f"{rules};seed={rng.randint(0, 99_999)}",
    }


# -- storage (durable engine vs in-memory oracle) ------------------------------

#: Table names a storage schedule may create/drop.
STORAGE_TABLES = ("t_a", "t_b", "t_c")


def gen_storage_spec(seed: int) -> Dict[str, Any]:
    """A random mutation schedule over a few fixed-schema tables.

    The same schedule is applied to an in-memory oracle database and to
    a durable engine (reopened at the scheduled ``reload`` points); the
    check demands identical relational state at every comparison.
    ``bulk`` counts straddle the segment threshold so both the per-row
    WAL path and the binary segment path are exercised; float payloads
    are multiples of 0.25 so states compare with ``==``.
    """
    rng = random.Random(("storage", seed).__repr__())
    live: List[str] = []
    next_id: Dict[str, int] = {}
    program: List[Dict[str, Any]] = []
    for _ in range(rng.randint(5, 14)):
        ops = []
        if len(live) < len(STORAGE_TABLES):
            ops += ["create"] * 3
        if live:
            ops += ["insert"] * 4 + ["bulk", "update", "delete"]
            ops += ["reload", "checkpoint"]
            if len(live) > 1:
                ops.append("drop")
        kind = rng.choice(ops)
        if kind == "create":
            name = next(
                t for t in STORAGE_TABLES if t not in live
            )
            live.append(name)
            next_id.setdefault(name, 0)
            program.append({"op": "create", "table": name})
            continue
        if kind in ("reload", "checkpoint"):
            program.append({"op": kind})
            continue
        table = rng.choice(live)
        if kind == "drop":
            live.remove(table)
            program.append({"op": "drop", "table": table})
        elif kind == "insert":
            rows = []
            for _ in range(rng.randint(1, 5)):
                i = next_id[table]
                next_id[table] = i + 1
                rows.append(
                    [
                        i,
                        None if rng.random() < 0.15 else f"s{i}",
                        None
                        if rng.random() < 0.15
                        else rng.randint(-16, 16) * 0.25,
                    ]
                )
            program.append(
                {"op": "insert", "table": table, "rows": rows}
            )
        elif kind == "bulk":
            count = rng.choice([200, 256, 300])
            base = next_id[table]
            next_id[table] = base + count
            program.append(
                {
                    "op": "bulk",
                    "table": table,
                    "base": base,
                    "count": count,
                }
            )
        elif kind == "update":
            program.append(
                {
                    "op": "update",
                    "table": table,
                    "add": rng.randint(-4, 4) * 0.25,
                    "bound": rng.randint(0, 64),
                }
            )
        else:  # delete
            program.append(
                {
                    "op": "delete",
                    "table": table,
                    "bound": rng.randint(0, 64),
                }
            )
    return {
        "program": program,
        "faults": (
            f"storage.*:p={rng.choice([0.02, 0.05])};"
            f"seed={rng.randint(0, 99_999)}"
            if rng.random() < 0.5
            else None
        ),
    }


# -- mining (SciQL patch features + classifiers vs pure-python oracle) ---------


def gen_mining_spec(seed: int) -> Dict[str, Any]:
    """Labelled patch blocks plus a classifier and a temporal probe.

    Each block is one ``patch x patch`` pair of band planes; the check
    stacks them vertically into a SciQL array and extracts features with
    kernels on/off and 1/4 workers.  Cell values are class base levels
    (integers at least 16 K apart) plus quarter-unit noise, so every
    feature in :data:`repro.mining.features.MINING_FEATURE_NAMES` is an
    exact dyadic and the pure-python oracle compares with ``==``; the
    wide class separation also keeps classifier decisions far from
    numeric ties.  ``offset_min`` probes the stRDF valid-time filter:
    0 queries a window containing the annotation validity, 30 a
    disjoint one.
    """
    rng = random.Random(("mining", seed).__repr__())
    patch = rng.choice([2, 4])
    n_classes = rng.randint(2, 3)
    bases = rng.sample([280, 296, 312, 328, 344], n_classes)
    classes = [
        {
            "label": f"c{i}",
            "t039": base,
            "t108": base - rng.choice([4, 8, 12]),
        }
        for i, base in enumerate(bases)
    ]

    def block(cls: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "label": cls["label"],
            "t039": [
                [
                    cls["t039"] + rng.randint(-4, 4) * 0.25
                    for _ in range(patch)
                ]
                for _ in range(patch)
            ],
            "t108": [
                [
                    cls["t108"] + rng.randint(-4, 4) * 0.25
                    for _ in range(patch)
                ]
                for _ in range(patch)
            ],
        }

    train = [
        block(cls) for cls in classes for _ in range(rng.randint(2, 3))
    ]
    rng.shuffle(train)
    test = [
        block(rng.choice(classes)) for _ in range(rng.randint(2, 5))
    ]
    return {
        "patch": patch,
        "train": train,
        "test": test,
        "classifier": rng.choice(["centroid", "centroid", "knn1"]),
        "offset_min": rng.choice([0, 0, 30]),
    }


_GENERATORS = {
    "spatial": gen_spatial_spec,
    "stsparql": gen_stsparql_spec,
    "sciql": gen_sciql_spec,
    "chain": gen_chain_spec,
    "storage": gen_storage_spec,
    "mining": gen_mining_spec,
}


def gen_spec(domain: str, seed: int) -> Dict[str, Any]:
    """The spec of differential case ``(domain, seed)``."""
    try:
        generator = _GENERATORS[domain]
    except KeyError:
        raise ValueError(
            f"unknown domain {domain!r}; expected one of {SPEC_DOMAINS}"
        ) from None
    return generator(seed)
