"""Counterexample corpus: past divergences as permanent regressions.

Every divergence the sweep finds (and every bug fixed because of one)
is recorded as a JSON file ``{domain, seed, spec, detail, note}`` in a
corpus directory — by convention ``tests/testkit/corpus/``.  The normal
test suite replays every entry through :func:`repro.testkit.run_case`
and fails if any past counterexample diverges again.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.testkit.differential import Counterexample, run_case
from repro.testkit.generators import gen_spec

#: Corpus location used by the CLI when none is given.
DEFAULT_CORPUS_DIR = os.path.join("tests", "testkit", "corpus")


@dataclass
class CorpusEntry:
    """One recorded counterexample."""

    domain: str
    spec: Dict[str, Any]
    seed: Optional[int] = None
    detail: str = ""
    note: str = ""
    path: str = ""

    def replay(self) -> Optional[str]:
        """Re-run the recorded case; ``None`` means it stays fixed."""
        spec = self.spec
        if spec is None and self.seed is not None:
            spec = gen_spec(self.domain, self.seed)
        return run_case(self.domain, spec)


def load_corpus(directory: str) -> List[CorpusEntry]:
    """All corpus entries in ``directory`` (sorted by filename)."""
    entries: List[CorpusEntry] = []
    if not os.path.isdir(directory):
        return entries
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(directory, name)
        with open(path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
        entries.append(
            CorpusEntry(
                domain=raw["domain"],
                spec=raw.get("spec"),
                seed=raw.get("seed"),
                detail=raw.get("detail", ""),
                note=raw.get("note", ""),
                path=path,
            )
        )
    return entries


def save_counterexample(
    directory: str, counterexample: Counterexample, note: str = ""
) -> str:
    """Write a counterexample (its shrunk form if available) to the
    corpus; returns the file path."""
    os.makedirs(directory, exist_ok=True)
    seed = counterexample.seed
    stem = f"{counterexample.domain}-{seed if seed is not None else 'manual'}"
    path = os.path.join(directory, f"{stem}.json")
    suffix = 0
    while os.path.exists(path):
        suffix += 1
        path = os.path.join(directory, f"{stem}-{suffix}.json")
    payload = {
        "domain": counterexample.domain,
        "seed": seed,
        "spec": counterexample.shrunk_spec or counterexample.spec,
        "detail": counterexample.shrunk_detail or counterexample.detail,
        "note": note,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
