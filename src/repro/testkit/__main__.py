"""``python -m repro.testkit`` entry point."""

import sys

from repro.testkit.cli import main

sys.exit(main())
