"""Greedy spec shrinking.

``shrink(domain, spec)`` repeatedly tries structurally smaller variants
of a diverging spec, keeping any variant that still diverges, until no
single simplification step preserves the divergence — a locally minimal
counterexample.  The size metric is the canonical JSON length, which
every candidate strictly decreases, so termination is guaranteed.

Candidates must stay *valid* specs: a shrink step that turned a real
divergence into a mere validity error (e.g. a tile larger than the
shrunken array) would let the shrinker wander off the bug, so SciQL
candidates are shape-checked before being offered.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple


def _numeric_mass(value: Any) -> float:
    """Sum of the magnitudes of every number in a spec — a tiebreaker
    so shrinking ``40 → 24`` counts as progress even when the JSON text
    stays the same length."""
    if isinstance(value, bool):
        return 0.0
    if isinstance(value, (int, float)):
        return abs(float(value))
    if isinstance(value, dict):
        return sum(_numeric_mass(v) for v in value.values())
    if isinstance(value, (list, tuple)):
        return sum(_numeric_mass(v) for v in value)
    return 0.0


def spec_size(domain: str, spec: Dict[str, Any]) -> float:
    """Canonical size of a spec: its sorted-key JSON length, with the
    total numeric magnitude as an epsilon-weight tiebreaker (structure
    always dominates; equal structures compare by their numbers)."""
    return len(json.dumps(spec, sort_keys=True)) + (
        _numeric_mass(spec) * 1e-9
    )


def _with(spec: Dict[str, Any], **updates: Any) -> Dict[str, Any]:
    out = dict(spec)
    out.update(updates)
    return out


def _point_of(wkt_text: str) -> str:
    """A point somewhere on the geometry's envelope — the simplest
    geometry that can still participate in the divergence."""
    from repro.geometry import Point, from_wkt

    env = from_wkt(wkt_text).envelope
    return Point(env.minx, env.miny).wkt


def _spatial_candidates(
    spec: Dict[str, Any],
) -> Iterator[Dict[str, Any]]:
    geometries = spec["geometries"]
    probes = spec["probes"]
    removals = spec["removals"]
    for i in range(len(geometries)):
        if len(geometries) <= 1:
            break
        kept = geometries[:i] + geometries[i + 1:]
        remapped = sorted(
            r - 1 if r > i else r for r in removals if r != i
        )
        yield _with(spec, geometries=kept, removals=remapped)
    for j in range(len(probes)):
        if len(probes) <= 1:
            break
        yield _with(spec, probes=probes[:j] + probes[j + 1:])
    for r in range(len(removals)):
        yield _with(spec, removals=removals[:r] + removals[r + 1:])
    for i, text in enumerate(geometries):
        if not text.startswith("POINT"):
            simplified = list(geometries)
            simplified[i] = _point_of(text)
            yield _with(spec, geometries=simplified)
    for j, text in enumerate(probes):
        if not text.startswith("POINT"):
            simplified = list(probes)
            simplified[j] = _point_of(text)
            yield _with(spec, probes=simplified)


def _stsparql_candidates(
    spec: Dict[str, Any],
) -> Iterator[Dict[str, Any]]:
    triples = spec["triples"]
    extra = spec["extra_triples"]
    patterns = spec["patterns"]
    for i in range(len(triples)):
        yield _with(spec, triples=triples[:i] + triples[i + 1:])
    for i in range(len(extra)):
        yield _with(spec, extra_triples=extra[:i] + extra[i + 1:])
    for k in range(len(patterns)):
        if len(patterns) <= 1:
            break
        kept = patterns[:k] + patterns[k + 1:]
        if any(term[0] == "v" for p in kept for term in p):
            yield _with(spec, patterns=kept)
    if spec.get("filter") is not None:
        yield _with(spec, filter=None)
    if spec["distinct"]:
        yield _with(spec, distinct=False)
    for i, triple in enumerate(triples):
        if triple[2][0] == "w" and not triple[2][1].startswith("POINT"):
            simplified = [list(t) for t in triples]
            simplified[i][2] = ["w", _point_of(triple[2][1])]
            yield _with(spec, triples=simplified)
        if triple[2][0] == "i" and triple[2][1] != 0:
            simplified = [list(t) for t in triples]
            simplified[i][2] = ["i", 0]
            yield _with(spec, triples=simplified)


def _sciql_spec_valid(spec: Dict[str, Any]) -> bool:
    """Shape-check a program so shrinking never fabricates a validity
    error (empty slice, tile larger than the array) that the engine and
    the oracle would report differently."""
    height, width = spec["shape"]
    if height < 1 or width < 1:
        return False
    if len(spec["cells"]) != height or any(
        len(row) != width for row in spec["cells"]
    ):
        return False
    for op in spec["program"]:
        if op["op"] == "slice":
            x0, x1 = max(op["x"][0], 0), min(op["x"][1], height)
            y0, y1 = max(op["y"][0], 0), min(op["y"][1], width)
            if x1 <= x0 or y1 <= y0:
                return False
            height, width = x1 - x0, y1 - y0
        elif op["op"] == "tile":
            th, tw = op["t"]
            if th < 1 or tw < 1 or th > height or tw > width:
                return False
            height, width = height // th, width // tw
    return True


def _sciql_candidates(
    spec: Dict[str, Any],
) -> Iterator[Dict[str, Any]]:
    program = spec["program"]
    height, width = spec["shape"]
    for i in range(len(program)):
        candidate = _with(spec, program=program[:i] + program[i + 1:])
        if _sciql_spec_valid(candidate):
            yield candidate
    if height > 1:
        candidate = _with(
            spec, shape=[height - 1, width], cells=spec["cells"][:-1]
        )
        if _sciql_spec_valid(candidate):
            yield candidate
    if width > 1:
        candidate = _with(
            spec,
            shape=[height, width - 1],
            cells=[row[:-1] for row in spec["cells"]],
        )
        if _sciql_spec_valid(candidate):
            yield candidate
    for r, row in enumerate(spec["cells"]):
        for c, value in enumerate(row):
            if value != 0:
                cells = [list(x) for x in spec["cells"]]
                cells[r][c] = 0
                yield _with(spec, cells=cells)


def _chain_candidates(
    spec: Dict[str, Any],
) -> Iterator[Dict[str, Any]]:
    scenes = spec["scenes"]
    for i in range(len(scenes)):
        if len(scenes) <= 1:
            break
        yield _with(spec, scenes=scenes[:i] + scenes[i + 1:])
    for i, scene in enumerate(scenes):
        for key, floor in (
            ("width", 24),
            ("height", 24),
            ("n_fires", 0),
            ("n_glints", 0),
        ):
            if scene[key] > floor:
                shrunk = [dict(s) for s in scenes]
                shrunk[i][key] = floor
                yield _with(spec, scenes=shrunk)
    rules = [
        part for part in spec["faults"].split(";") if part.strip()
    ]
    fault_rules = [r for r in rules if not r.startswith("seed=")]
    seed_parts = [r for r in rules if r.startswith("seed=")]
    if len(fault_rules) > 1:
        for i in range(len(fault_rules)):
            kept = fault_rules[:i] + fault_rules[i + 1:] + seed_parts
            yield _with(spec, faults=";".join(kept))


def _storage_candidates(
    spec: Dict[str, Any],
) -> Iterator[Dict[str, Any]]:
    program = spec["program"]
    for i, op in enumerate(program):
        if op["op"] == "create":
            # A create can only go together with every op touching its
            # table, otherwise the schedule dereferences a missing table.
            table = op["table"]
            kept = [
                o
                for j, o in enumerate(program)
                if j != i and o.get("table") != table
            ]
        else:
            kept = program[:i] + program[i + 1:]
        if kept:
            yield _with(spec, program=kept)
    for i, op in enumerate(program):
        if op["op"] == "insert" and len(op["rows"]) > 1:
            shrunk = [dict(o) for o in program]
            shrunk[i]["rows"] = op["rows"][:1]
            yield _with(spec, program=shrunk)
        elif op["op"] == "bulk" and op["count"] > 1:
            shrunk = [dict(o) for o in program]
            shrunk[i]["count"] = max(1, op["count"] // 2)
            yield _with(spec, program=shrunk)
    if spec.get("faults"):
        yield _with(spec, faults=None)


def _mining_candidates(
    spec: Dict[str, Any],
) -> Iterator[Dict[str, Any]]:
    train, test = spec["train"], spec["test"]
    for i in range(len(test)):
        if len(test) <= 1:
            break
        yield _with(spec, test=test[:i] + test[i + 1:])
    for i in range(len(train)):
        # The classifier needs a non-empty training set; two blocks keep
        # z-normalisation meaningful.
        if len(train) <= 2:
            break
        yield _with(spec, train=train[:i] + train[i + 1:])
    if spec["classifier"] != "centroid":
        yield _with(spec, classifier="centroid")
    if spec["offset_min"] != 0:
        yield _with(spec, offset_min=0)
    # Flatten one noisy block to its first cell value per band — the
    # structural shrink that removes texture features from the story.
    for coll in ("train", "test"):
        for i, block in enumerate(spec[coll]):
            for band in ("t039", "t108"):
                base = block[band][0][0]
                if any(v != base for row in block[band] for v in row):
                    blocks = [
                        {
                            "label": b["label"],
                            "t039": [list(r) for r in b["t039"]],
                            "t108": [list(r) for r in b["t108"]],
                        }
                        for b in spec[coll]
                    ]
                    blocks[i][band] = [
                        [base] * len(row) for row in block[band]
                    ]
                    yield _with(spec, **{coll: blocks})


_CANDIDATES = {
    "spatial": _spatial_candidates,
    "stsparql": _stsparql_candidates,
    "sciql": _sciql_candidates,
    "chain": _chain_candidates,
    "storage": _storage_candidates,
    "mining": _mining_candidates,
}

_MAX_STEPS = 500


def candidates(
    domain: str, spec: Dict[str, Any]
) -> List[Dict[str, Any]]:
    """All one-step simplifications of ``spec`` (possibly non-smaller;
    the shrink loop enforces the strict size decrease)."""
    return list(_CANDIDATES[domain](spec))


def shrink(
    domain: str,
    spec: Dict[str, Any],
    diverges: Optional[Callable[[Dict[str, Any]], Optional[str]]] = None,
) -> Tuple[Dict[str, Any], Optional[str]]:
    """Greedily minimise a diverging spec.

    Returns ``(shrunk_spec, divergence_detail)``.  The result is
    locally minimal: no single candidate step both reduces the size
    and preserves the divergence.  ``diverges`` defaults to
    :func:`repro.testkit.differential.run_case` for the domain.
    """
    if diverges is None:
        from repro.testkit.differential import run_case

        def diverges(candidate, _domain=domain):
            return run_case(_domain, candidate)

    current = spec
    current_detail = diverges(spec)
    if current_detail is None:
        return spec, None
    for _ in range(_MAX_STEPS):
        current_size = spec_size(domain, current)
        for candidate in candidates(domain, current):
            if spec_size(domain, candidate) >= current_size:
                continue
            detail = diverges(candidate)
            if detail is not None:
                current, current_detail = candidate, detail
                break
        else:
            break
    return current, current_detail
