"""Brute-force reference implementations.

Each oracle is deliberately naive — the smallest amount of code that is
obviously correct — so that when it disagrees with an optimised path the
optimisation is the prime suspect.  Oracles share term/geometry
semantics with the engine (same parser, same predicate functions): the
differential tests target the *plumbing* (indexes, caches, join
ordering, tiling, retries), while predicate math itself is covered by
the property tests in ``tests/geometry``.
"""

from __future__ import annotations

import itertools
import math
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.geometry import Envelope, from_wkt
from repro.rdf.term import Literal, RDFTerm, URIRef, Variable
from repro.strabon import strdf

EX = "http://example.org/"


# -- term materialisation ------------------------------------------------------


def term_from_json(spec: Sequence[Any]) -> Any:
    """Decode a generator JSON term (see generators module) to an RDF
    term, or a :class:`Variable` for pattern positions."""
    tag, value = spec[0], spec[1]
    if tag == "u":
        return URIRef(EX + value)
    if tag == "i":
        return Literal(int(value))
    if tag == "w":
        return Literal(value, datatype=str(strdf.WKT_DATATYPE))
    if tag == "v":
        return Variable(value)
    raise ValueError(f"unknown term tag {tag!r}")


def triples_from_json(
    specs: Iterable[Sequence[Sequence[Any]]],
) -> List[Tuple[RDFTerm, RDFTerm, RDFTerm]]:
    return [
        (
            term_from_json(s),
            term_from_json(p),
            term_from_json(o),
        )
        for s, p, o in specs
    ]


# -- spatial oracle ------------------------------------------------------------


def naive_spatial_query(
    entries: Sequence[Tuple[Envelope, Any]], probe: Envelope
) -> List[Any]:
    """All-pairs envelope scan: what any R-tree query must return."""
    return [item for env, item in entries if env.intersects(probe)]


# -- stSPARQL oracle -----------------------------------------------------------


def _unify(
    pattern: Tuple[Any, Any, Any],
    triple: Tuple[RDFTerm, RDFTerm, RDFTerm],
    binding: Dict[str, RDFTerm],
) -> Optional[Dict[str, RDFTerm]]:
    out = binding
    for pat, term in zip(pattern, triple):
        if isinstance(pat, Variable):
            name = str(pat)  # Variable is a str subclass; its text IS the name
            bound = out.get(name)
            if bound is None:
                if out is binding:
                    out = dict(binding)
                out[name] = term
            elif bound != term:
                return None
        elif pat != term:
            return None
    return out


def _cmp_value(term: Any) -> Any:
    # Mirror of the evaluator's _comparable: literals compare by python
    # value, URIRefs (str subclass) lexically, everything else by str().
    if isinstance(term, Literal):
        return term.to_python()
    if isinstance(term, (int, float, bool, str)):
        return term
    return str(term)


def _filter_passes(
    filter_spec: Optional[Dict[str, Any]], binding: Dict[str, RDFTerm]
) -> bool:
    """Replicates evaluator FILTER semantics: any error → excluded."""
    if filter_spec is None:
        return True
    term = binding.get(filter_spec["var"])
    if term is None:
        return False
    if filter_spec["kind"] == "cmp":
        op = filter_spec["op"]
        value = filter_spec["value"]
        if op in ("=", "!="):
            if isinstance(term, Literal) and term.is_numeric:
                equal = term.to_python() == value
            else:
                equal = term == Literal(value)
            return equal if op == "=" else not equal
        try:
            left = _cmp_value(term)
            if op == "<":
                return left < value
            if op == "<=":
                return left <= value
            if op == ">":
                return left > value
            return left >= value
        except TypeError:
            return False
    # Spatial predicate / distance comparison.  Parse failures and
    # ValueErrors exclude the row (the evaluator's extension-call
    # wrapper turns StRDFError / ValueError into a failed FILTER);
    # anything else — e.g. a TypeError from an unsupported operand
    # combination — propagates, exactly as it escapes the optimised
    # evaluator.
    try:
        geom = strdf.literal_geometry(term)
    except strdf.StRDFError:
        return False
    const = from_wkt(filter_spec["wkt"])
    if filter_spec["kind"] == "dist":
        # ``flip`` only mirrors the rendered comparison; the canonical
        # op here carries the meaning.  Distance is symmetric within
        # one SRID, so the argument order never matters.
        try:
            d = geom.distance(const)
        except ValueError:
            return False
        op = filter_spec["op"]
        bound = filter_spec["bound"]
        if op == "<":
            return d < bound
        if op == "<=":
            return d <= bound
        if op == ">":
            return d > bound
        return d >= bound
    a, b = (const, geom) if filter_spec.get("flip") else (geom, const)
    try:
        return bool(getattr(a, filter_spec["pred"])(b))
    except ValueError:
        return False


def naive_bgp_rows(
    triples: Sequence[Tuple[RDFTerm, RDFTerm, RDFTerm]],
    patterns: Sequence[Tuple[Any, Any, Any]],
    filter_spec: Optional[Dict[str, Any]],
    variables: Sequence[str],
    distinct: bool,
) -> List[Tuple[Optional[str], ...]]:
    """Nested-loop BGP evaluation in pattern order, filter applied at
    the end; rows rendered to n3 over ``variables``.  Returns the sorted
    multiset (list) of rows, deduplicated only under ``distinct``."""
    solutions: List[Dict[str, RDFTerm]] = [{}]
    for pattern in patterns:
        solutions = [
            extended
            for binding in solutions
            for triple in triples
            for extended in (_unify(pattern, triple, binding),)
            if extended is not None
        ]
    rows = [
        tuple(
            sol[name].n3() if name in sol else None for name in variables
        )
        for sol in solutions
        if _filter_passes(filter_spec, sol)
    ]
    if distinct:
        rows = list(dict.fromkeys(rows))
    return sorted(rows, key=lambda r: tuple(x or "" for x in r))


# -- SciQL oracle --------------------------------------------------------------


def _cast(value: float, dtype: str) -> Any:
    return int(value) if dtype == "int" else float(value)


def naive_sciql_run(spec: Dict[str, Any]) -> Tuple[str, Any]:
    """Interpret a SciQL program spec with pure-python list loops.

    Returns ``("count", n)`` or ``("cells", rows)`` matching the
    differential runner's outcome encoding.  All arithmetic stays on
    dyadic floats, so results are exactly comparable to the kernels.
    """
    dtype = spec["dtype"]
    cells = [list(row) for row in spec["cells"]]
    row0, col0 = 0, 0  # dimension offsets survive slicing
    for op in spec["program"]:
        name = op["op"]
        if name == "update":
            dim, cmp_op, bound = op["dim"], op["cmp"], op["bound"]
            extra = op.get("extra")
            set_dim = op.get("set_dim")
            for r in range(len(cells)):
                for c in range(len(cells[0])):
                    coord = row0 + r if dim == "x" else col0 + c
                    hit = (
                        coord == bound
                        if cmp_op == "="
                        else coord > bound if cmp_op == ">" else coord < bound
                    )
                    if extra is not None:
                        # Mirrors the rendered SQL: AND for the
                        # coordinate clauses, OR for the attribute one.
                        if extra["kind"] == "attr_cmp":
                            v = cells[r][c]
                            hit = hit or (
                                v > extra["value"]
                                if extra["op"] == ">"
                                else v < extra["value"]
                            )
                        elif extra["kind"] == "fn_cmp":
                            v = cells[r][c]
                            fn = extra["fn"]
                            if fn == "abs":
                                fv = abs(v)
                            elif fn == "floor":
                                fv = math.floor(v)
                            else:
                                fv = math.ceil(v)
                            hit = hit or (
                                fv > extra["value"]
                                if extra["op"] == ">"
                                else fv < extra["value"]
                            )
                        else:
                            ecoord = (
                                row0 + r
                                if extra["dim"] == "x"
                                else col0 + c
                            )
                            if extra["kind"] == "in":
                                inside = ecoord in extra["values"]
                                if extra["negated"]:
                                    inside = not inside
                            else:
                                inside = (
                                    extra["lo"] <= ecoord <= extra["hi"]
                                )
                            hit = hit and inside
                    if hit:
                        bump = 0
                        if set_dim:
                            bump = (
                                row0 + r if set_dim == "x" else col0 + c
                            )
                        cells[r][c] = _cast(
                            cells[r][c] * op["mul"] + op["add"] + bump,
                            dtype,
                        )
        elif name == "slice":
            (x0, x1), (y0, y1) = op["x"], op["y"]
            cells = [row[y0:y1] for row in cells[x0:x1]]
            row0, col0 = row0 + x0, col0 + y0
        elif name == "map":
            cells = [
                [_cast(v * op["mul"] + op["add"], dtype) for v in row]
                for row in cells
            ]
        elif name == "tile":
            th, tw = op["t"]
            func = op["func"]
            out_h = len(cells) // th
            out_w = len(cells[0]) // tw
            new_cells = []
            for tr in range(out_h):
                out_row = []
                for tc in range(out_w):
                    block = [
                        float(cells[tr * th + i][tc * tw + j])
                        for i in range(th)
                        for j in range(tw)
                    ]
                    if func == "sum":
                        val = sum(block)
                    elif func == "min":
                        val = min(block)
                    elif func == "max":
                        val = max(block)
                    else:
                        val = sum(block) / len(block)
                    out_row.append(_cast(val, dtype))
                new_cells.append(out_row)
            cells = new_cells
            row0, col0 = 0, 0  # aggregate output re-bases coordinates
        elif name == "count":
            return (
                "count",
                sum(
                    1
                    for row in cells
                    for v in row
                    if v > op["gt"]
                ),
            )
        elif name == "select":
            kind = op["expr"]
            rows = []
            for r in range(len(cells)):
                for c in range(len(cells[0])):
                    v = cells[r][c]
                    if not v > op["gt"]:
                        continue
                    if kind == "v":
                        e = float(v)
                    elif kind == "abs":
                        e = float(abs(v))
                    elif kind == "floor":
                        e = float(math.floor(v))
                    elif kind == "ceil":
                        e = float(math.ceil(v))
                    elif kind == "sqrt_abs":
                        # math.sqrt and np.sqrt are both correctly
                        # rounded, so this compares exactly.
                        e = math.sqrt(abs(v))
                    else:  # pow2 — same float ** float as the registry
                        e = float(v) ** 2.0
                    rows.append((float(row0 + r), float(col0 + c), e))
            return ("rows", sorted(rows))
        else:
            raise ValueError(f"unknown sciql op {name!r}")
    return ("cells", cells)


# -- mining oracle -------------------------------------------------------------


def _stack_blocks(blocks: Sequence[Dict[str, Any]], band: str) -> List[List[float]]:
    return [
        [float(v) for v in row] for block in blocks for row in block[band]
    ]


def _central_gradient_rows(plane: List[List[float]]) -> List[List[float]]:
    """Pure-python mirror of :func:`repro.mining.features.central_gradient`
    along axis 0 (rows)."""
    h = len(plane)
    w = len(plane[0])
    g = [[0.0] * w for _ in range(h)]
    if h < 2:
        return g
    for c in range(w):
        g[0][c] = plane[1][c] - plane[0][c]
        g[h - 1][c] = plane[h - 1][c] - plane[h - 2][c]
        for r in range(1, h - 1):
            g[r][c] = (plane[r + 1][c] - plane[r - 1][c]) * 0.5
    return g


def _transpose(plane: List[List[float]]) -> List[List[float]]:
    return [list(col) for col in zip(*plane)]


def naive_mining_features(
    blocks: Sequence[Dict[str, Any]], patch: int
) -> List[List[float]]:
    """Feature matrix of patch blocks stacked vertically, by brute force.

    Mirrors :func:`repro.mining.features.extract_patch_grid` over the
    stacked ``(len(blocks)*patch, patch)`` planes with plain loops.  All
    cells are dyadic and patch areas are powers of two, so every
    statistic is exact and the comparison needs no tolerance.
    """
    t039 = _stack_blocks(blocks, "t039")
    t108 = _stack_blocks(blocks, "t108")
    h, w = len(t039), patch
    gx = _central_gradient_rows(t039)
    gy = _transpose(_central_gradient_rows(_transpose(t039)))
    gradsq = [
        [gx[r][c] * gx[r][c] + gy[r][c] * gy[r][c] for c in range(w)]
        for r in range(h)
    ]
    contrast = [
        [
            (t108[r][c + 1] - t108[r][c]) ** 2 if c + 1 < w else 0.0
            for c in range(w)
        ]
        for r in range(h)
    ]
    area = patch * patch
    features: List[List[float]] = []
    for i in range(len(blocks)):
        rows = range(i * patch, (i + 1) * patch)

        def tile_mean(plane: List[List[float]]) -> float:
            total = 0.0
            for r in rows:
                for c in range(w):
                    total += plane[r][c]
            return total / area

        m039 = tile_mean(t039)
        m108 = tile_mean(t108)
        msq039 = 0.0
        msq108 = 0.0
        for r in rows:
            for c in range(w):
                msq039 += t039[r][c] * t039[r][c]
                msq108 += t108[r][c] * t108[r][c]
        msq039 /= area
        msq108 /= area
        mx039 = max(t039[r][c] for r in rows for c in range(w))
        mgrad = tile_mean(gradsq)
        mcon = tile_mean(contrast)
        features.append(
            [
                m039,
                max(msq039 - m039 * m039, 0.0),
                m108,
                max(msq108 - m108 * m108, 0.0),
                m039 - m108,
                mx039,
                mgrad,
                mcon,
            ]
        )
    return features


def _axis0_mean(rows: Sequence[Sequence[float]]) -> List[float]:
    """Sequential row accumulation, numpy's axis-0 reduction order."""
    acc = list(rows[0])
    for row in rows[1:]:
        for j, v in enumerate(row):
            acc[j] += v
    n = len(rows)
    return [v / n for v in acc]


def _pairwise8(values: Sequence[float]) -> float:
    """numpy's pairwise-summation order for exactly eight addends."""
    s = list(values)
    assert len(s) == 8
    return ((s[0] + s[1]) + (s[2] + s[3])) + ((s[4] + s[5]) + (s[6] + s[7]))


def naive_mining_classify(
    train_X: Sequence[Sequence[float]],
    train_labels: Sequence[str],
    test_X: Sequence[Sequence[float]],
    classifier: str,
) -> List[str]:
    """Pure-python mirror of the mining classifiers.

    Replicates :class:`repro.mining.classify.Classifier` numerics
    operation for operation — z-score over sequential axis-0 sums,
    Euclidean distances summed in numpy's pairwise-eight order, first
    strict minimum wins — so labels compare exactly, not just
    statistically.
    """
    mean = _axis0_mean(train_X)
    var = _axis0_mean(
        [
            [(row[j] - mean[j]) ** 2 for j in range(len(mean))]
            for row in train_X
        ]
    )
    std = [1.0 if math.sqrt(v) < 1e-12 else math.sqrt(v) for v in var]

    def norm(rows: Sequence[Sequence[float]]) -> List[List[float]]:
        return [
            [(row[j] - mean[j]) / std[j] for j in range(len(mean))]
            for row in rows
        ]

    xn = norm(train_X)
    tn = norm(test_X)

    def dist(a: Sequence[float], b: Sequence[float]) -> float:
        return math.sqrt(
            _pairwise8([(a[j] - b[j]) ** 2 for j in range(len(a))])
        )

    out: List[str] = []
    if classifier == "centroid":
        classes = sorted(set(train_labels))
        centroids = [
            _axis0_mean(
                [row for row, lab in zip(xn, train_labels) if lab == cls]
            )
            for cls in classes
        ]
        for row in tn:
            best, best_d = 0, dist(centroids[0], row)
            for k in range(1, len(centroids)):
                d = dist(centroids[k], row)
                if d < best_d:
                    best, best_d = k, d
            out.append(classes[best])
    elif classifier == "knn1":
        for row in tn:
            best, best_d = 0, dist(xn[0], row)
            for k in range(1, len(xn)):
                d = dist(xn[k], row)
                if d < best_d:
                    best, best_d = k, d
            out.append(train_labels[best])
    else:
        raise ValueError(f"unknown mining classifier {classifier!r}")
    return out


# -- generic multiset helpers --------------------------------------------------


def multiset(items: Iterable[Any]) -> List[Any]:
    """A canonical (sorted) rendering of an unordered collection."""
    return sorted(items, key=repr)


def first_difference(a: Sequence[Any], b: Sequence[Any]) -> Optional[str]:
    """A short human-readable description of the first mismatch."""
    for i, (x, y) in enumerate(itertools.zip_longest(a, b)):
        if x != y:
            return f"index {i}: {x!r} != {y!r}"
    return None


# -- storage state -------------------------------------------------------------


def database_state(db: Any) -> Dict[str, Any]:
    """A canonical, comparable snapshot of a database's relational state.

    Schema (column names and types) plus the full row multiset of every
    table, rendered order-independently — two databases are
    storage-equivalent iff their ``database_state`` values are equal.
    """
    state: Dict[str, Any] = {}
    for name in sorted(db.tables()):
        table = db.table(name)
        state[name] = {
            "schema": [
                (c.name, c.ctype.name) for c in table.columns
            ],
            "rows": multiset(db.query(f"SELECT * FROM {name}")),
        }
    return state
