"""Resilience policies: bounded retries, deadlines and circuit breakers.

A production Virtual Earth Observatory ingests real SEVIRI feeds, and
real feeds fail: acquisitions arrive corrupt, storage stalls, a store
tier refuses writes for a while.  The demo scenarios of the paper assume
every tier succeeds on the first try; this module makes failure a
first-class, *policy-driven* outcome instead:

* :class:`RetryPolicy` / :func:`call_with_retry` / :func:`retry` —
  bounded attempts with exponential backoff.  Sleep and clock are
  injectable, so tests drive the schedule deterministically, and only
  whitelisted exception types (:class:`TransientError` by default) are
  retried — a programming error is never papered over by a retry loop.
* :class:`Deadline` — a soft timeout carried across tiers and *checked
  at boundaries* (chain stages, SciQL tile bands).  Python threads
  cannot be interrupted mid-kernel, so the deadline is cooperative: the
  work between two checks is the latency floor.  An ambient per-thread
  deadline can be installed with :func:`deadline_scope`.
* :class:`CircuitBreaker` — the classic closed → open → half-open state
  machine guarding the StrabonStore bulk emit path and Data Vault
  payload reads.  After ``failure_threshold`` consecutive recorded
  failures the circuit opens and callers fail fast with
  :class:`CircuitOpenError` (no queue of doomed work piles up on a sick
  backend); after ``recovery_time`` a limited number of half-open probe
  calls test the backend, and one success closes the circuit again.

Everything reports through :mod:`repro.obs` (``resilience.retry.*``,
``resilience.breaker.*``, ``resilience.deadline.*``), so retries, trips
and rejections are visible in the same metrics snapshot as the work they
protect.  Fault *injection* lives in the sibling :mod:`repro.faults`
module; this module knows nothing about it beyond the shared
:class:`TransientError` marker type.
"""

from __future__ import annotations

import functools
import random
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, Type

from repro import obs

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "DEFAULT_RETRY",
    "Deadline",
    "DeadlineExceeded",
    "RetryPolicy",
    "TransientError",
    "active_deadline",
    "call_with_retry",
    "check_deadline",
    "deadline_scope",
    "retry",
]


class TransientError(RuntimeError):
    """Marker base class for failures worth retrying.

    Raise (or subclass) this for conditions expected to clear on their
    own: a slow read, a store refusing writes momentarily, an injected
    chaos fault.  Retry whitelists default to exactly this type, so
    genuine bugs (``TypeError``, ``ValueError``, ...) always surface on
    the first attempt.
    """


class DeadlineExceeded(RuntimeError):
    """A cooperative deadline expired at a checkpoint."""


class CircuitOpenError(RuntimeError):
    """A call was rejected because the circuit is open (failing fast)."""

    def __init__(self, name: str, retry_in: float):
        super().__init__(
            f"circuit {name!r} is open (retry in {retry_in:.3g}s)"
        )
        self.circuit = name
        self.retry_in = retry_in


# -- retry --------------------------------------------------------------------


class RetryPolicy:
    """Bounded attempts with exponential backoff.

    ``attempts`` is the *total* number of tries (1 = no retry).  The
    delay before retry ``k`` (1-based) is ``base_delay * multiplier**(k-1)``
    capped at ``max_delay``; with ``jitter > 0`` the delay is scattered
    uniformly in ``[delay * (1 - jitter), delay * (1 + jitter)]`` by a
    *seeded* generator, so even jittered schedules replay exactly.
    ``sleep`` and the jitter seed are injectable for tests.
    """

    __slots__ = ("attempts", "base_delay", "multiplier", "max_delay",
                 "retry_on", "sleep", "_jitter", "_rng")

    def __init__(
        self,
        attempts: int = 3,
        base_delay: float = 0.05,
        multiplier: float = 2.0,
        max_delay: float = 2.0,
        retry_on: Tuple[Type[BaseException], ...] = (TransientError,),
        sleep: Callable[[float], None] = time.sleep,
        jitter: float = 0.0,
        seed: int = 0,
    ):
        if attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {attempts}")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        self.attempts = int(attempts)
        self.base_delay = float(base_delay)
        self.multiplier = float(multiplier)
        self.max_delay = float(max_delay)
        self.retry_on = tuple(retry_on)
        self.sleep = sleep
        self._jitter = float(jitter)
        self._rng = random.Random(seed)

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        base = min(
            self.max_delay,
            self.base_delay * self.multiplier ** (attempt - 1),
        )
        if self._jitter:
            base *= 1.0 - self._jitter + 2 * self._jitter * self._rng.random()
        return max(0.0, base)

    def __repr__(self) -> str:
        return (
            f"<RetryPolicy attempts={self.attempts} "
            f"base={self.base_delay:.3g}s x{self.multiplier:g} "
            f"max={self.max_delay:.3g}s>"
        )


#: The stack-wide default: six tries with millisecond-scale backoff.
#: Tuned so a 10% injected fault rate (the CI chaos run) gives up with
#: probability 1e-6 per guarded call while the worst-case added latency
#: stays ~60ms.
DEFAULT_RETRY = RetryPolicy(
    attempts=6, base_delay=0.002, multiplier=2.0, max_delay=0.05
)


def call_with_retry(
    fn: Callable[[], Any],
    policy: Optional[RetryPolicy] = None,
    label: str = "",
) -> Any:
    """Run ``fn`` under ``policy`` (default :data:`DEFAULT_RETRY`).

    Only exceptions matching ``policy.retry_on`` are retried; anything
    else propagates from the first attempt.  When the attempts are
    exhausted — or an ambient :class:`Deadline` would expire before the
    next backoff completes — the *original* exception is re-raised, so
    callers keep their error types; the ``resilience.retry.giveups``
    counter records the exhaustion.
    """
    policy = policy or DEFAULT_RETRY
    obs.counter("resilience.retry.calls").inc()
    attempt = 1
    while True:
        try:
            return fn()
        except policy.retry_on:
            if attempt >= policy.attempts:
                obs.counter("resilience.retry.giveups").inc()
                raise
            delay = policy.delay(attempt)
            ambient = active_deadline()
            if ambient is not None and ambient.remaining() < delay:
                obs.counter("resilience.retry.giveups").inc()
                raise
            obs.counter("resilience.retry.retries").inc()
            if label:
                obs.counter(f"resilience.retry.retries.{label}").inc()
            if delay > 0:
                policy.sleep(delay)
            attempt += 1


def retry(
    policy: Optional[RetryPolicy] = None, label: str = ""
) -> Callable:
    """Decorator form of :func:`call_with_retry`."""

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            return call_with_retry(
                lambda: fn(*args, **kwargs),
                policy,
                label or fn.__name__,
            )

        return wrapper

    return decorate


# -- deadlines ----------------------------------------------------------------


class Deadline:
    """A cooperative soft timeout, checked at work boundaries.

    The object is immutable after construction and safe to share across
    worker threads (tile bands capture it by reference).  ``clock`` is
    injectable; the default is :func:`time.monotonic`.
    """

    __slots__ = ("seconds", "_clock", "_expires")

    def __init__(
        self,
        seconds: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.seconds = float(seconds)
        self._clock = clock
        self._expires = clock() + self.seconds

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self._expires - self._clock()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0

    def check(self, label: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        over = -self.remaining()
        if over >= 0:
            obs.counter("resilience.deadline.exceeded").inc()
            where = f" at {label}" if label else ""
            raise DeadlineExceeded(
                f"deadline of {self.seconds:.3g}s exceeded{where} "
                f"(over by {over:.3g}s)"
            )

    def __repr__(self) -> str:
        return f"<Deadline {self.seconds:.3g}s remaining={self.remaining():.3g}s>"


_DEADLINES = threading.local()


def _deadline_stack() -> List[Deadline]:
    stack = getattr(_DEADLINES, "stack", None)
    if stack is None:
        stack = _DEADLINES.stack = []
    return stack


@contextmanager
def deadline_scope(deadline: "Deadline | float") -> Iterator[Deadline]:
    """Install an ambient deadline for the calling thread.

    Checkpoints reached inside the scope (chain stages, SciQL tile
    bands) honour it without any explicit plumbing.  Scopes nest; the
    innermost deadline wins.
    """
    if not isinstance(deadline, Deadline):
        deadline = Deadline(deadline)
    stack = _deadline_stack()
    stack.append(deadline)
    try:
        yield deadline
    finally:
        stack.pop()


def active_deadline() -> Optional[Deadline]:
    """The innermost ambient deadline of the calling thread, if any."""
    stack = getattr(_DEADLINES, "stack", None)
    return stack[-1] if stack else None


def check_deadline(label: str = "") -> None:
    """Checkpoint against the ambient deadline (no-op without one)."""
    deadline = active_deadline()
    if deadline is not None:
        deadline.check(label)


# -- circuit breaker ----------------------------------------------------------

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Gauge encoding of breaker state (0 healthy, 1 tripped).
_STATE_GAUGE = {CLOSED: 0.0, HALF_OPEN: 0.5, OPEN: 1.0}


class CircuitBreaker:
    """Closed → open → half-open guard around a fallible dependency.

    Failures are *recorded* only for exception types in ``record_on``
    (infrastructure trouble), so a caller bug passing through the
    breaker never trips it.  After ``failure_threshold`` consecutive
    failures the circuit opens: calls fail fast with
    :class:`CircuitOpenError` until ``recovery_time`` has elapsed, then
    up to ``half_open_max`` concurrent probe calls are let through —
    one success closes the circuit, one failure re-opens it.
    Thread-safe; the clock is injectable for tests.
    """

    def __init__(
        self,
        name: str,
        failure_threshold: int = 5,
        recovery_time: float = 5.0,
        half_open_max: int = 1,
        record_on: Tuple[Type[BaseException], ...] = (TransientError,),
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.name = name
        self.failure_threshold = int(failure_threshold)
        self.recovery_time = float(recovery_time)
        self.half_open_max = int(half_open_max)
        self.record_on = tuple(record_on)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probes = 0

    # -- state machine -------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state()

    def _effective_state(self) -> str:
        # Lock held.  OPEN decays to HALF_OPEN once recovery_time passes.
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.recovery_time
        ):
            self._state = HALF_OPEN
            self._probes = 0
            self._set_gauge()
        return self._state

    def _set_gauge(self) -> None:
        obs.gauge(f"resilience.breaker.{self.name}.state").set(
            _STATE_GAUGE[self._state]
        )

    def allow(self) -> None:
        """Admit one call, or raise :class:`CircuitOpenError`."""
        with self._lock:
            state = self._effective_state()
            if state == OPEN:
                obs.counter("resilience.breaker.rejections").inc()
                retry_in = self.recovery_time - (
                    self._clock() - self._opened_at
                )
                raise CircuitOpenError(self.name, max(0.0, retry_in))
            if state == HALF_OPEN:
                if self._probes >= self.half_open_max:
                    obs.counter("resilience.breaker.rejections").inc()
                    raise CircuitOpenError(self.name, 0.0)
                self._probes += 1
                obs.counter("resilience.breaker.half_open_probes").inc()

    def record_success(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                obs.counter("resilience.breaker.closes").inc()
            self._state = CLOSED
            self._failures = 0
            self._probes = 0
            self._set_gauge()

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            tripping = (
                self._state == HALF_OPEN
                or self._failures >= self.failure_threshold
            )
            if tripping:
                if self._state != OPEN:
                    obs.counter("resilience.breaker.trips").inc()
                self._state = OPEN
                self._opened_at = self._clock()
                self._probes = 0
            self._set_gauge()

    def _release_probe(self) -> None:
        # A half-open probe ended with an exception the breaker does not
        # record (a caller bug); free the probe slot without moving state.
        with self._lock:
            if self._state == HALF_OPEN and self._probes > 0:
                self._probes -= 1

    def reset(self) -> None:
        """Force the circuit closed (operator override)."""
        with self._lock:
            self._state = CLOSED
            self._failures = 0
            self._probes = 0
            self._set_gauge()

    # -- call wrappers -------------------------------------------------------

    def call(self, fn: Callable[[], Any]) -> Any:
        """Run ``fn`` through the breaker."""
        self.allow()
        obs.counter("resilience.breaker.calls").inc()
        try:
            result = fn()
        except self.record_on:
            self.record_failure()
            raise
        except BaseException:
            self._release_probe()
            raise
        self.record_success()
        return result

    @contextmanager
    def guard(self) -> Iterator["CircuitBreaker"]:
        """``with breaker.guard(): ...`` — context-manager form."""
        self.allow()
        obs.counter("resilience.breaker.calls").inc()
        try:
            yield self
        except self.record_on:
            self.record_failure()
            raise
        except BaseException:
            self._release_probe()
            raise
        else:
            self.record_success()

    def describe(self) -> Dict[str, Any]:
        """Snapshot of the breaker for service-tier reporting."""
        with self._lock:
            state = self._effective_state()
            return {
                "name": self.name,
                "state": state,
                "consecutive_failures": self._failures,
                "failure_threshold": self.failure_threshold,
                "recovery_time": self.recovery_time,
            }

    def __repr__(self) -> str:
        return (
            f"<CircuitBreaker {self.name} {self.state} "
            f"failures={self._failures}/{self.failure_threshold}>"
        )
