"""ESRI shapefile I/O (.shp / .shx / .dbf).

The NOA chain's final module "generates shapefiles containing the
geometries of hotspots"; this is a real, binary-compatible implementation
of the 1998 ESRI whitepaper subset needed for that: shape types Point (1)
and Polygon (5), the .shx offset index, and dBASE III attribute tables
with character (C) and numeric (N) fields.
"""

from __future__ import annotations

import os
import struct
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.geometry import Envelope, Geometry, Point, Polygon
from repro.geometry.multi import MultiPolygon, flatten

_SHP_MAGIC = 9994
_SHP_VERSION = 1000
SHAPE_NULL = 0
SHAPE_POINT = 1
SHAPE_POLYGON = 5


class ShapefileError(ValueError):
    """Raised for malformed shapefiles or unsupported shape types."""


class Feature:
    """One shapefile record: a geometry plus its attribute row."""

    def __init__(self, geometry: Optional[Geometry], attributes: Dict[str, Any]):
        self.geometry = geometry
        self.attributes = attributes

    def __repr__(self) -> str:
        kind = self.geometry.geom_type if self.geometry else "Null"
        return f"<Feature {kind} {self.attributes}>"


# ---------------------------------------------------------------------------
# writing
# ---------------------------------------------------------------------------


def _geometry_record(geom: Optional[Geometry]) -> bytes:
    if geom is None:
        return struct.pack("<i", SHAPE_NULL)
    if isinstance(geom, Point):
        return struct.pack("<idd", SHAPE_POINT, geom.x, geom.y)
    if isinstance(geom, (Polygon, MultiPolygon)):
        return _polygon_record(geom)
    raise ShapefileError(
        f"unsupported geometry type {geom.geom_type} for shapefiles"
    )


def _polygon_record(geom: Polygon | MultiPolygon) -> bytes:
    polys = [g for g in flatten(geom) if isinstance(g, Polygon)]
    if not polys:
        return struct.pack("<i", SHAPE_NULL)
    rings: List[List[Tuple[float, float]]] = []
    for poly in polys:
        # Shapefile wants outer rings clockwise, holes counter-clockwise.
        shell = poly.shell.oriented(ccw=False).closed_coords()
        rings.append(shell)
        for hole in poly.holes:
            rings.append(hole.oriented(ccw=True).closed_coords())
    env = geom.envelope
    parts: List[int] = []
    offset = 0
    for ring in rings:
        parts.append(offset)
        offset += len(ring)
    n_points = offset
    body = struct.pack(
        "<idddd", SHAPE_POLYGON, env.minx, env.miny, env.maxx, env.maxy
    )
    body += struct.pack("<ii", len(rings), n_points)
    body += struct.pack(f"<{len(parts)}i", *parts)
    for ring in rings:
        for x, y in ring:
            body += struct.pack("<dd", x, y)
    return body


def _dbf_field_descriptors(
    fields: Sequence[Tuple[str, str, int, int]]
) -> bytes:
    out = b""
    for name, ftype, length, decimals in fields:
        out += struct.pack(
            "<11sc4xBB14x",
            name.encode("ascii")[:10].ljust(11, b"\0"),
            ftype.encode("ascii"),
            length,
            decimals,
        )
    return out


def _infer_fields(
    features: Sequence[Feature],
) -> List[Tuple[str, str, int, int]]:
    """dBASE field table from the union of attribute keys."""
    keys: List[str] = []
    for f in features:
        for k in f.attributes:
            if k not in keys:
                keys.append(k)
    fields: List[Tuple[str, str, int, int]] = []
    for key in keys:
        values = [f.attributes.get(key) for f in features]
        non_null = [v for v in values if v is not None]
        if non_null and all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in non_null
        ):
            has_float = any(isinstance(v, float) for v in non_null)
            fields.append((key, "N", 19, 6 if has_float else 0))
        else:
            # Width is in *bytes*; account for multi-byte UTF-8 text.
            width = max(
                [len(str(v).encode("utf-8")) for v in non_null] + [1]
            )
            fields.append((key, "C", min(max(width, 1), 254), 0))
    return fields


def _dbf_record(
    feature: Feature, fields: Sequence[Tuple[str, str, int, int]]
) -> bytes:
    out = b" "  # not deleted
    for name, ftype, length, decimals in fields:
        value = feature.attributes.get(name)
        if ftype == "N":
            if value is None:
                text = " " * length
            elif decimals:
                text = f"{float(value):>{length}.{decimals}f}"[:length]
            else:
                text = f"{int(value):>{length}d}"[:length]
            out += text.rjust(length).encode("ascii")
        else:
            text = "" if value is None else str(value)
            out += text.encode("utf-8", "replace")[:length].ljust(length, b" ")
    return out


def write_shapefile(base_path: str, features: Sequence[Feature]) -> None:
    """Write ``<base>.shp``, ``<base>.shx`` and ``<base>.dbf``.

    All features must share one shape type (points or polygons); Null
    geometries are allowed anywhere.
    """
    base, _ = os.path.splitext(base_path)
    shape_type = SHAPE_NULL
    total_env = Envelope.empty()
    for f in features:
        if f.geometry is None:
            continue
        this_type = (
            SHAPE_POINT if isinstance(f.geometry, Point) else SHAPE_POLYGON
        )
        if shape_type == SHAPE_NULL:
            shape_type = this_type
        elif shape_type != this_type:
            raise ShapefileError("mixed shape types in one shapefile")
        total_env = total_env.union(f.geometry.envelope)
    if total_env.is_empty:
        total_env = Envelope(0, 0, 0, 0)

    records: List[bytes] = [_geometry_record(f.geometry) for f in features]
    # .shp
    shp_body = b""
    shx_body = b""
    offset_words = 50  # header is 100 bytes = 50 words
    for i, record in enumerate(records, start=1):
        length_words = len(record) // 2
        shp_body += struct.pack(">ii", i, length_words) + record
        shx_body += struct.pack(">ii", offset_words, length_words)
        offset_words += 4 + length_words

    def header(length_words: int) -> bytes:
        return struct.pack(
            ">i5ii",
            _SHP_MAGIC, 0, 0, 0, 0, 0,
            length_words,
        ) + struct.pack(
            "<ii4d4d",
            _SHP_VERSION,
            shape_type,
            total_env.minx, total_env.miny, total_env.maxx, total_env.maxy,
            0.0, 0.0, 0.0, 0.0,
        )

    with open(base + ".shp", "wb") as f:
        f.write(header(50 + len(shp_body) // 2))
        f.write(shp_body)
    with open(base + ".shx", "wb") as f:
        f.write(header(50 + len(shx_body) // 2))
        f.write(shx_body)

    # .dbf
    fields = _infer_fields(features)
    record_len = 1 + sum(f[2] for f in fields)
    header_len = 32 + 32 * len(fields) + 1
    with open(base + ".dbf", "wb") as f:
        f.write(
            struct.pack(
                "<B3BIHH20x",
                0x03, 107, 7, 7,  # version, fake YMD
                len(features),
                header_len,
                record_len,
            )
        )
        f.write(_dbf_field_descriptors(fields))
        f.write(b"\x0d")
        for feature in features:
            f.write(_dbf_record(feature, fields))
        f.write(b"\x1a")


# ---------------------------------------------------------------------------
# reading
# ---------------------------------------------------------------------------


def _read_geometry(record: bytes) -> Optional[Geometry]:
    (shape_type,) = struct.unpack_from("<i", record, 0)
    if shape_type == SHAPE_NULL:
        return None
    if shape_type == SHAPE_POINT:
        x, y = struct.unpack_from("<dd", record, 4)
        return Point(x, y)
    if shape_type == SHAPE_POLYGON:
        return _read_polygon(record)
    raise ShapefileError(f"unsupported shape type {shape_type}")


def _read_polygon(record: bytes) -> Geometry:
    n_parts, n_points = struct.unpack_from("<ii", record, 36)
    parts = list(
        struct.unpack_from(f"<{n_parts}i", record, 44)
    )
    coords_off = 44 + 4 * n_parts
    xs_ys = struct.unpack_from(f"<{2 * n_points}d", record, coords_off)
    points = [
        (xs_ys[2 * i], xs_ys[2 * i + 1]) for i in range(n_points)
    ]
    rings: List[List[Tuple[float, float]]] = []
    bounds = parts + [n_points]
    for i in range(n_parts):
        rings.append(points[bounds[i] : bounds[i + 1]])
    # Ring winding tells shells (cw) from holes (ccw).
    from repro.geometry.algorithms import ring_signed_area

    shells: List[Tuple[List, List]] = []  # (shell, holes)
    holes: List[List[Tuple[float, float]]] = []
    for ring in rings:
        if ring_signed_area(ring) <= 0:
            shells.append((ring, []))
        else:
            holes.append(ring)
    if not shells:  # degenerate: treat all as shells
        shells = [(r, []) for r in rings]
        holes = []
    for hole in holes:
        from repro.geometry.algorithms import point_in_ring

        placed = False
        for shell, shell_holes in shells:
            if point_in_ring(hole[0], shell) >= 0:
                shell_holes.append(hole)
                placed = True
                break
        if not placed:
            shells.append((hole, []))
    polys = [Polygon(shell, hs) for shell, hs in shells]
    if len(polys) == 1:
        return polys[0]
    return MultiPolygon(polys)


def _read_dbf(path: str) -> Tuple[List[str], List[List[Any]]]:
    with open(path, "rb") as f:
        head = f.read(32)
        n_records, header_len, record_len = struct.unpack_from(
            "<IHH", head, 4
        )
        n_fields = (header_len - 33) // 32
        fields = []
        for _ in range(n_fields):
            desc = f.read(32)
            name = desc[:11].split(b"\0")[0].decode("ascii")
            ftype = chr(desc[11])
            length = desc[16]
            decimals = desc[17]
            fields.append((name, ftype, length, decimals))
        f.seek(header_len)
        rows: List[List[Any]] = []
        for _ in range(n_records):
            raw = f.read(record_len)
            if not raw or raw[0:1] == b"\x1a":
                break
            pos = 1
            row: List[Any] = []
            for name, ftype, length, decimals in fields:
                chunk = raw[pos : pos + length]
                pos += length
                text = chunk.decode("utf-8", "replace").strip()
                if ftype == "N":
                    if not text:
                        row.append(None)
                    elif decimals or "." in text:
                        row.append(float(text))
                    else:
                        row.append(int(text))
                else:
                    row.append(text if text else None)
            rows.append(row)
    return [f[0] for f in fields], rows


def read_shapefile(base_path: str) -> List[Feature]:
    """Read ``<base>.shp`` + ``<base>.dbf`` back into features."""
    base, _ = os.path.splitext(base_path)
    shp_path = base + ".shp"
    with open(shp_path, "rb") as f:
        header = f.read(100)
        if struct.unpack_from(">i", header, 0)[0] != _SHP_MAGIC:
            raise ShapefileError(f"not a shapefile: {shp_path!r}")
        geometries: List[Optional[Geometry]] = []
        while True:
            rec_header = f.read(8)
            if len(rec_header) < 8:
                break
            _, length_words = struct.unpack(">ii", rec_header)
            record = f.read(length_words * 2)
            geometries.append(_read_geometry(record))
    names: List[str] = []
    rows: List[List[Any]] = []
    dbf_path = base + ".dbf"
    if os.path.exists(dbf_path):
        names, rows = _read_dbf(dbf_path)
    features = []
    for i, geom in enumerate(geometries):
        attributes = (
            dict(zip(names, rows[i])) if i < len(rows) else {}
        )
        features.append(Feature(geom, attributes))
    return features
