"""Refinement of hotspot products with stSPARQL updates.

Paper §4, scenario 2: "the thematic accuracy of these shapefiles is
improved automatically with an additional post processing step that
refines them, transforming them into RDF and comparing them with relevant
geospatial data also available in RDF.  Through this refinement step we
isolate parts of the geometries of the hotspots that are inconsistent
with the geospatial data available, but have been classified as hotspots
earlier due to the low spatial resolution of the MSG/SEVIRI sensor."

Three update steps, each a literal stSPARQL statement (the demo shows the
user exactly these):

1. **delete-in-sea** — hotspots disjoint from the landmass are sensor
   artifacts (sun glint); every triple about them is removed;
2. **clip-to-coast** — hotspots straddling the coastline have their
   geometry replaced by its intersection with the landmass;
3. **delete-in-lakes** — hotspots falling inside inland water bodies are
   removed.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.eo.linkeddata import GreeceLikeWorld
from repro.eo.seviri import SeviriScene
from repro.geometry import Geometry, Polygon
from repro.geometry.multi import MultiPolygon, collect, flatten
from repro.geometry.overlay import union_all
from repro.ingest.metadata import NOA_PREFIXES
from repro.strabon import StrabonStore, geometry_literal, literal_geometry
from repro.strabon.strdf import is_geometry_literal


class RefinementReport:
    """Per-step effect of one refinement run."""

    def __init__(self):
        self.steps: List[Tuple[str, int]] = []
        self.hotspots_before = 0
        self.hotspots_after = 0
        self.area_before = 0.0
        self.area_after = 0.0

    def step_count(self, name: str) -> int:
        for step, count in self.steps:
            if step == name:
                return count
        raise KeyError(name)

    def __repr__(self) -> str:
        return (
            f"<RefinementReport {self.hotspots_before}->"
            f"{self.hotspots_after} hotspots, "
            f"area {self.area_before:.4f}->{self.area_after:.4f}>"
        )


class Refiner:
    """Applies the three-step stSPARQL refinement to a Strabon store."""

    def __init__(self, store: StrabonStore, world: GreeceLikeWorld):
        self.store = store
        self.world = world
        self._land_wkt = geometry_literal(world.land).lexical
        lakes = world.water_bodies()
        self._lakes_wkt = (
            geometry_literal(
                MultiPolygon(lakes, srid=4326)
            ).lexical
            if lakes
            else None
        )

    # -- the literal statements (shown to the demo user) ------------------------

    def statements(self) -> List[Tuple[str, str]]:
        """The (name, stSPARQL text) pairs executed by :meth:`apply`."""
        land = f'"{self._land_wkt}"^^strdf:WKT'
        steps = [
            (
                "delete-in-sea",
                NOA_PREFIXES
                + "DELETE { ?h ?p ?o }\n"
                "WHERE {\n"
                "  ?h a noa:Hotspot ; noa:hasGeometry ?g ; ?p ?o .\n"
                f"  FILTER(!strdf:intersects(?g, {land}))\n"
                "}",
            ),
            (
                "clip-to-coast",
                NOA_PREFIXES
                + "DELETE { ?h noa:hasGeometry ?g }\n"
                "INSERT { ?h noa:hasGeometry ?clipped }\n"
                "WHERE {\n"
                "  ?h a noa:Hotspot ; noa:hasGeometry ?g .\n"
                f"  FILTER(strdf:intersects(?g, {land}))\n"
                f"  FILTER(!strdf:within(?g, {land}))\n"
                f"  BIND(strdf:intersection(?g, {land}) AS ?clipped)\n"
                "}",
            ),
        ]
        if self._lakes_wkt is not None:
            lakes = f'"{self._lakes_wkt}"^^strdf:WKT'
            steps.append(
                (
                    "delete-in-lakes",
                    NOA_PREFIXES
                    + "DELETE { ?h ?p ?o }\n"
                    "WHERE {\n"
                    "  ?h a noa:Hotspot ; noa:hasGeometry ?g ; ?p ?o .\n"
                    f"  FILTER(strdf:within(?g, {lakes}))\n"
                    "}",
                )
            )
        return steps

    # -- execution -----------------------------------------------------------------

    def hotspot_geometries(self) -> List[Geometry]:
        """Current hotspot geometries in the store."""
        result = self.store.query(
            NOA_PREFIXES
            + "SELECT ?g WHERE { ?h a noa:Hotspot ; noa:hasGeometry ?g }"
        )
        geoms = []
        for (lit,) in result.rows():
            if lit is not None and is_geometry_literal(lit):
                geoms.append(literal_geometry(lit))
        return geoms

    def _hotspot_count(self) -> int:
        result = self.store.query(
            NOA_PREFIXES
            + "SELECT (count(*) AS ?n) WHERE { ?h a noa:Hotspot }"
        )
        return int(result.values()[0][0])

    def _total_area(self) -> float:
        return float(
            sum(g.area for g in self.hotspot_geometries())
        )

    def apply(self) -> RefinementReport:
        """Run all steps; returns the per-step report."""
        report = RefinementReport()
        report.hotspots_before = self._hotspot_count()
        report.area_before = self._total_area()
        for name, statement in self.statements():
            affected = self.store.update(statement)
            report.steps.append((name, affected))
        report.hotspots_after = self._hotspot_count()
        report.area_after = self._total_area()
        return report


# ---------------------------------------------------------------------------
# scoring against the simulator's ground truth
# ---------------------------------------------------------------------------


def truth_region(
    scene: SeviriScene, world: GreeceLikeWorld
) -> Geometry:
    """The true burning area: fire-pixel footprints clipped to the
    landmass (the 'higher-resolution truth' the sensor cannot see)."""
    from repro.geometry.gridpoly import mask_to_geometry

    lon0, lat0, lon1, lat1 = scene.spec.window
    h, w = scene.shape

    def corner(row: int, col: int):
        return (
            lon0 + col * (lon1 - lon0) / w,
            lat1 - row * (lat1 - lat0) / h,
        )

    region = mask_to_geometry(scene.fire_mask, corner, srid=4326)
    return region.intersection(world.land.with_srid(4326))


def score_hotspots(
    hotspots: List[Geometry],
    truth: Geometry,
) -> Dict[str, float]:
    """Area-based precision/recall/F1 of hotspot polygons vs the truth."""
    predicted_polys = [
        g
        for h in hotspots
        for g in flatten(h)
        if isinstance(g, Polygon)
    ]
    merged = union_all(predicted_polys)
    predicted = collect(
        [m.with_srid(4326) for m in merged], srid=4326
    )
    predicted_area = sum(g.area for g in flatten(predicted))
    truth_area = sum(g.area for g in flatten(truth))
    if predicted_area == 0.0 and truth_area == 0.0:
        return {"precision": 1.0, "recall": 1.0, "f1": 1.0}
    intersection = predicted.intersection(truth.with_srid(4326))
    hit_area = sum(g.area for g in flatten(intersection))
    precision = hit_area / predicted_area if predicted_area > 0 else 0.0
    recall = hit_area / truth_area if truth_area > 0 else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall > 0
        else 0.0
    )
    return {"precision": precision, "recall": recall, "f1": f1}
