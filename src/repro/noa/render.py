"""Fire-map rendering: SVG output for the rapid-mapping service.

The demo's final step is "the visualization of the results"; this module
turns a :class:`~repro.noa.mapping.FireMap` (plus the coastline backdrop)
into a standalone SVG document — the deliverable a rapid-mapping duty
officer would actually ship.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.eo.linkeddata import GreeceLikeWorld
from repro.geometry import Envelope, Geometry, from_wkt
from repro.geometry.linestring import LineString
from repro.geometry.multi import flatten
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.noa.mapping import FireMap

#: Layer draw order and styling (fill, stroke, point radius).
_LAYER_STYLE = {
    "burning_landcover": ("#9acD7e", "#5a8a4a", 0.0),
    "threatened_roads": ("none", "#888888", 0.0),
    "hotspots": ("#ff3b30", "#99140c", 0.0),
    "affected_towns": ("#3b66ff", "#1c3a99", 5.0),
    "nearby_sites": ("#b06cd9", "#6a3a8a", 4.0),
}


class SVGMapRenderer:
    """Renders fire maps to SVG strings."""

    def __init__(
        self,
        world: Optional[GreeceLikeWorld] = None,
        width: int = 800,
        margin: float = 0.3,
    ):
        self.world = world
        self.width = width
        self.margin = margin

    def render(self, fire_map: FireMap) -> str:
        """Return a standalone SVG document for the map."""
        geometries = self._collect(fire_map)
        env = Envelope.empty()
        for _, geom, _ in geometries:
            env = env.union(geom.envelope)
        if env.is_empty:
            env = Envelope(20.0, 34.0, 28.0, 42.0)
        env = env.expanded(self.margin)
        height = max(
            1, int(self.width * env.height / max(env.width, 1e-9))
        )
        to_px = self._projector(env, self.width, height)
        parts: List[str] = [
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{height}" '
            f'viewBox="0 0 {self.width} {height}">',
            f'<rect width="{self.width}" height="{height}" fill="#cfe8f7"/>',
        ]
        if self.world is not None:
            for poly in flatten(self.world.land):
                parts.append(
                    self._polygon_svg(
                        poly, to_px, fill="#f2ead8", stroke="#b0a890"
                    )
                )
        for layer_name, geom, label in geometries:
            fill, stroke, radius = _LAYER_STYLE.get(
                layer_name, ("#cccccc", "#666666", 3.0)
            )
            parts.append(
                self._geometry_svg(geom, to_px, fill, stroke, radius, label)
            )
        parts.append(self._title_svg(fire_map.title))
        parts.append("</svg>")
        return "\n".join(parts)

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _projector(env: Envelope, width: int, height: int):
        def to_px(x: float, y: float) -> Tuple[float, float]:
            px = (x - env.minx) / env.width * width
            py = (env.maxy - y) / env.height * height
            return (round(px, 2), round(py, 2))

        return to_px

    def _collect(self, fire_map: FireMap):
        ordered = []
        for layer_name in _LAYER_STYLE:
            for feature in fire_map.layer(layer_name):
                wkt = feature.get("wkt")
                if not wkt:
                    continue
                label = (
                    feature.get("name")
                    or feature.get("kind")
                    or ""
                )
                ordered.append((layer_name, from_wkt(wkt), str(label)))
        return ordered

    def _geometry_svg(
        self, geom: Geometry, to_px, fill, stroke, radius, label
    ) -> str:
        parts = []
        for atom in flatten(geom):
            if isinstance(atom, Point):
                x, y = to_px(atom.x, atom.y)
                parts.append(
                    f'<circle cx="{x}" cy="{y}" r="{radius or 3}" '
                    f'fill="{fill}" stroke="{stroke}"/>'
                )
                if label:
                    parts.append(
                        f'<text x="{x + 6}" y="{y - 4}" font-size="11" '
                        f'fill="#333">{_escape(label)}</text>'
                    )
            elif isinstance(atom, Polygon):
                parts.append(
                    self._polygon_svg(atom, to_px, fill, stroke)
                )
            elif isinstance(atom, LineString):
                points = " ".join(
                    f"{x},{y}"
                    for x, y in (to_px(cx, cy) for cx, cy in atom.coords())
                )
                parts.append(
                    f'<polyline points="{points}" fill="none" '
                    f'stroke="{stroke}" stroke-width="2" '
                    'stroke-dasharray="6,3"/>'
                )
        return "\n".join(parts)

    @staticmethod
    def _polygon_svg(poly: Polygon, to_px, fill, stroke) -> str:
        def ring_path(ring) -> str:
            pts = [to_px(x, y) for x, y in ring.closed_coords()]
            head = f"M {pts[0][0]} {pts[0][1]} "
            body = " ".join(f"L {x} {y}" for x, y in pts[1:])
            return head + body + " Z"

        path = " ".join(ring_path(r) for r in poly.rings())
        return (
            f'<path d="{path}" fill="{fill}" stroke="{stroke}" '
            'fill-rule="evenodd" fill-opacity="0.75"/>'
        )

    def _title_svg(self, title: str) -> str:
        return (
            f'<text x="12" y="22" font-size="16" font-weight="bold" '
            f'fill="#222">{_escape(title)}</text>'
        )


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def render_fire_map_svg(
    fire_map: FireMap,
    world: Optional[GreeceLikeWorld] = None,
    width: int = 800,
) -> str:
    """One-call convenience wrapper around :class:`SVGMapRenderer`."""
    return SVGMapRenderer(world, width=width).render(fire_map)
