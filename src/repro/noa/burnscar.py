"""Burn-scar mapping: a second NOA-style chain over the same machinery.

The paper argues the vault → SciQL → Strabon pipeline is *generic* —
one database tier serving many EO applications.  This module is the
proof: burn-scar mapping (NOA's other operational fire product, the
damage assessment run *after* a fire season) reuses the whole of
:class:`~repro.noa.chain.ProcessingChain` — stage envelopes with
retry/deadline/fault injection, ``run_batch`` pipelining with the single
merged RDF bulk emit, vectorisation and shapefile output — and differs
only in its classifier registry and detection identity.

Physics of the synthetic scenes (:mod:`repro.eo.seviri`): a burn scar
is recently burnt low-albedo land running ~5-8 K hot in the 10.8 µm
background with a *small* 3.9-10.8 µm difference — the opposite spectral
shape of an active fire front (huge 3.9 µm anomaly), which is why the
two chains need different classifiers but share everything else.
"""

from __future__ import annotations

import numpy as np

from repro.eo.seviri import SCAR_T108_MAX_K
from repro.mdb import Database
from repro.mdb.sciql import SciArray
from repro.noa.chain import ProcessingChain
from repro.noa.classification import ensure_mask_attribute

#: 10.8um absolute threshold (K) of the static scar test (tuned to the
#: simulator's noon default: land background ~301 K, scars >= ~306 K).
STATIC_SCAR_T108_K = 304.5
#: Background percentile the relative test estimates land temperature
#: from, taken over the warm (above-scene-mean) pixel population so a
#: mostly-sea scene cannot drag the estimate into the sea temperatures.
SCAR_BACKGROUND_PCT = 75.0
#: 10.8um anomaly (K) above the background estimate that makes a scar.
SCAR_DELTA_K = 3.0
#: Scars stay spectrally flat: 3.9-10.8um difference below this bound
#: (active fire fronts are far above it and must not be mapped).
SCAR_DIFF_MAX_K = 5.0

#: The SciQL statement template of the scar classifiers.
SCAR_SCIQL_TEMPLATE = (
    "UPDATE {array} SET burnscar = 1 "
    "WHERE t108 > {t108} AND t039 - t108 < {diff}"
)


def scar_background(t108: np.ndarray) -> float:
    """Estimate the land background temperature of a 10.8 µm plane.

    Sea and cloud pixels sit well below land; restricting the percentile
    to the above-mean population keeps the estimate on land even when
    the scene is mostly sea (a Greek coastal frame is ~3/4 water).
    """
    plane = np.asarray(t108, dtype=np.float64)
    warm = plane[plane > plane.mean()]
    if warm.size == 0:  # constant plane — degenerate but well-defined
        warm = plane.reshape(-1)
    return float(np.percentile(warm, SCAR_BACKGROUND_PCT))


def static_scar_classifier(
    array: SciArray,
    db: Database,
    t108_threshold: float = STATIC_SCAR_T108_K,
    diff_max: float = SCAR_DIFF_MAX_K,
) -> np.ndarray:
    """Fixed-threshold scar test as a declarative SciQL UPDATE."""
    ensure_mask_attribute(array, "burnscar")
    db.execute(
        SCAR_SCIQL_TEMPLATE.format(
            array=array.name, t108=t108_threshold, diff=diff_max
        )
    )
    return array.attribute("burnscar") > 0.5


def relative_scar_classifier(
    array: SciArray,
    db: Database,
    delta: float = SCAR_DELTA_K,
    diff_max: float = SCAR_DIFF_MAX_K,
) -> np.ndarray:
    """Background-relative scar test (robust to acquisition time).

    The land background temperature is estimated with
    :func:`scar_background` (a high percentile of the warm pixel
    population), the threshold follows the diurnal cycle automatically,
    and the UPDATE itself still runs through the SciQL kernel path.
    """
    ensure_mask_attribute(array, "burnscar")
    background = scar_background(array.attribute("t108"))
    db.execute(
        SCAR_SCIQL_TEMPLATE.format(
            array=array.name, t108=background + delta, diff=diff_max
        )
    )
    return array.attribute("burnscar") > 0.5


#: Submodule registry of the burn-scar chain.
BURNSCAR_CLASSIFIERS = {
    "static": static_scar_classifier,
    "relative": relative_scar_classifier,
}


class BurnScarChain(ProcessingChain):
    """Burn-scar mapping through the generic chain machinery."""

    registry = BURNSCAR_CLASSIFIERS
    detection_kind = "burnscar"
    detection_class = "BurnScar"
    derived_suffix = "burnscars"

    def __init__(
        self,
        ingestor,
        classifier: str = "relative",
        crop_window=None,
        min_pixels: int = 4,
        retry=None,
        deadline=None,
    ):
        # Scars are broad regions; the min_pixels floor drops the odd
        # warm speck that clears the relative threshold.
        super().__init__(
            ingestor,
            classifier=classifier,
            crop_window=crop_window,
            min_pixels=min_pixels,
            retry=retry,
            deadline=deadline,
        )

    def _confidence(
        self,
        t039_pix: np.ndarray,
        t108_pix: np.ndarray,
        array: SciArray,
    ) -> float:
        """Severity: mean 10.8 µm anomaly over the background estimate,
        scaled by the simulator's maximum scar signal."""
        anomaly = float(t108_pix.mean()) - scar_background(
            array.attribute("t108")
        )
        return float(np.clip(anomaly / SCAR_T108_MAX_K, 0.05, 1.0))
