"""The NOA hotspot processing chain.

Paper §4: "The processing chain utilized by the NOA fire monitoring
service consists of the following modules: (a) ingestion, (b) cropping,
(c) georeference, (d) classification, and (e) generation of shapefiles
containing the geometries of hotspots."

Each module is a timed stage of :class:`ProcessingChain`; pixels flow
through a SciQL array (crop = array slicing, classification = a SciQL
UPDATE or the contextual window operator), and the output is a Level-2
product: hotspot polygons with confidences, optionally written as a real
shapefile, plus stRDF metadata for the catalog.
"""

from __future__ import annotations

import os
import time
from contextlib import nullcontext
from typing import (
    Any,
    Callable,
    ContextManager,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro import faults, obs, parallel, resilience

from repro.eo.products import ProcessingLevel, Product
from repro.geometry import Polygon
from repro.geometry.gridpoly import cells_to_geometry
from repro.geometry.multi import MultiPolygon, collect, flatten
from repro.geometry.overlay import union_all
from repro.geometry.srs import register_affine_grid
from repro.ingest.harvest import Ingestor
from repro.ingest.metadata import product_to_rdf, product_uri
from repro.mdb.sciql import SciArray
from repro.noa.classification import CLASSIFIERS
from repro.noa.shapefile import Feature, write_shapefile
from repro.rdf import Graph, Literal, URIRef
from repro.rdf.namespace import NOA, RDF, XSD
from repro.strabon.strdf import geometry_literal

_TYPE = URIRef(str(RDF) + "type")

#: SRID block reserved for per-product sensor grids.
_GRID_SRID_BASE = 910000


class Hotspot:
    """One detected hotspot: a polygon with detection attributes."""

    def __init__(
        self,
        index: int,
        geometry: Polygon | MultiPolygon,
        confidence: float,
        pixel_count: int,
        product_id: str,
        kind: str = "hotspot",
    ):
        self.index = index
        self.geometry = geometry
        self.confidence = confidence
        self.pixel_count = pixel_count
        self.product_id = product_id
        # URI segment of the detection: "hotspot" for the fire chain,
        # "burnscar" for the burn-scar mapping chain, etc.
        self.kind = kind

    @property
    def uri(self) -> URIRef:
        return URIRef(
            f"{NOA}{self.kind}/{self.product_id}/{self.index}"
        )

    def __repr__(self) -> str:
        return (
            f"<Hotspot #{self.index} px={self.pixel_count} "
            f"conf={self.confidence:.2f}>"
        )


class GeoGrid:
    """Georeference of a (possibly cropped) scene array."""

    def __init__(
        self,
        window: Tuple[float, float, float, float],
        full_shape: Tuple[int, int],
        row_range: Tuple[int, int],
        col_range: Tuple[int, int],
        srid: int,
    ):
        self.window = window
        self.full_shape = full_shape
        self.row_range = row_range
        self.col_range = col_range
        self.srid = srid

    def corner_to_lonlat(self, row: int, col: int) -> Tuple[float, float]:
        """World position of the lattice corner (row, col) of the *full*
        grid (row 0 / col 0 = north-west corner)."""
        lon0, lat0, lon1, lat1 = self.window
        h, w = self.full_shape
        return (
            lon0 + col * (lon1 - lon0) / w,
            lat1 - row * (lat1 - lat0) / h,
        )

    def pixel_polygon(self, row: int, col: int) -> Polygon:
        nw = self.corner_to_lonlat(row, col)
        se = self.corner_to_lonlat(row + 1, col + 1)
        return Polygon(
            [(nw[0], se[1]), (se[0], se[1]), (se[0], nw[1]), (nw[0], nw[1])],
            srid=4326,
        )


class ChainFailure:
    """One acquisition that failed inside a batch.

    :meth:`ProcessingChain.run_batch` isolates per-acquisition errors:
    a failure is returned in the acquisition's result slot instead of
    aborting the whole batch (and with it every other acquisition's RDF
    emit).  The original exception is preserved for the caller to
    re-raise or log.
    """

    __slots__ = ("path", "error")

    def __init__(self, path: str, error: BaseException):
        self.path = path
        self.error = error

    @property
    def ok(self) -> bool:
        return False

    def __repr__(self) -> str:
        return (
            f"<ChainFailure {os.path.basename(self.path)!r} "
            f"{type(self.error).__name__}: {self.error}>"
        )


class ChainResult:
    """Everything a chain run produced, with per-stage timings."""

    def __init__(self, product: Product, classifier: str):
        self.source_product = product
        self.classifier = classifier
        self.derived_product: Optional[Product] = None
        self.hotspots: List[Hotspot] = []
        self.hotspot_mask: Optional[np.ndarray] = None
        self.grid: Optional[GeoGrid] = None
        self.shapefile_path: Optional[str] = None
        self.rdf: Graph = Graph()
        self.timings: Dict[str, float] = {}

    @property
    def ok(self) -> bool:
        return True

    @property
    def total_seconds(self) -> float:
        return sum(self.timings.values())

    def hotspot_union(self) -> Polygon | MultiPolygon:
        """All hotspot geometry as one (multi)polygon."""
        geoms = [g for h in self.hotspots for g in flatten(h.geometry)]
        merged = union_all([g for g in geoms if isinstance(g, Polygon)])
        return collect([m.with_srid(4326) for m in merged], srid=4326)

    def __repr__(self) -> str:
        return (
            f"<ChainResult {self.classifier} hotspots={len(self.hotspots)} "
            f"{self.total_seconds * 1000:.1f}ms>"
        )


class ProcessingChain:
    """The five-module NOA chain over the TELEIOS database tier.

    The class doubles as the *generic* application-chain machinery:
    stages with retry/deadline/fault envelopes, batch pipelining with a
    single merged RDF emit, and detection vectorisation.  A second
    NOA-style application (see :class:`repro.noa.burnscar.BurnScarChain`)
    subclasses it and overrides only the hooks below — the classifier
    registry, the detection identity, and the confidence model.
    """

    #: Classifier-submodule registry this chain validates against.
    registry: Dict[str, Callable] = CLASSIFIERS
    #: URI segment of emitted detections (``noa:<kind>/<product>/<i>``).
    detection_kind = "hotspot"
    #: RDF class (``noa:`` local name) of emitted detections.
    detection_class = "Hotspot"
    #: Derived-product id suffix (``<product>_<suffix>_<classifier>``).
    derived_suffix = "hotspots"

    def __init__(
        self,
        ingestor: Ingestor,
        classifier: str = "static",
        crop_window: Optional[Tuple[float, float, float, float]] = None,
        min_pixels: int = 1,
        retry: Optional[resilience.RetryPolicy] = None,
        deadline: Optional[float] = None,
    ):
        if classifier not in self.registry:
            raise ValueError(
                f"unknown classifier {classifier!r}; "
                f"have {sorted(self.registry)}"
            )
        self.ingestor = ingestor
        self.classifier = classifier
        self.crop_window = crop_window
        self.min_pixels = min_pixels
        # Resilience: every stage is retried under `retry` on transient
        # failures (stages are idempotent — see _stage), and `deadline`
        # (seconds per acquisition) is checked at each stage boundary.
        self.retry = retry or resilience.DEFAULT_RETRY
        self.deadline = deadline
        self._grid_srid_counter = 0

    # -- the chain ------------------------------------------------------------

    def run(
        self, path: str, output_dir: Optional[str] = None
    ) -> ChainResult:
        """Execute modules (a)–(e) on one archive file."""
        return self._execute(path, output_dir)

    def run_batch(
        self,
        paths: Sequence[str],
        output_dir: Optional[str] = None,
        workers: Optional[int] = None,
        scheduler: Optional["parallel.TaskScheduler"] = None,
    ) -> List[ChainResult]:
        """Execute the chain over a whole acquisition series.

        This is the every-5-minutes batch shape of the NOA service: each
        acquisition's crop→georeference→classify→vectorize pipeline runs
        as one task on the shared worker pool, stages touching shared
        state (vault, catalog, SRS registry, product table) serialise on
        the database lock, and all stRDF output — product metadata and
        hotspots alike — is emitted through a single
        :meth:`StrabonStore.bulk` context, so backend rows batch into
        one insert and the spatial index is STR-rebuilt once instead of
        once per acquisition.  With one worker (the ``REPRO_WORKERS``
        default) this is exactly ``[self.run(p) for p in paths]``.

        Results are returned in ``paths`` order and are identical to
        sequential :meth:`run` calls (hotspots, confidences, RDF).

        Failures are *isolated*: an acquisition whose chain raises gets
        a :class:`ChainFailure` in its result slot — the batch is not
        aborted, the remaining acquisitions' RDF still reaches the bulk
        emit, and the ``noa.batch.ok`` / ``noa.batch.failed`` counters
        record the split.  (Single :meth:`run` calls still raise.)

        Safe to call concurrently, including against the *shared*
        scheduler from threads that are themselves pool workers: the
        scheduler's producer-helps draining means a full task queue is
        worked off rather than blocked on (no cross-pool circular wait),
        and the store's bulk flush is serialised by its own lock, so
        overlapping batch windows cannot double-emit buffered rows.
        """
        paths = list(paths)
        sched = parallel.get_scheduler(scheduler, workers)
        with obs.span("noa.run_batch", acquisitions=len(paths)):
            if sched.workers == 1 or len(paths) <= 1:
                results: List[ChainResult | ChainFailure] = [
                    self._guarded(path, output_dir) for path in paths
                ]
            else:
                store = self.ingestor.store
                lock = self.ingestor.db.lock
                with store.bulk():
                    results = sched.map(
                        lambda path: self._guarded(
                            path, output_dir, emit=False, lock=lock
                        ),
                        paths,
                    )
                    for result in results:
                        if isinstance(result, ChainResult):
                            store.load_graph(result.rdf)
            ok = sum(1 for r in results if isinstance(r, ChainResult))
            obs.counter("noa.batch.ok").inc(ok)
            obs.counter("noa.batch.failed").inc(len(results) - ok)
        return results

    def _guarded(
        self,
        path: str,
        output_dir: Optional[str] = None,
        emit: bool = True,
        lock: Optional[ContextManager] = None,
    ) -> "ChainResult | ChainFailure":
        """One batch slot: the chain result, or the captured failure."""
        try:
            return self._execute(path, output_dir, emit=emit, lock=lock)
        except Exception as exc:  # noqa: BLE001 — isolated per acquisition
            obs.counter("noa.chain.errors").inc()
            return ChainFailure(path, exc)

    def _stage(
        self,
        name: str,
        timings: Dict[str, float],
        deadline: Optional[resilience.Deadline],
        fn: Callable[[], Any],
        guard: Optional[ContextManager] = None,
        **tags: Any,
    ) -> Any:
        """Run one chain module with the full resilience envelope.

        The deadline is checked at the stage *boundary* (soft timeout:
        a stage in flight is never interrupted), the ``chain.<name>``
        fault-injection point fires per attempt, and transient failures
        are retried under the chain's policy.  Each attempt re-acquires
        ``guard`` so a backoff sleep never holds the database lock.
        Stage bodies are idempotent — ingestion upserts, cropping
        re-registers the crop array, SciQL attribute writes are
        write-then-swap — so a retried stage recomputes instead of
        corrupting.
        """
        if deadline is not None:
            deadline.check(f"chain.{name}")
        t0 = time.perf_counter()

        def attempt() -> Any:
            with (guard if guard is not None else nullcontext()):
                faults.maybe_fail(f"chain.{name}")
                return fn()

        try:
            with obs.span(f"noa.stage.{name}", **tags):
                return resilience.call_with_retry(
                    attempt, self.retry, label=f"chain.{name}"
                )
        finally:
            timings[name] = time.perf_counter() - t0

    def _execute(
        self,
        path: str,
        output_dir: Optional[str] = None,
        emit: bool = True,
        lock: Optional[ContextManager] = None,
    ) -> ChainResult:
        """One chain execution.  ``lock`` (batch mode) guards the stages
        that mutate shared tiers; ``emit=False`` defers the stRDF load so
        the batch caller can merge every result into one bulk emit."""
        guard: ContextManager = lock if lock is not None else nullcontext()
        timings: Dict[str, float] = {}
        deadline = (
            resilience.Deadline(self.deadline)
            if self.deadline is not None
            else resilience.active_deadline()
        )

        # (a) ingestion — vault cataloging + array materialisation.
        def ingest() -> Tuple[Product, SciArray]:
            product = self.ingestor.ingest_file(path, lazy=True)
            return product, self.ingestor.materialize_array(product)

        product, array = self._stage(
            "ingestion", timings, deadline, ingest, guard, path=path
        )
        result = ChainResult(product, self.classifier)

        header_window = self._product_window(product)
        full_shape = array.shape

        # (b) cropping — SciQL array slicing on the area of interest.
        array, row_range, col_range = self._stage(
            "cropping", timings, deadline,
            lambda: self._crop(array, header_window, full_shape),
            guard, path=path,
        )

        # (c) georeference — register the sensor grid CRS.
        grid = self._stage(
            "georeference", timings, deadline,
            lambda: self._georeference(
                product, header_window, full_shape, row_range, col_range
            ),
            guard, path=path,
        )
        result.grid = grid

        # (d) classification — the selected submodule fills 'hotspot'.
        # Runs unlocked: submodules own their acquisition's array, and
        # SciQL UPDATEs serialise inside Database.execute.
        mask = self._stage(
            "classification", timings, deadline,
            lambda: self.registry[self.classifier](array, self.ingestor.db),
            path=path, classifier=self.classifier,
        )
        result.hotspot_mask = mask

        # (e) shapefile generation — components → polygons → .shp + RDF.
        def shapefile() -> None:
            hotspots = self._vectorize(array, mask, grid, product)
            result.hotspots = hotspots
            derived = product.derive(
                f"{product.product_id}_{self.derived_suffix}_"
                f"{self.classifier}",
                ProcessingLevel.L2_DERIVED,
                metadata={"hasClassifier": self.classifier},
            )
            result.derived_product = derived
            if output_dir is not None:
                os.makedirs(output_dir, exist_ok=True)
                base = os.path.join(output_dir, derived.product_id)
                write_shapefile(base, self._features(hotspots))
                result.shapefile_path = base + ".shp"
                derived.path = result.shapefile_path
            result.rdf = self._emit_rdf(derived, hotspots)
            if emit:
                self.ingestor.store.load_graph(result.rdf)

        self._stage("shapefile", timings, deadline, shapefile, path=path)

        result.timings = timings
        return result

    # -- modules ------------------------------------------------------------------

    @staticmethod
    def _product_window(
        product: Product,
    ) -> Tuple[float, float, float, float]:
        env = product.envelope
        return (env.minx, env.miny, env.maxx, env.maxy)

    def _crop(
        self,
        array: SciArray,
        window: Tuple[float, float, float, float],
        full_shape: Tuple[int, int],
    ) -> Tuple[SciArray, Tuple[int, int], Tuple[int, int]]:
        h, w = full_shape
        if self.crop_window is None:
            return array, (0, h), (0, w)
        lon0, lat0, lon1, lat1 = window
        clon0, clat0, clon1, clat1 = self.crop_window
        col0 = max(0, int((clon0 - lon0) / (lon1 - lon0) * w))
        col1 = min(w, int(np.ceil((clon1 - lon0) / (lon1 - lon0) * w)))
        row0 = max(0, int((lat1 - clat1) / (lat1 - lat0) * h))
        row1 = min(h, int(np.ceil((lat1 - clat0) / (lat1 - lat0) * h)))
        if col1 <= col0 or row1 <= row0:
            raise ValueError(
                f"crop window {self.crop_window} misses product window "
                f"{window}"
            )
        cropped = array.slice(row=(row0, row1), col=(col0, col1))
        # Register the crop so SciQL statements can address it by name.
        cropped.name = f"{array.name}_crop"
        catalog = self.ingestor.db.catalog
        if catalog.has_array(cropped.name):
            catalog.drop_array(cropped.name)
        catalog.add_array(cropped)
        return cropped, (row0, row1), (col0, col1)

    def _georeference(
        self,
        product: Product,
        window: Tuple[float, float, float, float],
        full_shape: Tuple[int, int],
        row_range: Tuple[int, int],
        col_range: Tuple[int, int],
    ) -> GeoGrid:
        lon0, lat0, lon1, lat1 = window
        h, w = full_shape
        self._grid_srid_counter += 1
        srid = _GRID_SRID_BASE + self._grid_srid_counter
        register_affine_grid(
            srid,
            f"grid-{product.product_id}",
            origin_lon=lon0,
            origin_lat=lat1,
            lon_per_col=(lon1 - lon0) / w,
            lat_per_row=(lat1 - lat0) / h,
        )
        return GeoGrid(window, full_shape, row_range, col_range, srid)

    def _vectorize(
        self,
        array: SciArray,
        mask: np.ndarray,
        grid: GeoGrid,
        product: Product,
    ) -> List[Hotspot]:
        components = _connected_components(mask)
        t039 = array.attribute("t039")
        t108 = array.attribute("t108")
        hotspots: List[Hotspot] = []
        row_off = grid.row_range[0]
        col_off = grid.col_range[0]
        for index, pixels in enumerate(components):
            if len(pixels) < self.min_pixels:
                continue
            # Exact outline of the pixel set via grid boundary tracing
            # (robust against the fully-degenerate shared-edge case).
            geometry = cells_to_geometry(
                [(row_off + r, col_off + c) for r, c in pixels],
                grid.corner_to_lonlat,
                srid=4326,
            )
            pix = np.asarray(pixels, dtype=np.intp)
            confidence = self._confidence(
                t039[pix[:, 0], pix[:, 1]].astype(np.float64),
                t108[pix[:, 0], pix[:, 1]].astype(np.float64),
                array,
            )
            hotspots.append(
                Hotspot(
                    index=index,
                    geometry=geometry,
                    confidence=confidence,
                    pixel_count=len(pixels),
                    product_id=product.product_id,
                    kind=self.detection_kind,
                )
            )
        return hotspots

    def _confidence(
        self,
        t039_pix: np.ndarray,
        t108_pix: np.ndarray,
        array: SciArray,
    ) -> float:
        """Detection confidence from the member-pixel band values.

        The fire model: mean 3.9-10.8 µm difference scaled into
        [0.05, 1.0].  Subclasses override with their own physics.
        """
        diffs = t039_pix - t108_pix
        return float(np.clip(diffs.mean() / 25.0, 0.05, 1.0))

    @staticmethod
    def _features(hotspots: List[Hotspot]) -> List[Feature]:
        return [
            Feature(
                h.geometry,
                {
                    "id": h.index,
                    "conf": round(h.confidence, 4),
                    "pixels": h.pixel_count,
                },
            )
            for h in hotspots
        ]

    def _emit_rdf(
        self, derived: Product, hotspots: List[Hotspot]
    ) -> Graph:
        g = product_to_rdf(derived)
        prod_node = product_uri(derived)
        for h in hotspots:
            node = h.uri
            g.add(
                (node, _TYPE, URIRef(str(NOA) + self.detection_class))
            )
            g.add(
                (node, URIRef(str(NOA) + "hasGeometry"),
                 geometry_literal(h.geometry))
            )
            g.add(
                (
                    node,
                    URIRef(str(NOA) + "hasConfidence"),
                    Literal(h.confidence),
                )
            )
            g.add(
                (
                    node,
                    URIRef(str(NOA) + "hasPixelCount"),
                    Literal(h.pixel_count),
                )
            )
            g.add(
                (node, URIRef(str(NOA) + "isProducedBy"), prod_node)
            )
            g.add(
                (
                    node,
                    URIRef(str(NOA) + "hasAcquisitionTime"),
                    Literal(
                        derived.acquired.isoformat(),
                        datatype=str(XSD) + "dateTime",
                    ),
                )
            )
        return g


def _connected_components(
    mask: np.ndarray,
) -> List[List[Tuple[int, int]]]:
    """4-connected components of a boolean mask.

    Labeling runs over the dense list of nonzero pixels with neighbor
    ids precomputed by numpy fancy indexing: the stack holds plain int
    pixel ids, so no per-neighbor coordinate tuples, bounds checks or
    ndarray scalar reads happen inside the fill loop.
    """
    rows, cols = np.nonzero(mask)
    n = rows.size
    if n == 0:
        return []
    h, w = mask.shape
    index = np.full((h, w), -1, dtype=np.intp)
    index[rows, cols] = np.arange(n, dtype=np.intp)
    # Neighbor pixel ids in each direction (-1 at the grid edge or where
    # the neighbor is off-mask).  Clamping keeps the gather in bounds;
    # np.where masks the clamped lanes out.
    down = np.where(rows + 1 < h, index[np.minimum(rows + 1, h - 1), cols], -1)
    up = np.where(rows > 0, index[np.maximum(rows - 1, 0), cols], -1)
    right = np.where(cols + 1 < w, index[rows, np.minimum(cols + 1, w - 1)], -1)
    left = np.where(cols > 0, index[rows, np.maximum(cols - 1, 0)], -1)
    neighbors = np.stack((down, up, right, left), axis=1).tolist()
    coords = list(zip(rows.tolist(), cols.tolist()))
    seen = bytearray(n)
    components: List[List[Tuple[int, int]]] = []
    for start in range(n):
        if seen[start]:
            continue
        seen[start] = 1
        stack = [start]
        component: List[Tuple[int, int]] = []
        while stack:
            i = stack.pop()
            component.append(coords[i])
            for j in neighbors[i]:
                if j >= 0 and not seen[j]:
                    seen[j] = 1
                    stack.append(j)
        components.append(component)
    return components
