"""The NOA fire-monitoring application (paper §4).

The real-time hotspot detection service of the National Observatory of
Athens, rebuilt on the TELEIOS stack:

* :mod:`repro.noa.chain` — the five-module processing chain (ingestion,
  cropping, georeference, classification, shapefile generation) expressed
  over SciQL arrays;
* :mod:`repro.noa.classification` — the interchangeable classification
  submodules (static thresholds via SciQL, contextual via window
  statistics);
* :mod:`repro.noa.burnscar` — the burn-scar mapping chain: a second
  NOA-style application proving the chain machinery is generic;
* :mod:`repro.noa.refinement` — post-processing that improves thematic
  accuracy with stSPARQL updates against auxiliary geospatial linked data;
* :mod:`repro.noa.mapping` — automatic generation of fire maps enriched
  with open linked data, driven by a series of stSPARQL queries;
* :mod:`repro.noa.shapefile` — a real ESRI shapefile (.shp/.shx/.dbf)
  writer/reader for the chain's output products.
"""

from repro.noa.shapefile import (
    ShapefileError,
    read_shapefile,
    write_shapefile,
)
from repro.noa.classification import (
    CLASSIFIERS,
    contextual_classifier,
    static_threshold_classifier,
)
from repro.noa.chain import (
    ChainFailure,
    ChainResult,
    Hotspot,
    ProcessingChain,
)
from repro.noa.burnscar import (
    BURNSCAR_CLASSIFIERS,
    BurnScarChain,
    relative_scar_classifier,
    scar_background,
    static_scar_classifier,
)
from repro.noa.refinement import RefinementReport, Refiner, score_hotspots
from repro.noa.mapping import FireMap, FireMapBuilder
from repro.noa.render import SVGMapRenderer, render_fire_map_svg

__all__ = [
    "BURNSCAR_CLASSIFIERS",
    "BurnScarChain",
    "CLASSIFIERS",
    "ChainFailure",
    "ChainResult",
    "FireMap",
    "FireMapBuilder",
    "Hotspot",
    "ProcessingChain",
    "RefinementReport",
    "Refiner",
    "SVGMapRenderer",
    "ShapefileError",
    "render_fire_map_svg",
    "contextual_classifier",
    "read_shapefile",
    "relative_scar_classifier",
    "scar_background",
    "score_hotspots",
    "static_scar_classifier",
    "static_threshold_classifier",
    "write_shapefile",
]
