"""Automatic fire-map generation from stSPARQL query series.

Paper §4: "we will demonstrate how the automatic generation of fire maps
enriched with relevant geo-information available as open linked data is
made possible with the use of a series of stSPARQL queries and the
visualization of the results.  This automatic generation is of paramount
importance to NOA, since the creation of such maps in the past has been a
time-consuming manual process."

The :class:`FireMapBuilder` runs one stSPARQL query per map layer:

* ``hotspots``         — the (refined) hotspot polygons and confidences,
* ``affected_towns``   — GeoNames-style towns within a radius of a hotspot,
* ``nearby_sites``     — archaeological sites within a radius (the intro's
  motivating query),
* ``threatened_roads`` — roads crossing the hotspot buffer,
* ``burning_landcover`` — Corine-style land-cover regions intersecting
  hotspots.

The output is a plain-data :class:`FireMap` (layers of features with WKT
geometries) plus a compact GeoJSON-like dict for rendering.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.eo.linkeddata import CLC, DBP, GN, LGD, GreeceLikeWorld
from repro.ingest.metadata import NOA_PREFIXES
from repro.rdf.term import Literal, RDFTerm
from repro.strabon import StrabonStore, literal_geometry
from repro.strabon.strdf import is_geometry_literal

_MAP_PREFIXES = (
    NOA_PREFIXES
    + f"PREFIX gn: <{GN}>\n"
    + f"PREFIX lgd: <{LGD}>\n"
    + f"PREFIX clc: <{CLC}>\n"
    + f"PREFIX dbp: <{DBP}>\n"
)


class FireMap:
    """Layered map features, ready for rendering or export."""

    def __init__(self, title: str):
        self.title = title
        self.layers: Dict[str, List[Dict[str, Any]]] = {}
        self.queries: Dict[str, str] = {}

    def add_layer(
        self, name: str, query: str, features: List[Dict[str, Any]]
    ) -> None:
        self.layers[name] = features
        self.queries[name] = query

    def layer(self, name: str) -> List[Dict[str, Any]]:
        return self.layers.get(name, [])

    def feature_count(self) -> int:
        return sum(len(f) for f in self.layers.values())

    def to_dict(self) -> Dict[str, Any]:
        """A GeoJSON-flavoured plain-data export."""
        return {
            "title": self.title,
            "layers": {
                name: {
                    "features": [
                        {
                            "geometry_wkt": f.get("wkt"),
                            "properties": {
                                k: v for k, v in f.items() if k != "wkt"
                            },
                        }
                        for f in features
                    ]
                }
                for name, features in self.layers.items()
            },
        }

    def to_geojson(self) -> Dict[str, Any]:
        """A GeoJSON FeatureCollection of every layer's features, each
        carrying its layer name in the properties."""
        from repro.geometry import from_wkt
        from repro.geometry.geojson import feature, feature_collection

        features = []
        for name, layer_features in self.layers.items():
            for f in layer_features:
                wkt = f.get("wkt")
                geom = from_wkt(wkt) if wkt else None
                props = {k: v for k, v in f.items() if k != "wkt"}
                props["layer"] = name
                features.append(feature(geom, props))
        return feature_collection(features)

    def __repr__(self) -> str:
        counts = {k: len(v) for k, v in self.layers.items()}
        return f"<FireMap {self.title!r} {counts}>"


def _value(term: Optional[RDFTerm]) -> Any:
    if term is None:
        return None
    if is_geometry_literal(term):
        return literal_geometry(term).wkt
    if isinstance(term, Literal):
        return term.to_python()
    return str(term)


class FireMapBuilder:
    """Builds fire maps by running the layer query series on a store."""

    def __init__(
        self,
        store: StrabonStore,
        world: Optional[GreeceLikeWorld] = None,
        town_radius_deg: float = 0.25,
        site_radius_deg: float = 0.25,
    ):
        self.store = store
        self.world = world
        self.town_radius = town_radius_deg
        self.site_radius = site_radius_deg

    def build(self, title: str = "NOA fire map") -> FireMap:
        """Run the full query series and assemble the map."""
        fire_map = FireMap(title)
        self._layer_hotspots(fire_map)
        self._layer_affected_towns(fire_map)
        self._layer_nearby_sites(fire_map)
        self._layer_threatened_roads(fire_map)
        self._layer_burning_landcover(fire_map)
        return fire_map

    # -- individual layers -----------------------------------------------------

    def _run_layer(
        self,
        fire_map: FireMap,
        name: str,
        query: str,
        columns: List[str],
    ) -> None:
        result = self.store.query(query)
        features = []
        for binding in result:
            feature = {}
            for col in columns:
                feature[col] = _value(binding.get(col))
            features.append(feature)
        fire_map.add_layer(name, query, features)

    def _layer_hotspots(self, fire_map: FireMap) -> None:
        query = (
            _MAP_PREFIXES
            + "SELECT ?h ?wkt ?conf WHERE {\n"
            "  ?h a noa:Hotspot ; noa:hasGeometry ?g ; "
            "noa:hasConfidence ?conf .\n"
            "  BIND(strdf:asText(?g) AS ?wkt)\n"
            "} ORDER BY DESC(?conf)"
        )
        self._run_layer(fire_map, "hotspots", query, ["h", "wkt", "conf"])

    def _layer_affected_towns(self, fire_map: FireMap) -> None:
        query = (
            _MAP_PREFIXES
            + "SELECT DISTINCT ?town ?name ?pop ?wkt WHERE {\n"
            "  ?h a noa:Hotspot ; noa:hasGeometry ?hg .\n"
            "  ?town a gn:PopulatedPlace ; gn:name ?name ; "
            "gn:population ?pop ; gn:hasGeometry ?tg .\n"
            f"  FILTER(strdf:distance(?hg, ?tg) < {self.town_radius})\n"
            "  BIND(strdf:asText(?tg) AS ?wkt)\n"
            "} ORDER BY DESC(?pop)"
        )
        self._run_layer(
            fire_map, "affected_towns", query, ["town", "name", "pop", "wkt"]
        )

    def _layer_nearby_sites(self, fire_map: FireMap) -> None:
        query = (
            _MAP_PREFIXES
            + "SELECT DISTINCT ?site ?wkt WHERE {\n"
            "  ?h a noa:Hotspot ; noa:hasGeometry ?hg .\n"
            "  ?site a dbp:ArchaeologicalSite ; dbp:hasGeometry ?sg .\n"
            f"  FILTER(strdf:distance(?hg, ?sg) < {self.site_radius})\n"
            "  BIND(strdf:asText(?sg) AS ?wkt)\n"
            "}"
        )
        self._run_layer(fire_map, "nearby_sites", query, ["site", "wkt"])

    def _layer_threatened_roads(self, fire_map: FireMap) -> None:
        query = (
            _MAP_PREFIXES
            + "SELECT DISTINCT ?road ?wkt WHERE {\n"
            "  ?h a noa:Hotspot ; noa:hasGeometry ?hg .\n"
            "  ?road a lgd:Motorway ; lgd:hasGeometry ?rg .\n"
            f"  FILTER(strdf:distance(?hg, ?rg) < {self.site_radius})\n"
            "  BIND(strdf:asText(?rg) AS ?wkt)\n"
            "}"
        )
        self._run_layer(fire_map, "threatened_roads", query, ["road", "wkt"])

    def _layer_burning_landcover(self, fire_map: FireMap) -> None:
        query = (
            _MAP_PREFIXES
            + "SELECT DISTINCT ?area ?kind ?wkt WHERE {\n"
            "  ?h a noa:Hotspot ; noa:hasGeometry ?hg .\n"
            "  ?area a ?kind ; clc:hasGeometry ?ag .\n"
            "  FILTER(strdf:intersects(?hg, ?ag))\n"
            "  BIND(strdf:asText(?ag) AS ?wkt)\n"
            "}"
        )
        result = self.store.query(query)
        features = []
        for binding in result:
            kind = binding.get("kind")
            # Only Corine classes make landcover features.
            if kind is None or not str(kind).startswith(str(CLC)):
                continue
            features.append(
                {
                    "area": _value(binding.get("area")),
                    "kind": str(kind).rsplit("#", 1)[-1],
                    "wkt": _value(binding.get("wkt")),
                }
            )
        fire_map.add_layer("burning_landcover", query, features)
