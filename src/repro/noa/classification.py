"""Hotspot classification submodules.

Scenario 1 of the demo lets the user "test the efficiency of different
processing chains (i.e., chains using a different classification
submodule)".  Two interchangeable submodules are provided; both take the
scene's SciQL array and fill a ``hotspot`` attribute plane:

* ``static`` — fixed brightness-temperature thresholds, expressed as a
  SciQL UPDATE (the declarative formulation the paper advertises);
* ``contextual`` — compares each pixel with the statistics of its local
  background window (mean + k·std), the classic contextual fire test:
  slower, markedly fewer false positives near warm surfaces.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.mdb import Database
from repro.mdb.sciql import SciArray
from repro.mdb.types import DOUBLE

#: 3.9um absolute threshold (K) of the static test.
STATIC_T039_K = 312.0
#: Minimum 3.9-10.8um difference (K) of the static test.
STATIC_DIFF_K = 9.0

#: The SciQL statement template of the static classifier.
STATIC_SCIQL_TEMPLATE = (
    "UPDATE {array} SET hotspot = 1 "
    "WHERE t039 > {t039} AND t039 - t108 > {diff}"
)


def ensure_mask_attribute(array: SciArray, name: str) -> None:
    """Add (or reset) a 0/1 classification-mask attribute plane."""
    if not array.has_attribute(name):
        array.add_attribute(name, DOUBLE, default=0.0)
    else:
        array.fill(0.0, attr=name)


def _ensure_hotspot_attribute(array: SciArray) -> None:
    ensure_mask_attribute(array, "hotspot")


def static_threshold_classifier(
    array: SciArray,
    db: Database,
    t039_threshold: float = STATIC_T039_K,
    diff_threshold: float = STATIC_DIFF_K,
) -> np.ndarray:
    """Classify via the fixed-threshold SciQL UPDATE; returns the mask."""
    _ensure_hotspot_attribute(array)
    statement = STATIC_SCIQL_TEMPLATE.format(
        array=array.name, t039=t039_threshold, diff=diff_threshold
    )
    db.execute(statement)
    return array.attribute("hotspot") > 0.5


def _window_stats(plane: np.ndarray, radius: int):
    """Local mean/std over a (2r+1)^2 box via summed-area tables."""
    padded = np.pad(plane.astype(float), radius, mode="reflect")
    ones = np.ones_like(padded)

    def box_sum(arr: np.ndarray) -> np.ndarray:
        csum = arr.cumsum(axis=0).cumsum(axis=1)
        csum = np.pad(csum, ((1, 0), (1, 0)))
        k = 2 * radius + 1
        h, w = plane.shape
        return (
            csum[k : k + h, k : k + w]
            - csum[k : k + h, 0:w]
            - csum[0:h, k : k + w]
            + csum[0:h, 0:w]
        )

    count = box_sum(ones)
    mean = box_sum(padded) / count
    sq_mean = box_sum(padded ** 2) / count
    var = np.maximum(sq_mean - mean ** 2, 0.0)
    return mean, np.sqrt(var)


def contextual_classifier(
    array: SciArray,
    db: Database,
    window_radius: int = 11,
    k_sigma: float = 3.0,
    t039_floor: float = 305.0,
) -> np.ndarray:
    """Contextual test: a pixel is a hotspot when its 3.9-10.8 µm
    difference exceeds the local background by ``k_sigma`` standard
    deviations (and 3.9 µm clears an absolute floor)."""
    _ensure_hotspot_attribute(array)
    t039 = array.attribute("t039")
    t108 = array.attribute("t108")
    diff = t039 - t108
    mean, std = _window_stats(diff, window_radius)
    anomaly = diff > mean + k_sigma * np.maximum(std, 0.4)
    mask = anomaly & (t039 > t039_floor)
    array.set_attribute("hotspot", mask.astype(float))
    return mask


#: Submodule registry keyed by chain configuration name.
CLASSIFIERS: Dict[str, Callable] = {
    "static": static_threshold_classifier,
    "contextual": contextual_classifier,
}


def classifier_names() -> List[str]:
    return sorted(CLASSIFIERS)
