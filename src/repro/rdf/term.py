"""RDF terms: IRIs, blank nodes, literals and query variables."""

from __future__ import annotations

import itertools
import re
from datetime import datetime
from typing import Any, Optional

_XSD = "http://www.w3.org/2001/XMLSchema#"

_IRI_FORBIDDEN = re.compile(r'[<>"{}|^`\\\x00-\x20]')


class TermError(ValueError):
    """Raised for malformed RDF terms."""


class RDFTerm:
    """Base class of every RDF term."""

    __slots__ = ()

    def n3(self) -> str:
        """N-Triples / SPARQL surface syntax for the term."""
        raise NotImplementedError


class URIRef(RDFTerm, str):
    """An IRI reference.

    Subclasses :class:`str`, so it can be used wherever a plain IRI string
    is expected; equality and hashing are inherited.
    """

    __slots__ = ()

    def __new__(cls, value: str) -> "URIRef":
        if _IRI_FORBIDDEN.search(value):
            raise TermError(f"invalid character in IRI: {value!r}")
        return str.__new__(cls, value)

    def n3(self) -> str:
        return f"<{self}>"

    def __eq__(self, other: object) -> bool:
        # Strict typing: a URIRef never equals a BNode/Literal/plain str
        # with the same characters (they are different RDF terms).
        if type(other) is not URIRef:
            return NotImplemented if not isinstance(other, str) else False
        return str.__eq__(self, other)

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return NotImplemented if result is NotImplemented else not result

    def __hash__(self) -> int:
        return hash((URIRef, str(self)))

    def __repr__(self) -> str:
        return f"URIRef({str(self)!r})"

    @property
    def local_name(self) -> str:
        """The fragment/last path segment — handy for display."""
        for sep in ("#", "/", ":"):
            if sep in self:
                return self.rsplit(sep, 1)[1]
        return str(self)


class BNode(RDFTerm, str):
    """A blank node with a process-unique label."""

    __slots__ = ()
    _counter = itertools.count()

    def __new__(cls, label: Optional[str] = None) -> "BNode":
        if label is None:
            label = f"b{next(cls._counter)}"
        if not re.fullmatch(r"[A-Za-z0-9_.\-]+", label):
            raise TermError(f"invalid blank node label: {label!r}")
        return str.__new__(cls, label)

    def n3(self) -> str:
        return f"_:{self}"

    def __eq__(self, other: object) -> bool:
        if type(other) is not BNode:
            return NotImplemented if not isinstance(other, str) else False
        return str.__eq__(self, other)

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return NotImplemented if result is NotImplemented else not result

    def __hash__(self) -> int:
        return hash((BNode, str(self)))

    def __repr__(self) -> str:
        return f"BNode({str(self)!r})"


class Literal(RDFTerm):
    """An RDF literal with optional datatype or language tag.

    Python values may be passed directly; the datatype is inferred
    (``int`` → ``xsd:integer``, ``float`` → ``xsd:double``, ``bool`` →
    ``xsd:boolean``, ``datetime`` → ``xsd:dateTime``).
    """

    __slots__ = ("lexical", "datatype", "language")

    def __init__(
        self,
        value: Any,
        datatype: Optional[str] = None,
        language: Optional[str] = None,
    ):
        if datatype is not None and language is not None:
            raise TermError("a literal cannot have both datatype and language")
        if isinstance(value, bool):
            lexical = "true" if value else "false"
            datatype = datatype or _XSD + "boolean"
        elif isinstance(value, int):
            lexical = str(value)
            datatype = datatype or _XSD + "integer"
        elif isinstance(value, float):
            lexical = repr(value)
            datatype = datatype or _XSD + "double"
        elif isinstance(value, datetime):
            lexical = value.isoformat()
            datatype = datatype or _XSD + "dateTime"
        else:
            lexical = str(value)
        self.lexical = lexical
        self.datatype = URIRef(datatype) if datatype else None
        self.language = language.lower() if language else None

    def to_python(self) -> Any:
        """Best-effort conversion to a native Python value."""
        if self.datatype is None:
            return self.lexical
        # Compare as a plain string: URIRef equality is strictly typed.
        dt = str(self.datatype)
        if dt == _XSD + "integer" or dt in (
            _XSD + "int",
            _XSD + "long",
            _XSD + "short",
            _XSD + "nonNegativeInteger",
        ):
            return int(self.lexical)
        if dt in (_XSD + "double", _XSD + "float", _XSD + "decimal"):
            return float(self.lexical)
        if dt == _XSD + "boolean":
            return self.lexical.strip().lower() in ("true", "1")
        if dt in (_XSD + "dateTime", _XSD + "date"):
            try:
                return datetime.fromisoformat(self.lexical)
            except ValueError:
                return self.lexical
        return self.lexical

    @property
    def is_numeric(self) -> bool:
        if self.datatype is None:
            return False
        return str(self.datatype) in (
            _XSD + "integer",
            _XSD + "int",
            _XSD + "long",
            _XSD + "short",
            _XSD + "nonNegativeInteger",
            _XSD + "double",
            _XSD + "float",
            _XSD + "decimal",
        )

    def n3(self) -> str:
        escaped = (
            self.lexical.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace("\t", "\\t")
        )
        # Escape remaining control characters (and Unicode line/paragraph
        # separators) so line-oriented formats stay line-oriented.
        escaped = "".join(
            f"\\u{ord(ch):04X}"
            if ord(ch) < 0x20 or ch in "\x85  "
            else ch
            for ch in escaped
        )
        body = f'"{escaped}"'
        if self.language:
            return f"{body}@{self.language}"
        if self.datatype:
            return f"{body}^^<{self.datatype}>"
        return body

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Literal):
            return NotImplemented
        return (
            self.lexical == other.lexical
            and self.datatype == other.datatype
            and self.language == other.language
        )

    def __hash__(self) -> int:
        return hash((self.lexical, self.datatype, self.language))

    def __lt__(self, other: "Literal") -> bool:
        if isinstance(other, Literal) and self.is_numeric and other.is_numeric:
            return self.to_python() < other.to_python()
        if isinstance(other, Literal):
            return self.lexical < other.lexical
        return NotImplemented

    def __repr__(self) -> str:
        if self.datatype:
            return f"Literal({self.lexical!r}, datatype={str(self.datatype)!r})"
        if self.language:
            return f"Literal({self.lexical!r}, language={self.language!r})"
        return f"Literal({self.lexical!r})"

    def __str__(self) -> str:
        return self.lexical


class Variable(RDFTerm, str):
    """A SPARQL query variable (``?name``)."""

    __slots__ = ()

    def __new__(cls, name: str) -> "Variable":
        name = name.lstrip("?$")
        if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", name):
            raise TermError(f"invalid variable name: {name!r}")
        return str.__new__(cls, name)

    def n3(self) -> str:
        return f"?{self}"

    def __eq__(self, other: object) -> bool:
        if type(other) is not Variable:
            return NotImplemented if not isinstance(other, str) else False
        return str.__eq__(self, other)

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return NotImplemented if result is NotImplemented else not result

    def __hash__(self) -> int:
        return hash((Variable, str(self)))

    def __repr__(self) -> str:
        return f"Variable({str(self)!r})"
