"""N-Triples parser and serialiser (line-based RDF interchange)."""

from __future__ import annotations

import re
from typing import Iterator, List

from repro.rdf.graph import Graph, Triple
from repro.rdf.term import BNode, Literal, TermError, URIRef

_TERM_RE = re.compile(
    r"""\s*(?:
        <(?P<iri>[^>]*)>
      | _:(?P<bnode>[A-Za-z0-9_.\-]+)
      | "(?P<lit>(?:[^"\\]|\\.)*)"
        (?:\^\^<(?P<dtype>[^>]*)>|@(?P<lang>[A-Za-z0-9\-]+))?
    )""",
    re.VERBOSE,
)

_ESCAPES = {
    "\\n": "\n",
    "\\r": "\r",
    "\\t": "\t",
    '\\"': '"',
    "\\\\": "\\",
}


def _unescape(text: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(text):
        if text[i] == "\\" and i + 1 < len(text):
            pair = text[i : i + 2]
            if pair in _ESCAPES:
                out.append(_ESCAPES[pair])
                i += 2
                continue
            if pair == "\\u" and i + 6 <= len(text):
                out.append(chr(int(text[i + 2 : i + 6], 16)))
                i += 6
                continue
            if pair == "\\U" and i + 10 <= len(text):
                out.append(chr(int(text[i + 2 : i + 10], 16)))
                i += 10
                continue
        out.append(text[i])
        i += 1
    return "".join(out)


def _parse_term(text: str, pos: int):
    m = _TERM_RE.match(text, pos)
    if not m:
        raise TermError(f"bad N-Triples term at column {pos}: {text[pos:pos+40]!r}")
    if m.group("iri") is not None:
        return URIRef(m.group("iri")), m.end()
    if m.group("bnode") is not None:
        return BNode(m.group("bnode")), m.end()
    lexical = _unescape(m.group("lit"))
    return (
        Literal(lexical, datatype=m.group("dtype"), language=m.group("lang")),
        m.end(),
    )


def iter_ntriples(text: str) -> Iterator[Triple]:
    """Yield triples from N-Triples text, skipping comments and blanks."""
    # Split strictly on newline: str.splitlines() would also break on
    # exotic separators (\x1c..\x1e,  ...) that may occur inside
    # escaped literals.
    for lineno, line in enumerate(text.split("\n"), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        try:
            s, pos = _parse_term(line, 0)
            p, pos = _parse_term(line, pos)
            o, pos = _parse_term(line, pos)
        except TermError as exc:
            raise TermError(f"line {lineno}: {exc}") from exc
        tail = line[pos:].strip()
        if tail != ".":
            raise TermError(f"line {lineno}: expected final '.', got {tail!r}")
        yield (s, p, o)


def parse_ntriples(text: str, graph: Graph | None = None) -> Graph:
    """Parse N-Triples text into a (new or supplied) graph."""
    g = graph if graph is not None else Graph()
    for triple in iter_ntriples(text):
        g.add(triple)
    return g


def serialize_ntriples(graph: Graph) -> str:
    """Serialise a graph as sorted N-Triples text."""
    lines = sorted(
        f"{s.n3()} {p.n3()} {o.n3()} ." for s, p, o in graph
    )
    return "\n".join(lines) + ("\n" if lines else "")
