"""Namespace helper and the vocabularies TELEIOS uses."""

from __future__ import annotations

from repro.rdf.term import URIRef


class Namespace(str):
    """A base IRI from which terms are minted via attribute/index access.

    ::

        EX = Namespace("http://example.org/")
        EX.thing        # URIRef("http://example.org/thing")
        EX["odd name"]  # index syntax for non-identifier locals
    """

    def __new__(cls, base: str) -> "Namespace":
        return str.__new__(cls, base)

    def term(self, name: str) -> URIRef:
        return URIRef(str(self) + name)

    def __getattr__(self, name: str) -> URIRef:
        if name.startswith("_"):
            raise AttributeError(name)
        return self.term(name)

    def __getitem__(self, name) -> URIRef:  # type: ignore[override]
        if isinstance(name, (int, slice)):
            return str.__getitem__(self, name)  # type: ignore[return-value]
        return self.term(name)

    def __contains__(self, item) -> bool:  # type: ignore[override]
        return isinstance(item, str) and item.startswith(str(self))


RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
DC = Namespace("http://purl.org/dc/elements/1.1/")

#: stRDF / stSPARQL vocabulary (spatial literals and functions).
STRDF = Namespace("http://strdf.di.uoa.gr/ontology#")

#: GeoSPARQL vocabulary (the forthcoming OGC standard cited by the paper).
GEO = Namespace("http://www.opengis.net/ont/geosparql#")

#: NOA fire-monitoring product vocabulary used by the demo application.
NOA = Namespace("http://teleios.di.uoa.gr/ontologies/noaOntology.owl#")

#: Common prefix table for parsers/serialisers.
WELL_KNOWN_PREFIXES = {
    "rdf": RDF,
    "rdfs": RDFS,
    "owl": OWL,
    "xsd": XSD,
    "dc": DC,
    "strdf": STRDF,
    "geo": GEO,
    "noa": NOA,
}
