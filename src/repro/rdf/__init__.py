"""RDF substrate: terms, graphs, serialisation and RDFS inference.

This package is the Sesame/Jena replacement beneath Strabon
(:mod:`repro.strabon`): an indexed in-memory triple store with Turtle and
N-Triples I/O and lightweight RDFS reasoning.

Quick example::

    from repro.rdf import Graph, Literal, Namespace, URIRef

    EX = Namespace("http://example.org/")
    g = Graph()
    g.add((EX.fire1, EX.detectedAt, Literal("2007-08-25T12:00:00")))
    assert len(g) == 1
"""

from repro.rdf.term import (
    BNode,
    Literal,
    RDFTerm,
    TermError,
    URIRef,
    Variable,
)
from repro.rdf.namespace import (
    DC,
    GEO,
    NOA,
    OWL,
    RDF,
    RDFS,
    STRDF,
    XSD,
    Namespace,
)
from repro.rdf.graph import Graph, Triple
from repro.rdf.ntriples import parse_ntriples, serialize_ntriples
from repro.rdf.turtle import TurtleParseError, parse_turtle, serialize_turtle
from repro.rdf.rdfs import RDFSReasoner

__all__ = [
    "BNode",
    "DC",
    "GEO",
    "Graph",
    "Literal",
    "NOA",
    "Namespace",
    "OWL",
    "RDF",
    "RDFS",
    "RDFSReasoner",
    "RDFTerm",
    "STRDF",
    "TermError",
    "Triple",
    "TurtleParseError",
    "URIRef",
    "Variable",
    "XSD",
    "parse_ntriples",
    "parse_turtle",
    "serialize_ntriples",
    "serialize_turtle",
]
