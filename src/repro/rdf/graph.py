"""An indexed in-memory RDF graph.

Triples are held in three permutation indexes (SPO, POS, OSP) so that any
triple pattern with at least one bound position resolves through a hash
lookup instead of a scan — the same access-path idea MonetDB's BATs give
Strabon on the relational side.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Set, Tuple

from repro.rdf.term import BNode, Literal, RDFTerm, TermError, URIRef

Triple = Tuple[RDFTerm, RDFTerm, RDFTerm]

_Index = Dict[RDFTerm, Dict[RDFTerm, Set[RDFTerm]]]


def _index_add(index: _Index, a: RDFTerm, b: RDFTerm, c: RDFTerm) -> None:
    index.setdefault(a, {}).setdefault(b, set()).add(c)


def _index_remove(index: _Index, a: RDFTerm, b: RDFTerm, c: RDFTerm) -> None:
    try:
        bucket = index[a][b]
        bucket.discard(c)
        if not bucket:
            del index[a][b]
            if not index[a]:
                del index[a]
    except KeyError:
        pass


class Graph:
    """A set of RDF triples with pattern-matching access.

    ``None`` acts as a wildcard in :meth:`triples` patterns, mirroring
    rdflib's API.
    """

    def __init__(self, triples: Optional[Iterable[Triple]] = None):
        self._spo: _Index = {}
        self._pos: _Index = {}
        self._osp: _Index = {}
        self._size = 0
        # Per-term occurrence counts, kept so one-bound-position
        # cardinality estimates are O(1) instead of a bucket sum.
        self._s_count: Dict[RDFTerm, int] = {}
        self._p_count: Dict[RDFTerm, int] = {}
        self._o_count: Dict[RDFTerm, int] = {}
        if triples:
            for t in triples:
                self.add(t)

    # -- mutation ------------------------------------------------------------

    def add(self, triple: Triple) -> bool:
        """Insert a triple; returns True when it was new."""
        s, p, o = self._validate(triple)
        if self.__contains__((s, p, o)):
            return False
        _index_add(self._spo, s, p, o)
        _index_add(self._pos, p, o, s)
        _index_add(self._osp, o, s, p)
        self._s_count[s] = self._s_count.get(s, 0) + 1
        self._p_count[p] = self._p_count.get(p, 0) + 1
        self._o_count[o] = self._o_count.get(o, 0) + 1
        self._size += 1
        return True

    def remove(self, pattern: Tuple) -> int:
        """Delete every triple matching the (possibly wildcard) pattern;
        returns the number removed."""
        victims = list(self.triples(pattern))
        for s, p, o in victims:
            _index_remove(self._spo, s, p, o)
            _index_remove(self._pos, p, o, s)
            _index_remove(self._osp, o, s, p)
            for counts, term in (
                (self._s_count, s), (self._p_count, p), (self._o_count, o)
            ):
                left = counts.get(term, 0) - 1
                if left > 0:
                    counts[term] = left
                else:
                    counts.pop(term, None)
        self._size -= len(victims)
        return len(victims)

    def update(self, triples: Iterable[Triple]) -> int:
        """Bulk-add triples; returns how many were new."""
        return sum(1 for t in triples if self.add(t))

    def clear(self) -> None:
        self._spo.clear()
        self._pos.clear()
        self._osp.clear()
        self._s_count.clear()
        self._p_count.clear()
        self._o_count.clear()
        self._size = 0

    @staticmethod
    def _validate(triple: Triple) -> Triple:
        if len(triple) != 3:
            raise TermError(f"a triple needs 3 terms, got {len(triple)}")
        s, p, o = triple
        if not isinstance(s, (URIRef, BNode)):
            raise TermError(f"subject must be IRI or blank node: {s!r}")
        if not isinstance(p, URIRef):
            raise TermError(f"predicate must be an IRI: {p!r}")
        if not isinstance(o, (URIRef, BNode, Literal)):
            raise TermError(f"object must be IRI, blank node or literal: {o!r}")
        return s, p, o

    # -- access ----------------------------------------------------------------

    def triples(
        self, pattern: Tuple = (None, None, None)
    ) -> Iterator[Triple]:
        """Yield triples matching ``(s, p, o)`` where ``None`` is a wildcard.

        The best permutation index for the bound positions is chosen
        automatically.
        """
        s, p, o = pattern
        if s is not None and p is not None:
            objs = self._spo.get(s, {}).get(p, ())
            if o is not None:
                if o in objs:
                    yield (s, p, o)
                return
            for obj in list(objs):
                yield (s, p, obj)
            return
        if p is not None and o is not None:
            for subj in list(self._pos.get(p, {}).get(o, ())):
                yield (subj, p, o)
            return
        if s is not None and o is not None:
            for pred in list(self._osp.get(o, {}).get(s, ())):
                yield (s, pred, o)
            return
        if s is not None:
            for pred, objs in list(self._spo.get(s, {}).items()):
                for obj in list(objs):
                    yield (s, pred, obj)
            return
        if p is not None:
            for obj, subjs in list(self._pos.get(p, {}).items()):
                for subj in list(subjs):
                    yield (subj, p, obj)
            return
        if o is not None:
            for subj, preds in list(self._osp.get(o, {}).items()):
                for pred in list(preds):
                    yield (subj, pred, o)
            return
        for subj, po in list(self._spo.items()):
            for pred, objs in list(po.items()):
                for obj in list(objs):
                    yield (subj, pred, obj)

    def count_estimate(self, pattern: Tuple = (None, None, None)) -> int:
        """Exact match count for a triple pattern, without materialising.

        Resolved through the same permutation indexes as :meth:`triples`:
        two bound positions cost one hash lookup, one bound position a
        sum over that key's second-level buckets.  Query planners (the
        stSPARQL BGP join orderer) use this as a selectivity estimate to
        pick join orders; it is "cheap" in that no triples are built.
        """
        s, p, o = pattern
        if s is not None and p is not None:
            objs = self._spo.get(s, {}).get(p, ())
            if o is not None:
                return 1 if o in objs else 0
            return len(objs)
        if p is not None and o is not None:
            return len(self._pos.get(p, {}).get(o, ()))
        if s is not None and o is not None:
            return len(self._osp.get(o, {}).get(s, ()))
        if s is not None:
            return self._s_count.get(s, 0)
        if p is not None:
            return self._p_count.get(p, 0)
        if o is not None:
            return self._o_count.get(o, 0)
        return self._size

    def subjects(self, predicate=None, obj=None) -> Iterator[RDFTerm]:
        seen = set()
        for s, _, _ in self.triples((None, predicate, obj)):
            if s not in seen:
                seen.add(s)
                yield s

    def objects(self, subject=None, predicate=None) -> Iterator[RDFTerm]:
        seen = set()
        for _, _, o in self.triples((subject, predicate, None)):
            if o not in seen:
                seen.add(o)
                yield o

    def predicates(self, subject=None, obj=None) -> Iterator[RDFTerm]:
        seen = set()
        for _, p, _ in self.triples((subject, None, obj)):
            if p not in seen:
                seen.add(p)
                yield p

    def value(self, subject=None, predicate=None, obj=None):
        """The single term completing the pattern, or None.

        Exactly one of the three positions must be None.
        """
        wildcards = [subject is None, predicate is None, obj is None]
        if sum(wildcards) != 1:
            raise TermError("value() needs exactly one wildcard position")
        for s, p, o in self.triples((subject, predicate, obj)):
            if subject is None:
                return s
            if predicate is None:
                return p
            return o
        return None

    # -- protocol ---------------------------------------------------------------

    def __contains__(self, triple: Triple) -> bool:
        s, p, o = triple
        return o in self._spo.get(s, {}).get(p, ())

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return len(self) == len(other) and all(t in other for t in self)

    def copy(self) -> "Graph":
        return Graph(self.triples())

    def __repr__(self) -> str:
        return f"<Graph with {self._size} triples>"
