"""Turtle (Terse RDF Triple Language) parser and serialiser.

Supports the profile needed by the TELEIOS data sets: prefix/base
directives, predicate–object and object lists, anonymous blank nodes,
collections, numeric/boolean shorthand literals, long strings and typed or
language-tagged literals.
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, List, Optional, Tuple

from repro.rdf.graph import Graph, Triple
from repro.rdf.namespace import RDF, WELL_KNOWN_PREFIXES
from repro.rdf.ntriples import _unescape
from repro.rdf.term import BNode, Literal, RDFTerm, URIRef

_XSD = "http://www.w3.org/2001/XMLSchema#"


class TurtleParseError(ValueError):
    """Raised when Turtle text cannot be parsed."""


_TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+|\#[^\n]*)
    | (?P<triple_quote>\"\"\"(?:[^"\\]|\\.|"(?!""))*\"\"\")
    | (?P<string>"(?:[^"\\\n]|\\.)*")
    | (?P<iri><[^<>"{}|^`\\\x00-\x20]*>)
    | (?P<bnode>_:[A-Za-z0-9_.\-]+)
    | (?P<directive>@prefix|@base|PREFIX|BASE)
    | (?P<number>[+-]?(?:\d+\.\d*(?:[eE][+-]?\d+)?|\.?\d+(?:[eE][+-]?\d+)?))
    | (?P<langtag>@[A-Za-z]+(?:-[A-Za-z0-9]+)*)
    | (?P<dtype_marker>\^\^)
    | (?P<pname>[A-Za-z_][\w.\-]*?:[\w.\-]*|:[\w.\-]*|[A-Za-z_][\w.\-]*:)
    | (?P<keyword>\ba\b|true|false)
    | (?P<punct>\[|\]|\(|\)|;|,|\.)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[Tuple[str, str, int]]:
    tokens: List[Tuple[str, str, int]] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if not m:
            raise TurtleParseError(
                f"unexpected character at offset {pos}: {text[pos:pos+30]!r}"
            )
        kind = m.lastgroup or ""
        if kind != "ws":
            tokens.append((kind, m.group(0), pos))
        pos = m.end()
    return tokens


class _Parser:
    def __init__(self, text: str, graph: Graph):
        self.tokens = _tokenize(text)
        self.index = 0
        self.graph = graph
        self.prefixes: Dict[str, str] = {}
        self.base = ""
        self._bnode_counter = 0

    # -- token helpers -----------------------------------------------------

    def _peek(self) -> Tuple[str, str]:
        if self.index >= len(self.tokens):
            return ("eof", "")
        kind, value, _ = self.tokens[self.index]
        return (kind, value)

    def _next(self) -> Tuple[str, str]:
        kind, value = self._peek()
        if kind == "eof":
            raise TurtleParseError("unexpected end of input")
        self.index += 1
        return (kind, value)

    def _expect_punct(self, char: str) -> None:
        kind, value = self._next()
        if kind != "punct" or value != char:
            raise TurtleParseError(f"expected {char!r}, got {value!r}")

    # -- grammar -------------------------------------------------------------

    def parse(self) -> None:
        while self._peek()[0] != "eof":
            kind, value = self._peek()
            if kind == "directive":
                self._directive(value)
            else:
                self._triples_block()
                self._expect_punct(".")

    def _directive(self, keyword: str) -> None:
        self._next()
        if keyword in ("@prefix", "PREFIX"):
            kind, pname = self._next()
            if kind != "pname" or not pname.endswith(":"):
                raise TurtleParseError(f"bad prefix name {pname!r}")
            kind, iri = self._next()
            if kind != "iri":
                raise TurtleParseError("prefix directive needs an IRI")
            self.prefixes[pname[:-1]] = self._resolve_iri(iri[1:-1])
            if keyword == "@prefix":
                self._expect_punct(".")
        else:  # @base / BASE
            kind, iri = self._next()
            if kind != "iri":
                raise TurtleParseError("base directive needs an IRI")
            self.base = iri[1:-1]
            if keyword == "@base":
                self._expect_punct(".")

    def _triples_block(self) -> None:
        subject = self._subject()
        self._predicate_object_list(subject)

    def _predicate_object_list(self, subject: RDFTerm) -> None:
        while True:
            predicate = self._verb()
            self._object_list(subject, predicate)
            kind, value = self._peek()
            if kind == "punct" and value == ";":
                self._next()
                # Allow trailing semicolon before '.' or ']'.
                kind, value = self._peek()
                if kind == "punct" and value in (".", "]"):
                    return
                continue
            return

    def _object_list(self, subject: RDFTerm, predicate: URIRef) -> None:
        while True:
            obj = self._object()
            self.graph.add((subject, predicate, obj))
            kind, value = self._peek()
            if kind == "punct" and value == ",":
                self._next()
                continue
            return

    def _verb(self) -> URIRef:
        kind, value = self._peek()
        if kind == "keyword" and value == "a":
            self._next()
            return URIRef(RDF.type)
        term = self._term()
        if not isinstance(term, URIRef):
            raise TurtleParseError(f"predicate must be an IRI, got {term!r}")
        return term

    def _subject(self) -> RDFTerm:
        term = self._term()
        if isinstance(term, Literal):
            raise TurtleParseError("a literal cannot be a subject")
        return term

    def _object(self) -> RDFTerm:
        return self._term()

    def _term(self) -> RDFTerm:
        kind, value = self._next()
        if kind == "iri":
            return URIRef(self._resolve_iri(value[1:-1]))
        if kind == "pname":
            return self._resolve_pname(value)
        if kind == "bnode":
            return BNode(value[2:])
        if kind in ("string", "triple_quote"):
            return self._literal(kind, value)
        if kind == "number":
            if "." in value or "e" in value or "E" in value:
                return Literal(value, datatype=_XSD + "double")
            return Literal(value, datatype=_XSD + "integer")
        if kind == "keyword" and value in ("true", "false"):
            return Literal(value, datatype=_XSD + "boolean")
        if kind == "punct" and value == "[":
            return self._blank_node_property_list()
        if kind == "punct" and value == "(":
            return self._collection()
        raise TurtleParseError(f"unexpected token {value!r}")

    def _literal(self, kind: str, value: str) -> Literal:
        if kind == "triple_quote":
            lexical = value[3:-3]
        else:
            lexical = _unescape(value[1:-1])
        nkind, nvalue = self._peek()
        if nkind == "langtag":
            self._next()
            return Literal(lexical, language=nvalue[1:])
        if nkind == "dtype_marker":
            self._next()
            dkind, dvalue = self._next()
            if dkind == "iri":
                return Literal(lexical, datatype=self._resolve_iri(dvalue[1:-1]))
            if dkind == "pname":
                dtype = self._resolve_pname(dvalue)
                return Literal(lexical, datatype=str(dtype))
            raise TurtleParseError("datatype must be an IRI")
        return Literal(lexical)

    def _blank_node_property_list(self) -> BNode:
        node = self._fresh_bnode()
        kind, value = self._peek()
        if kind == "punct" and value == "]":
            self._next()
            return node
        self._predicate_object_list(node)
        self._expect_punct("]")
        return node

    def _collection(self) -> RDFTerm:
        items: List[RDFTerm] = []
        while True:
            kind, value = self._peek()
            if kind == "punct" and value == ")":
                self._next()
                break
            items.append(self._term())
        if not items:
            return URIRef(RDF.nil)
        head = self._fresh_bnode()
        current = head
        for i, item in enumerate(items):
            self.graph.add((current, URIRef(RDF.first), item))
            if i + 1 < len(items):
                nxt = self._fresh_bnode()
                self.graph.add((current, URIRef(RDF.rest), nxt))
                current = nxt
            else:
                self.graph.add((current, URIRef(RDF.rest), URIRef(RDF.nil)))
        return head

    def _fresh_bnode(self) -> BNode:
        self._bnode_counter += 1
        return BNode(f"tn{self._bnode_counter}.{id(self) % 100000}")

    # -- IRI resolution --------------------------------------------------------

    def _resolve_iri(self, iri: str) -> str:
        if self.base and not re.match(r"^[A-Za-z][A-Za-z0-9+.\-]*:", iri):
            return self.base + iri
        return iri

    def _resolve_pname(self, pname: str) -> URIRef:
        prefix, _, local = pname.partition(":")
        if prefix in self.prefixes:
            return URIRef(self.prefixes[prefix] + local)
        if prefix in WELL_KNOWN_PREFIXES:
            return URIRef(str(WELL_KNOWN_PREFIXES[prefix]) + local)
        raise TurtleParseError(f"undefined prefix {prefix!r}")


def parse_turtle(text: str, graph: Optional[Graph] = None) -> Graph:
    """Parse Turtle text into a (new or supplied) graph."""
    g = graph if graph is not None else Graph()
    parser = _Parser(text, g)
    parser.parse()
    return g


def serialize_turtle(
    graph: Graph, prefixes: Optional[Dict[str, str]] = None
) -> str:
    """Serialise a graph as Turtle, grouping triples by subject."""
    table: Dict[str, str] = dict(WELL_KNOWN_PREFIXES)
    if prefixes:
        table.update(prefixes)
    # Keep only prefixes that are actually used.
    used: Dict[str, str] = {}

    def shorten(term: RDFTerm) -> str:
        if isinstance(term, URIRef):
            for prefix, base in table.items():
                base_str = str(base)
                if term.startswith(base_str):
                    local = term[len(base_str):]
                    if re.fullmatch(r"[\w.\-]*", local):
                        used[prefix] = base_str
                        return f"{prefix}:{local}"
        return term.n3()

    by_subject: Dict[RDFTerm, List[Tuple[RDFTerm, RDFTerm]]] = {}
    for s, p, o in graph:
        by_subject.setdefault(s, []).append((p, o))

    blocks: List[str] = []
    for s in sorted(by_subject, key=lambda t: t.n3()):
        pairs = sorted(by_subject[s], key=lambda po: (po[0].n3(), po[1].n3()))
        lines = [shorten(s)]
        for i, (p, o) in enumerate(pairs):
            pred = "a" if p == URIRef(RDF.type) else shorten(p)
            sep = " ;" if i + 1 < len(pairs) else " ."
            lines.append(f"    {pred} {shorten(o)}{sep}")
        blocks.append("\n".join(lines))

    header = "".join(
        f"@prefix {prefix}: <{base}> .\n"
        for prefix, base in sorted(used.items())
    )
    body = "\n\n".join(blocks)
    if header and body:
        return header + "\n" + body + "\n"
    return header + body + ("\n" if body else "")


def iter_turtle(text: str) -> Iterator[Triple]:
    """Convenience: parse and iterate triples."""
    yield from parse_turtle(text)
