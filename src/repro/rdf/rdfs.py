"""Lightweight RDFS reasoning.

TELEIOS annotates EO products with concepts from OWL ontologies and then
queries them through class hierarchies ("find water bodies" should match
lakes).  This module materialises the RDFS entailments that make such
queries work:

* ``rdfs:subClassOf`` transitivity and ``rdf:type`` propagation (rdfs9/11),
* ``rdfs:subPropertyOf`` transitivity and triple propagation (rdfs5/7),
* ``rdfs:domain`` / ``rdfs:range`` typing (rdfs2/3).
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from repro.rdf.graph import Graph
from repro.rdf.namespace import RDF, RDFS
from repro.rdf.term import RDFTerm, URIRef

_TYPE = URIRef(RDF.type)
_SUBCLASS = URIRef(RDFS.subClassOf)
_SUBPROP = URIRef(RDFS.subPropertyOf)
_DOMAIN = URIRef(RDFS.domain)
_RANGE = URIRef(RDFS.range)


def _transitive_closure(
    edges: Dict[RDFTerm, Set[RDFTerm]]
) -> Dict[RDFTerm, Set[RDFTerm]]:
    closure: Dict[RDFTerm, Set[RDFTerm]] = {}
    for start in edges:
        seen: Set[RDFTerm] = set()
        stack = list(edges.get(start, ()))
        while stack:
            node = stack.pop()
            if node in seen or node == start:
                continue
            seen.add(node)
            stack.extend(edges.get(node, ()))
        closure[start] = seen
    return closure


class RDFSReasoner:
    """Materialises RDFS entailments into a graph.

    Usage::

        reasoner = RDFSReasoner(ontology_graph)
        added = reasoner.materialize(data_graph)
    """

    def __init__(self, schema: Graph):
        self.schema = schema
        self._subclass = self._closure_for(_SUBCLASS)
        self._subprop = self._closure_for(_SUBPROP)
        self._domain: Dict[RDFTerm, Set[RDFTerm]] = {}
        self._range: Dict[RDFTerm, Set[RDFTerm]] = {}
        for s, _, o in schema.triples((None, _DOMAIN, None)):
            self._domain.setdefault(s, set()).add(o)
        for s, _, o in schema.triples((None, _RANGE, None)):
            self._range.setdefault(s, set()).add(o)

    def _closure_for(self, predicate: URIRef) -> Dict[RDFTerm, Set[RDFTerm]]:
        edges: Dict[RDFTerm, Set[RDFTerm]] = {}
        for s, _, o in self.schema.triples((None, predicate, None)):
            edges.setdefault(s, set()).add(o)
        return _transitive_closure(edges)

    def superclasses(self, cls: RDFTerm) -> Set[RDFTerm]:
        """All (transitive) superclasses of ``cls`` (excluding itself)."""
        return set(self._subclass.get(cls, ()))

    def subclasses(self, cls: RDFTerm) -> Set[RDFTerm]:
        """All (transitive) subclasses of ``cls`` (excluding itself)."""
        return {c for c, supers in self._subclass.items() if cls in supers}

    def superproperties(self, prop: RDFTerm) -> Set[RDFTerm]:
        return set(self._subprop.get(prop, ()))

    def is_subclass_of(self, cls: RDFTerm, ancestor: RDFTerm) -> bool:
        return cls == ancestor or ancestor in self._subclass.get(cls, ())

    def materialize(self, data: Graph) -> int:
        """Add entailed triples to ``data`` in place; returns count added.

        Runs to fixpoint: property propagation may introduce new typing
        opportunities and vice versa.
        """
        added = 0
        changed = True
        while changed:
            changed = False
            new_triples = []
            for s, p, o in data:
                # rdfs7: subPropertyOf propagation.
                for super_prop in self._subprop.get(p, ()):
                    if isinstance(super_prop, URIRef):
                        new_triples.append((s, super_prop, o))
                # rdfs2/3: domain and range typing.
                for cls in self._domain.get(p, ()):
                    new_triples.append((s, _TYPE, cls))
                for cls in self._range.get(p, ()):
                    if not _is_literal(o):
                        new_triples.append((o, _TYPE, cls))
                # rdfs9: type propagation up the class hierarchy.
                if p == _TYPE:
                    for super_cls in self._subclass.get(o, ()):
                        new_triples.append((s, _TYPE, super_cls))
            for triple in new_triples:
                if data.add(triple):
                    added += 1
                    changed = True
        return added

    def types_of(self, data: Graph, resource: RDFTerm) -> Set[RDFTerm]:
        """Direct plus inferred types of ``resource``."""
        types: Set[RDFTerm] = set(data.objects(resource, _TYPE))
        for t in list(types):
            types |= self._subclass.get(t, set())
        return types

    def instances_of(
        self, data: Graph, cls: RDFTerm
    ) -> Iterable[RDFTerm]:
        """Resources typed as ``cls`` or any of its subclasses."""
        classes = {cls} | self.subclasses(cls)
        seen: Set[RDFTerm] = set()
        for c in classes:
            for s in data.subjects(_TYPE, c):
                if s not in seen:
                    seen.add(s)
                    yield s


def _is_literal(term: RDFTerm) -> bool:
    from repro.rdf.term import Literal

    return isinstance(term, Literal)
