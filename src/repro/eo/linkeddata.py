"""Synthetic auxiliary geospatial data sets as linked data.

TELEIOS joins EO products with open linked data — GeoNames for populated
places, LinkedGeoData/OpenStreetMap for roads, Corine for land cover,
DBpedia for archaeological sites.  Those services are remote and mutable;
this module builds a *deterministic, Greece-like world* covering the
simulator's default window (20-28°E, 34-42°N) and emits it as stRDF, so
every refinement/mapping experiment is exactly reproducible.

All geometries are WGS84 ``strdf:WKT`` literals.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.geometry import LineString, MultiPolygon, Point, Polygon
from repro.rdf import Graph, Literal, Namespace, URIRef
from repro.rdf.namespace import RDF, RDFS
from repro.strabon.strdf import geometry_literal

#: GeoNames-like vocabulary.
GN = Namespace("http://sws.geonames.org/ontology#")
#: LinkedGeoData-like vocabulary (roads).
LGD = Namespace("http://linkedgeodata.org/ontology/")
#: Corine-like land-cover vocabulary.
CLC = Namespace("http://geo.linkedopendata.gr/corine/ontology#")
#: DBpedia-like vocabulary (archaeological sites).
DBP = Namespace("http://dbpedia.org/ontology/")
#: Resource namespace of the synthetic world.
WORLD = Namespace("http://teleios.di.uoa.gr/synthetic/")

_TYPE = URIRef(str(RDF) + "type")
_LABEL = URIRef(str(RDFS) + "label")


class GreeceLikeWorld:
    """A deterministic synthetic geography for the demo window.

    The coastline is a hand-crafted mainland with a Peloponnese-style
    peninsula and two islands; on top of it live Corine-style land-cover
    regions, GeoNames-style towns, DBpedia-style archaeological sites and
    LinkedGeoData-style roads.
    """

    #: Mainland polygon (lon, lat).
    MAINLAND = [
        (21.0, 38.2), (21.8, 37.9), (22.3, 38.0), (23.0, 37.85),
        (23.6, 37.8), (24.2, 38.3), (24.5, 38.9), (24.3, 39.8),
        (24.6, 40.5), (24.2, 41.3), (23.0, 41.6), (21.6, 41.4),
        (20.8, 40.8), (20.4, 39.9), (20.6, 39.0), (20.9, 38.6),
    ]

    #: Peloponnese-style peninsula, connected at a narrow isthmus.
    PENINSULA = [
        (21.2, 37.0), (21.9, 36.6), (22.6, 36.4), (23.3, 36.5),
        (23.55, 37.15), (23.1, 37.75), (22.9, 38.0), (22.6, 38.05),
        (22.4, 37.95), (21.7, 37.8), (21.3, 37.5),
    ]

    ISLAND_A = [(25.5, 35.0), (26.6, 34.9), (26.8, 35.3), (25.8, 35.5)]
    ISLAND_B = [(26.6, 38.9), (27.3, 38.8), (27.4, 39.4), (26.9, 39.5)]

    TOWNS: List[Tuple[str, float, float, int]] = [
        ("Athina", 23.72, 37.98, 3000000),
        ("Patra", 21.73, 38.02, 200000),
        ("Sparti", 22.43, 37.07, 18000),
        ("Kalamata", 22.11, 37.04, 55000),
        ("Thessaloniki", 22.94, 40.64, 800000),
        ("Larissa", 22.42, 39.64, 145000),
        ("Ioannina", 20.85, 39.67, 65000),
        ("Volos", 22.94, 39.36, 86000),
        ("Chania", 25.8, 35.2, 54000),
        ("Mytilini", 26.9, 39.1, 28000),
    ]

    #: Archaeological sites: (name, lon, lat) — all on land.
    SITES: List[Tuple[str, float, float]] = [
        ("Mycenae", 22.75, 37.73),
        ("Olympia", 21.63, 37.64),
        ("Epidaurus", 23.08, 37.60),
        ("Delphi", 22.50, 38.48),
        ("Vergina", 22.31, 40.48),
        ("Knossos", 25.96, 35.30),
    ]

    #: Forest regions (Corine class 311/313 style), on land.
    FORESTS: List[Sequence[Tuple[float, float]]] = [
        [(21.4, 37.2), (22.1, 37.1), (22.2, 37.6), (21.5, 37.6)],
        [(22.5, 38.3), (23.3, 38.2), (23.4, 38.7), (22.6, 38.8)],
        [(21.2, 39.3), (22.2, 39.2), (22.3, 40.0), (21.3, 40.1)],
        [(23.2, 40.8), (24.0, 40.7), (24.1, 41.2), (23.3, 41.3)],
    ]

    #: Agricultural plains.
    FARMLAND: List[Sequence[Tuple[float, float]]] = [
        [(22.2, 39.4), (23.2, 39.3), (23.3, 39.9), (22.3, 40.0)],
        [(21.6, 38.1), (22.4, 38.05), (22.4, 38.35), (21.7, 38.4)],
    ]

    #: Inland water bodies (lakes).
    LAKES: List[Sequence[Tuple[float, float]]] = [
        [(21.1, 40.4), (21.5, 40.4), (21.5, 40.7), (21.1, 40.7)],
        [(22.9, 38.4), (23.15, 38.4), (23.15, 38.55), (22.9, 38.55)],
    ]

    #: Road segments connecting towns (very coarse).
    ROADS: List[Tuple[str, Sequence[Tuple[float, float]]]] = [
        ("A1", [(23.72, 37.98), (23.0, 38.9), (22.6, 39.6), (22.94, 40.64)]),
        ("A8", [(23.72, 37.98), (22.9, 38.05), (21.73, 38.02)]),
        ("A7", [(22.9, 38.0), (22.6, 37.5), (22.43, 37.07), (22.11, 37.04)]),
        ("E92", [(20.85, 39.67), (21.6, 39.6), (22.42, 39.64)]),
    ]

    def __init__(self):
        self._land = MultiPolygon(
            [
                Polygon(self.MAINLAND, srid=4326),
                Polygon(self.PENINSULA, srid=4326),
                Polygon(self.ISLAND_A, srid=4326),
                Polygon(self.ISLAND_B, srid=4326),
            ],
            srid=4326,
        )

    # -- geometry access -------------------------------------------------------

    @property
    def land(self) -> MultiPolygon:
        """Everything that is not sea."""
        return self._land

    def is_land(self, lon: float, lat: float) -> bool:
        return self._land.contains_coord(lon, lat)

    def town_point(self, name: str) -> Point:
        for town, lon, lat, _ in self.TOWNS:
            if town == name:
                return Point(lon, lat, srid=4326)
        raise KeyError(f"unknown town {name!r}")

    def site_point(self, name: str) -> Point:
        for site, lon, lat in self.SITES:
            if site == name:
                return Point(lon, lat, srid=4326)
        raise KeyError(f"unknown site {name!r}")

    def water_bodies(self) -> List[Polygon]:
        return [Polygon(coords, srid=4326) for coords in self.LAKES]

    def forests(self) -> List[Polygon]:
        return [Polygon(coords, srid=4326) for coords in self.FORESTS]

    # -- linked data -----------------------------------------------------------

    def to_rdf(self) -> Graph:
        """The whole world as one linked-data graph."""
        g = Graph()
        self._emit_coastline(g)
        self._emit_landcover(g)
        self._emit_towns(g)
        self._emit_sites(g)
        self._emit_roads(g)
        return g

    def _emit_coastline(self, g: Graph) -> None:
        land = URIRef(str(WORLD) + "land")
        g.add((land, _TYPE, URIRef(str(CLC) + "LandMass")))
        g.add((land, _LABEL, Literal("synthetic Greek landmass")))
        g.add(
            (
                land,
                URIRef(str(CLC) + "hasGeometry"),
                geometry_literal(self._land),
            )
        )

    def _emit_landcover(self, g: Graph) -> None:
        groups = (
            ("forest", "Forest", self.FORESTS),
            ("farmland", "AgriculturalArea", self.FARMLAND),
            ("lake", "WaterBody", self.LAKES),
        )
        for prefix, cls, polys in groups:
            for i, coords in enumerate(polys):
                node = URIRef(f"{WORLD}{prefix}{i}")
                g.add((node, _TYPE, URIRef(str(CLC) + cls)))
                g.add(
                    (
                        node,
                        URIRef(str(CLC) + "hasGeometry"),
                        geometry_literal(Polygon(coords, srid=4326)),
                    )
                )
                g.add((node, _LABEL, Literal(f"{prefix} {i}")))

    def _emit_towns(self, g: Graph) -> None:
        for name, lon, lat, population in self.TOWNS:
            node = URIRef(f"{WORLD}town/{name}")
            g.add((node, _TYPE, URIRef(str(GN) + "PopulatedPlace")))
            g.add((node, URIRef(str(GN) + "name"), Literal(name)))
            g.add(
                (
                    node,
                    URIRef(str(GN) + "population"),
                    Literal(population),
                )
            )
            g.add(
                (
                    node,
                    URIRef(str(GN) + "hasGeometry"),
                    geometry_literal(Point(lon, lat, srid=4326)),
                )
            )

    def _emit_sites(self, g: Graph) -> None:
        for name, lon, lat in self.SITES:
            node = URIRef(f"{WORLD}site/{name}")
            g.add((node, _TYPE, URIRef(str(DBP) + "ArchaeologicalSite")))
            g.add((node, _LABEL, Literal(name)))
            g.add(
                (
                    node,
                    URIRef(str(DBP) + "hasGeometry"),
                    geometry_literal(Point(lon, lat, srid=4326)),
                )
            )

    def _emit_roads(self, g: Graph) -> None:
        for name, coords in self.ROADS:
            node = URIRef(f"{WORLD}road/{name}")
            g.add((node, _TYPE, URIRef(str(LGD) + "Motorway")))
            g.add((node, _LABEL, Literal(name)))
            g.add(
                (
                    node,
                    URIRef(str(LGD) + "hasGeometry"),
                    geometry_literal(LineString(coords, srid=4326)),
                )
            )
