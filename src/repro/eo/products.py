"""The EO product model: processing levels and product records."""

from __future__ import annotations

import enum
from datetime import datetime
from typing import Any, Dict, Optional

from repro.geometry import Envelope, Polygon


class ProcessingLevel(enum.IntEnum):
    """Standard EO processing levels (paper §2: 'Level 1, 2 etc. in EO
    jargon; raw data is Level 0')."""

    L0_RAW = 0
    L1_CALIBRATED = 1
    L2_DERIVED = 2


class Product:
    """One archived EO product (raw scene or derived output)."""

    def __init__(
        self,
        product_id: str,
        mission: str,
        sensor: str,
        level: ProcessingLevel,
        acquired: datetime,
        extent: Polygon,
        path: Optional[str] = None,
        parent_id: Optional[str] = None,
        metadata: Optional[Dict[str, Any]] = None,
    ):
        self.product_id = product_id
        self.mission = mission
        self.sensor = sensor
        self.level = ProcessingLevel(level)
        self.acquired = acquired
        self.extent = extent
        self.path = path
        self.parent_id = parent_id
        self.metadata: Dict[str, Any] = dict(metadata or {})

    @property
    def envelope(self) -> Envelope:
        return self.extent.envelope

    def derive(
        self,
        product_id: str,
        level: ProcessingLevel,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> "Product":
        """A child product at a higher processing level."""
        return Product(
            product_id=product_id,
            mission=self.mission,
            sensor=self.sensor,
            level=level,
            acquired=self.acquired,
            extent=self.extent,
            parent_id=self.product_id,
            metadata=metadata,
        )

    def __repr__(self) -> str:
        return (
            f"<Product {self.product_id} {self.mission}/{self.sensor} "
            f"L{int(self.level)} {self.acquired:%Y-%m-%dT%H:%M}>"
        )
