"""The Earth-Observation domain layer.

The paper's data comes from operational archives (MSG/SEVIRI payload data
at NOA, the DLR multi-mission archive) that are not redistributable.  This
package provides the closest synthetic equivalents:

* :mod:`repro.eo.seviri` — a parametric MSG/SEVIRI scene simulator with a
  physically-motivated fire/cloud/sea model, known ground truth and a
  binary ``.nat``-style file format;
* :mod:`repro.eo.products` — the EO product model (processing levels L0-L2,
  acquisition metadata);
* :mod:`repro.eo.linkeddata` — deterministic GeoNames/LinkedGeoData/
  Corine-style auxiliary geospatial data sets for a Greece-like region,
  emitted as stRDF linked data.
"""

from repro.eo.products import Product, ProcessingLevel
from repro.eo.seviri import (
    SceneSpec,
    SeviriScene,
    generate_scene,
    read_scene,
    write_scene,
)
from repro.eo.linkeddata import GreeceLikeWorld

__all__ = [
    "GreeceLikeWorld",
    "ProcessingLevel",
    "Product",
    "SceneSpec",
    "SeviriScene",
    "generate_scene",
    "read_scene",
    "write_scene",
]
