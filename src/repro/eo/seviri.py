"""A synthetic MSG/SEVIRI scene simulator with a parametric fire model.

The NOA fire service works on MSG/SEVIRI geostationary imagery; the real
payload data is proprietary, so this module simulates the two channels the
hotspot algorithms use:

* ``t039`` — the 3.9 µm brightness temperature (very sensitive to sub-pixel
  fires),
* ``t108`` — the 10.8 µm window channel (weakly sensitive to fires, good
  thermal background).

The simulated physics, all parametric and seeded (deterministic):

* a diurnal land-surface temperature cycle,
* a cooler, thermally flat sea (from the supplied land polygon),
* cold cloud blobs that *mask* everything beneath them,
* fire fronts: clusters of pixels with a strong 3.9 µm anomaly and a
  weaker 10.8 µm anomaly, placed on land outside clouds,
* burn scars: broad connected regions of recently burnt, low-albedo
  land running a few Kelvin hot in *both* channels (small 3.9−10.8 µm
  difference, unlike active fires) — the input of the second NOA-style
  application chain (burn-scar mapping).

Ground truth (fire/cloud/sea/scar masks) is retained, which turns the paper's
demo into measurable experiments: thematic accuracy of the chain and of
the refinement step can be scored exactly.

Scenes serialise to a binary ``.nat``-style format (header + float32
planes) so the Data Vault has a real external file format to manage.
"""

from __future__ import annotations

import math
import os
import struct
from datetime import datetime
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry import Envelope, Polygon
from repro.geometry.multi import MultiPolygon

_MAGIC = b"RSAT"
#: v2 carried 3 ground-truth masks (fire/cloud/sea); v3 appends the
#: burn-scar mask.  The reader still accepts v2 files (zero scar mask).
_VERSION = 3
_BAND_NAMES = ("t039", "t108")

#: Kelvin baselines of the simulation.
LAND_BASE_K = 295.0
SEA_BASE_K = 288.5
DIURNAL_AMPLITUDE_K = 7.0
CLOUD_DEPRESSION_K = 45.0
#: Burn scars raise the 10.8 µm background by at least this much.
SCAR_T108_MIN_K = 5.0
SCAR_T108_MAX_K = 8.0


class SceneSpec:
    """Parameters of one simulated SEVIRI acquisition."""

    def __init__(
        self,
        width: int = 128,
        height: int = 128,
        window: Tuple[float, float, float, float] = (20.0, 34.0, 28.0, 42.0),
        acquired: Optional[datetime] = None,
        n_fires: int = 4,
        fire_pixels: Tuple[int, int] = (3, 12),
        n_clouds: int = 3,
        n_glints: int = 0,
        n_warm_surfaces: int = 0,
        n_burn_scars: int = 0,
        scar_pixels: Tuple[int, int] = (18, 48),
        seed: int = 0,
        sensor: str = "SEVIRI",
        mission: str = "MSG2",
    ):
        if width < 8 or height < 8:
            raise ValueError("scene must be at least 8x8 pixels")
        self.width = width
        self.height = height
        self.window = window  # (lon_min, lat_min, lon_max, lat_max)
        self.acquired = acquired or datetime(2007, 8, 25, 12, 0)
        self.n_fires = n_fires
        self.fire_pixels = fire_pixels
        self.n_clouds = n_clouds
        self.n_glints = n_glints
        self.n_warm_surfaces = n_warm_surfaces
        self.n_burn_scars = n_burn_scars
        self.scar_pixels = scar_pixels
        self.seed = seed
        self.sensor = sensor
        self.mission = mission

    @property
    def envelope(self) -> Envelope:
        lon0, lat0, lon1, lat1 = self.window
        return Envelope(lon0, lat0, lon1, lat1)

    def extent_polygon(self) -> Polygon:
        return Polygon.from_envelope(self.envelope, srid=4326)


class SeviriScene:
    """A simulated acquisition: band planes plus ground-truth masks.

    Planes are indexed ``[row, col]`` with row 0 at the *north* edge
    (image convention).
    """

    def __init__(
        self,
        spec: SceneSpec,
        bands: Dict[str, np.ndarray],
        fire_mask: np.ndarray,
        cloud_mask: np.ndarray,
        sea_mask: np.ndarray,
        scar_mask: Optional[np.ndarray] = None,
    ):
        self.spec = spec
        self.bands = bands
        self.fire_mask = fire_mask
        self.cloud_mask = cloud_mask
        self.sea_mask = sea_mask
        if scar_mask is None:
            scar_mask = np.zeros((spec.height, spec.width), dtype=bool)
        self.scar_mask = scar_mask

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.spec.height, self.spec.width)

    def band(self, name: str) -> np.ndarray:
        try:
            return self.bands[name]
        except KeyError:
            raise KeyError(
                f"no band {name!r}; have {sorted(self.bands)}"
            ) from None

    # -- georeferencing -------------------------------------------------------

    def pixel_to_lonlat(self, row: float, col: float) -> Tuple[float, float]:
        """Centre of pixel (row, col) in WGS84."""
        lon0, lat0, lon1, lat1 = self.spec.window
        lon = lon0 + (col + 0.5) / self.spec.width * (lon1 - lon0)
        lat = lat1 - (row + 0.5) / self.spec.height * (lat1 - lat0)
        return (lon, lat)

    def lonlat_to_pixel(self, lon: float, lat: float) -> Tuple[int, int]:
        """Pixel (row, col) containing a WGS84 position."""
        lon0, lat0, lon1, lat1 = self.spec.window
        col = int((lon - lon0) / (lon1 - lon0) * self.spec.width)
        row = int((lat1 - lat) / (lat1 - lat0) * self.spec.height)
        return (
            min(max(row, 0), self.spec.height - 1),
            min(max(col, 0), self.spec.width - 1),
        )

    def pixel_polygon(self, row: int, col: int) -> Polygon:
        """The WGS84 footprint of one pixel."""
        lon0, lat0, lon1, lat1 = self.spec.window
        dlon = (lon1 - lon0) / self.spec.width
        dlat = (lat1 - lat0) / self.spec.height
        west = lon0 + col * dlon
        north = lat1 - row * dlat
        return Polygon(
            [
                (west, north - dlat),
                (west + dlon, north - dlat),
                (west + dlon, north),
                (west, north),
            ],
            srid=4326,
        )

    def __repr__(self) -> str:
        return (
            f"<SeviriScene {self.spec.mission} {self.spec.width}x"
            f"{self.spec.height} fires={int(self.fire_mask.sum())}px>"
        )


def _diurnal_offset(acquired: datetime) -> float:
    """Land-surface temperature offset for the local solar time."""
    hour = acquired.hour + acquired.minute / 60.0
    # Peak at ~14:00 local, trough at ~02:00.
    return DIURNAL_AMPLITUDE_K * math.sin(
        (hour - 8.0) / 24.0 * 2.0 * math.pi
    )


def _rasterize_land(
    spec: SceneSpec, land: Optional[Polygon | MultiPolygon]
) -> np.ndarray:
    """Boolean sea mask (True = sea) from a land polygon, on pixel centres."""
    sea = np.zeros((spec.height, spec.width), dtype=bool)
    if land is None:
        return sea
    lon0, lat0, lon1, lat1 = spec.window
    lons = lon0 + (np.arange(spec.width) + 0.5) / spec.width * (lon1 - lon0)
    lats = lat1 - (np.arange(spec.height) + 0.5) / spec.height * (lat1 - lat0)
    contains = (
        land.contains_coord
        if hasattr(land, "contains_coord")
        else lambda x, y: land.locate_point(x, y) >= 0
    )
    for r in range(spec.height):
        for c in range(spec.width):
            if not contains(float(lons[c]), float(lats[r])):
                sea[r, c] = True
    return sea


def _cloud_field(spec: SceneSpec, rng: np.random.Generator) -> np.ndarray:
    """Cloud optical-depth plane in [0, 1] built from Gaussian blobs."""
    field = np.zeros((spec.height, spec.width), dtype=float)
    rows = np.arange(spec.height)[:, None]
    cols = np.arange(spec.width)[None, :]
    for _ in range(spec.n_clouds):
        cr = rng.uniform(0, spec.height)
        cc = rng.uniform(0, spec.width)
        sr = rng.uniform(spec.height * 0.03, spec.height * 0.12)
        sc = rng.uniform(spec.width * 0.03, spec.width * 0.15)
        depth = rng.uniform(0.5, 1.0)
        blob = depth * np.exp(
            -(((rows - cr) / sr) ** 2 + ((cols - cc) / sc) ** 2) / 2.0
        )
        field = np.maximum(field, blob)
    return field


def _grow_fire(
    rng: np.random.Generator,
    start: Tuple[int, int],
    n_pixels: int,
    shape: Tuple[int, int],
    blocked: np.ndarray,
) -> List[Tuple[int, int]]:
    """Grow a connected fire front from ``start`` avoiding blocked pixels."""
    frontier = [start]
    chosen: List[Tuple[int, int]] = []
    seen = {start}
    while frontier and len(chosen) < n_pixels:
        index = rng.integers(0, len(frontier))
        r, c = frontier.pop(int(index))
        if blocked[r, c]:
            continue
        chosen.append((r, c))
        for dr, dc in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nr, nc = r + dr, c + dc
            if (
                0 <= nr < shape[0]
                and 0 <= nc < shape[1]
                and (nr, nc) not in seen
            ):
                seen.add((nr, nc))
                frontier.append((nr, nc))
    return chosen


def generate_scene(
    spec: SceneSpec,
    land: Optional[Polygon | MultiPolygon] = None,
    fire_seeds: Optional[Sequence[Tuple[float, float]]] = None,
) -> SeviriScene:
    """Simulate one acquisition.

    ``land`` (WGS84 polygon) drives the sea mask; ``fire_seeds`` optionally
    pins fire locations to given (lon, lat) positions — otherwise fires are
    placed uniformly on usable land pixels.
    """
    rng = np.random.default_rng(spec.seed)
    shape = (spec.height, spec.width)
    sea = _rasterize_land(spec, land)
    diurnal = _diurnal_offset(spec.acquired)

    # Thermal background with mild spatial structure.
    structure = rng.normal(0.0, 1.2, size=shape)
    structure = _smooth(structure)
    t108 = np.where(
        sea, SEA_BASE_K + 0.3 * structure, LAND_BASE_K + diurnal + structure
    )
    t039 = t108 + np.where(sea, 0.2, 1.0) + rng.normal(0.0, 0.35, size=shape)

    # Clouds depress both channels; deep cloud defines the cloud mask.
    cloud_field = _cloud_field(spec, rng)
    t108 = t108 - CLOUD_DEPRESSION_K * cloud_field
    t039 = t039 - CLOUD_DEPRESSION_K * cloud_field
    cloud_mask = cloud_field > 0.35

    # Warm surfaces: broad sun-heated dry-terrain anomalies where the
    # 3.9um channel runs hot relative to 10.8um over a wide area.  They
    # are not fires — a fixed-threshold classifier flags their cores,
    # while a contextual test sees only a smoothly elevated background.
    warm_mask = np.zeros(shape, dtype=bool)
    rows = np.arange(spec.height)[:, None]
    cols = np.arange(spec.width)[None, :]
    for _ in range(spec.n_warm_surfaces):
        cr = rng.uniform(0, spec.height)
        cc = rng.uniform(0, spec.width)
        sr = rng.uniform(spec.height * 0.10, spec.height * 0.20)
        sc = rng.uniform(spec.width * 0.10, spec.width * 0.20)
        blob = np.exp(
            -(((rows - cr) / sr) ** 2 + ((cols - cc) / sc) ** 2) / 2.0
        )
        blob = np.where(sea | cloud_mask, 0.0, blob)
        t039 = t039 + 22.0 * blob
        t108 = t108 + 4.0 * blob
        warm_mask |= blob > 0.4

    # Fires on land, outside clouds.
    fire_mask = np.zeros(shape, dtype=bool)
    blocked = sea | cloud_mask
    usable = np.nonzero(~blocked)
    scene = SeviriScene(spec, {}, fire_mask, cloud_mask, sea)
    starts: List[Tuple[int, int]] = []
    if fire_seeds is not None:
        for lon, lat in fire_seeds:
            starts.append(scene.lonlat_to_pixel(lon, lat))
    else:
        count = len(usable[0])
        for _ in range(spec.n_fires):
            if count == 0:
                break
            k = int(rng.integers(0, count))
            starts.append((int(usable[0][k]), int(usable[1][k])))
    lo, hi = spec.fire_pixels
    for start in starts:
        n_pixels = int(rng.integers(lo, hi + 1))
        for r, c in _grow_fire(rng, start, n_pixels, shape, blocked):
            fire_mask[r, c] = True
            # 3.9um reacts strongly to sub-pixel fire, 10.8um mildly.
            t039[r, c] += rng.uniform(12.0, 28.0)
            t108[r, c] += rng.uniform(2.0, 6.0)

    # Burn scars: recently burnt low-albedo land runs a few Kelvin hot
    # in both channels under daytime heating, with a *small* 3.9-10.8um
    # difference — a fire detector must not flag them, while the
    # burn-scar chain maps them from the elevated 10.8um background.
    # Drawn only when requested so pre-v3 seeds stay bit-identical.
    scar_mask = np.zeros(shape, dtype=bool)
    scar_blocked = sea | cloud_mask | fire_mask
    scar_usable = np.nonzero(~scar_blocked)
    s_lo, s_hi = spec.scar_pixels
    for _ in range(spec.n_burn_scars):
        if len(scar_usable[0]) == 0:
            break
        k = int(rng.integers(0, len(scar_usable[0])))
        start = (int(scar_usable[0][k]), int(scar_usable[1][k]))
        n_pixels = int(rng.integers(s_lo, s_hi + 1))
        t108_bump = rng.uniform(SCAR_T108_MIN_K, SCAR_T108_MAX_K)
        t039_bump = t108_bump + rng.uniform(0.5, 2.0)
        for r, c in _grow_fire(rng, start, n_pixels, shape, scar_blocked):
            scar_mask[r, c] = True
            t108[r, c] += t108_bump
            t039[r, c] += t039_bump

    # Sun-glint artifacts: spurious 3.9um spikes over open sea.  They are
    # *not* fires (absent from the truth mask) — they exist to give the
    # refinement step genuine false positives to remove, mimicking the
    # low-resolution sensor artifacts the paper describes.
    # Erode the sea mask so glints land in *open* sea (away from the
    # coastline) — their pixel footprint then lies fully in the sea.
    open_sea = sea.copy()
    for shift in ((1, 0), (-1, 0), (0, 1), (0, -1)):
        open_sea &= np.roll(sea, shift, axis=(0, 1))
    open_sea[0, :] = open_sea[-1, :] = False  # roll wraps; borders are
    open_sea[:, 0] = open_sea[:, -1] = False  # never "open" sea
    sea_cells = np.nonzero(open_sea & ~cloud_mask)
    for _ in range(spec.n_glints):
        if len(sea_cells[0]) == 0:
            break
        k = int(rng.integers(0, len(sea_cells[0])))
        r, c = int(sea_cells[0][k]), int(sea_cells[1][k])
        t039[r, c] += rng.uniform(25.0, 35.0)
        t108[r, c] += rng.uniform(1.0, 3.0)

    scene.bands = {
        "t039": t039.astype(np.float32),
        "t108": t108.astype(np.float32),
    }
    scene.fire_mask = fire_mask
    scene.scar_mask = scar_mask
    return scene


def _smooth(field: np.ndarray) -> np.ndarray:
    """Cheap 3x3 box smoothing (keeps the simulator dependency-free)."""
    out = field.copy()
    out[1:, :] += field[:-1, :]
    out[:-1, :] += field[1:, :]
    out[:, 1:] += field[:, :-1]
    out[:, :-1] += field[:, 1:]
    return out / 5.0


# ---------------------------------------------------------------------------
# Binary file format (the Data Vault's external format)
# ---------------------------------------------------------------------------

_HEADER = struct.Struct("<4sHIIB32s4d16s")


def write_scene(scene: SeviriScene, path: str) -> None:
    """Serialise a scene to the binary ``.nat``-style format."""
    spec = scene.spec
    with open(path, "wb") as f:
        f.write(
            _HEADER.pack(
                _MAGIC,
                _VERSION,
                spec.width,
                spec.height,
                len(_BAND_NAMES),
                spec.acquired.isoformat().encode()[:32].ljust(32, b"\0"),
                *spec.window,
                f"{spec.mission}/{spec.sensor}".encode()[:16].ljust(16, b"\0"),
            )
        )
        for name in _BAND_NAMES:
            f.write(scene.bands[name].astype("<f4").tobytes())
        # Ground-truth masks ride along so experiments can score accuracy
        # (a real archive would keep them in validation layers).
        for mask in (
            scene.fire_mask,
            scene.cloud_mask,
            scene.sea_mask,
            scene.scar_mask,
        ):
            f.write(np.packbits(mask).tobytes())


def read_header(path: str) -> Dict[str, object]:
    """Read only the header (the Data Vault's cheap metadata pass)."""
    with open(path, "rb") as f:
        raw = f.read(_HEADER.size)
    if len(raw) < _HEADER.size:
        raise ValueError(f"truncated scene file {path!r}")
    (
        magic, version, width, height, n_bands, acquired,
        lon0, lat0, lon1, lat1, sensor,
    ) = _HEADER.unpack(raw)
    if magic != _MAGIC:
        raise ValueError(f"not a RSAT scene file: {path!r}")
    mission, _, sensor_name = (
        sensor.rstrip(b"\0").decode().partition("/")
    )
    return {
        "version": version,
        "width": width,
        "height": height,
        "bands": n_bands,
        "acquired": acquired.rstrip(b"\0").decode(),
        "window": (lon0, lat0, lon1, lat1),
        "mission": mission,
        "sensor": sensor_name or "SEVIRI",
    }


def read_scene(path: str) -> SeviriScene:
    """Deserialise a scene file (payload + ground-truth masks)."""
    header = read_header(path)
    width = int(header["width"])
    height = int(header["height"])
    spec = SceneSpec(
        width=width,
        height=height,
        window=tuple(header["window"]),  # type: ignore[arg-type]
        acquired=datetime.fromisoformat(str(header["acquired"])),
        mission=str(header["mission"]),
        sensor=str(header["sensor"]),
    )
    plane = width * height
    bands: Dict[str, np.ndarray] = {}
    with open(path, "rb") as f:
        f.seek(_HEADER.size)
        for name in _BAND_NAMES:
            data = np.frombuffer(f.read(plane * 4), dtype="<f4")
            bands[name] = data.reshape(height, width).copy()
        masks = []
        packed_len = (plane + 7) // 8
        # v2 files carry 3 masks; v3 appends the burn-scar mask.
        n_masks = 3 if int(header["version"]) < 3 else 4
        for _ in range(n_masks):
            raw = np.frombuffer(f.read(packed_len), dtype=np.uint8)
            masks.append(
                np.unpackbits(raw)[:plane].reshape(height, width).astype(bool)
            )
    scar = masks[3] if n_masks == 4 else None
    return SeviriScene(spec, bands, masks[0], masks[1], masks[2], scar)


def is_scene_file(path: str) -> bool:
    """Cheap probe used by the vault's format registry."""
    if not os.path.isfile(path):
        return False
    try:
        with open(path, "rb") as f:
            return f.read(4) == _MAGIC
    except OSError:
        return False
