"""Metadata extraction: EO products described in stRDF.

Products are published with the NOA ontology vocabulary so that catalog
queries like the paper's "find an image taken by a Meteosat second
generation satellite on August 25, 2007 covering the Peloponnese" become
single stSPARQL queries.
"""

from __future__ import annotations

from repro.eo.products import Product
from repro.rdf import Graph, Literal, URIRef
from repro.rdf.namespace import NOA, RDF, XSD
from repro.strabon.strdf import geometry_literal

_TYPE = URIRef(str(RDF) + "type")

#: Ready-to-paste prefix block for catalog queries.
NOA_PREFIXES = (
    "PREFIX noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#>\n"
    "PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>\n"
    "PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\n"
    "PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>\n"
)


def product_uri(product: Product) -> URIRef:
    return URIRef(str(NOA) + "product/" + product.product_id)


def product_to_rdf(product: Product) -> Graph:
    """Describe one product as stRDF."""
    g = Graph()
    node = product_uri(product)
    g.add((node, _TYPE, URIRef(str(NOA) + "Product")))
    g.add(
        (
            node,
            URIRef(str(NOA) + "hasProductId"),
            Literal(product.product_id),
        )
    )
    g.add((node, URIRef(str(NOA) + "hasMission"), Literal(product.mission)))
    g.add((node, URIRef(str(NOA) + "hasSensor"), Literal(product.sensor)))
    g.add(
        (
            node,
            URIRef(str(NOA) + "hasProcessingLevel"),
            Literal(int(product.level)),
        )
    )
    g.add(
        (
            node,
            URIRef(str(NOA) + "hasAcquisitionTime"),
            Literal(
                product.acquired.isoformat(),
                datatype=str(XSD) + "dateTime",
            ),
        )
    )
    g.add(
        (
            node,
            URIRef(str(NOA) + "hasGeometry"),
            geometry_literal(product.extent),
        )
    )
    if product.path:
        g.add(
            (node, URIRef(str(NOA) + "hasFile"), Literal(product.path))
        )
    if product.parent_id:
        g.add(
            (
                node,
                URIRef(str(NOA) + "isDerivedFrom"),
                URIRef(str(NOA) + "product/" + product.parent_id),
            )
        )
    for key, value in sorted(product.metadata.items()):
        g.add((node, URIRef(str(NOA) + key), Literal(value)))
    return g
