"""Data Vault format handlers for the EO archive formats."""

from __future__ import annotations

from repro.eo import seviri
from repro.mdb.datavault import FormatHandler
from repro.mdb.sciql import Dimension, SciArray
from repro.mdb.types import DOUBLE


def scene_to_array(path: str) -> SciArray:
    """Ingest a scene file into a SciQL array.

    The array has dimensions ``row``/``col`` and one attribute per band
    plus the ground-truth ``truth_fire``/``truth_scar`` planes (kept
    for scoring).
    """
    scene = seviri.read_scene(path)
    h, w = scene.shape
    array = SciArray(
        "scene",
        [Dimension("row", 0, h), Dimension("col", 0, w)],
        [
            ("t039", DOUBLE),
            ("t108", DOUBLE),
            ("truth_fire", DOUBLE),
            ("truth_scar", DOUBLE),
        ],
    )
    array.set_attribute("t039", scene.band("t039").astype(float))
    array.set_attribute("t108", scene.band("t108").astype(float))
    array.set_attribute("truth_fire", scene.fire_mask.astype(float))
    array.set_attribute("truth_scar", scene.scar_mask.astype(float))
    return array


def seviri_format_handler() -> FormatHandler:
    """The vault handler for the synthetic SEVIRI ``.nat``-style format."""
    return FormatHandler(
        name="msg-seviri",
        probe=seviri.is_scene_file,
        read_metadata=seviri.read_header,
        ingest=scene_to_array,
    )
