"""The ingestion tier (paper §3, tier 1).

Components that move external satellite files into the database world:

* :mod:`repro.ingest.handlers` — Data Vault format handlers for the
  synthetic SEVIRI archive format;
* :mod:`repro.ingest.harvest` — the ingestion pipeline: file → SciQL
  arrays + product records + stRDF metadata;
* :mod:`repro.ingest.features` — content extraction: patch cutting and
  feature-vector computation (texture/spectral descriptors);
* :mod:`repro.ingest.metadata` — metadata extraction into stRDF.
"""

from repro.ingest.handlers import seviri_format_handler
from repro.ingest.harvest import IngestionReport, Ingestor
from repro.ingest.features import (
    Patch,
    PatchGrid,
    extract_patches,
    FEATURE_NAMES,
)
from repro.ingest.metadata import product_to_rdf, NOA_PREFIXES

__all__ = [
    "FEATURE_NAMES",
    "IngestionReport",
    "Ingestor",
    "NOA_PREFIXES",
    "Patch",
    "PatchGrid",
    "extract_patches",
    "product_to_rdf",
    "seviri_format_handler",
]
