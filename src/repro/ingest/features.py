"""Content extraction: image patches and feature vectors.

The paper's ingestion tier "creates a set of patches by cutting images
into square patches [and] feature vectors, implying that data shall be
compressed into a compact multi-element feature vector representation".

For each square patch this module computes an 8-element descriptor per
band pair (t039, t108):

0. mean t039                     4. mean spectral difference (t039-t108)
1. std t039                      5. gradient energy of t039
2. mean t108                     6. GLCM contrast of t039 (texture)
3. std t108                      7. GLCM homogeneity of t039 (texture)

The texture features use a quantised grey-level co-occurrence matrix with
a (0, 1) offset — the classic Haralick construction, small enough to stay
fast in pure numpy.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from repro.eo.seviri import SeviriScene
from repro.geometry import Polygon

FEATURE_NAMES = (
    "mean_t039",
    "std_t039",
    "mean_t108",
    "std_t108",
    "mean_diff",
    "gradient_energy",
    "glcm_contrast",
    "glcm_homogeneity",
)

_GLCM_LEVELS = 16


class Patch:
    """One square image patch with its descriptor and georeference."""

    def __init__(
        self,
        row: int,
        col: int,
        size: int,
        features: np.ndarray,
        footprint: Polygon,
        truth_fire_fraction: float,
        truth_scar_fraction: float = 0.0,
    ):
        self.row = row
        self.col = col
        self.size = size
        self.features = features
        self.footprint = footprint
        self.truth_fire_fraction = truth_fire_fraction
        self.truth_scar_fraction = truth_scar_fraction

    @property
    def key(self) -> Tuple[int, int]:
        return (self.row, self.col)

    def __repr__(self) -> str:
        return f"<Patch ({self.row},{self.col}) size={self.size}>"


class PatchGrid:
    """All patches of one scene, with a feature matrix view."""

    def __init__(self, patches: List[Patch], patch_size: int):
        self.patches = patches
        self.patch_size = patch_size

    def feature_matrix(self) -> np.ndarray:
        """(n_patches, n_features) float matrix."""
        if not self.patches:
            return np.zeros((0, len(FEATURE_NAMES)))
        return np.vstack([p.features for p in self.patches])

    def truth_labels(
        self,
        fire_threshold: float = 0.02,
        scar_threshold: float = 0.25,
    ) -> List[str]:
        """Ground-truth concept per patch (fire / burned / other).

        Fires dominate: a patch containing both an active front and old
        scar pixels is labelled ``fire``.  ``burned`` only appears for
        scenes generated with ``n_burn_scars > 0``; legacy fire-only
        grids keep the historical fire/other labelling.
        """
        labels = []
        for p in self.patches:
            if p.truth_fire_fraction > fire_threshold:
                labels.append("fire")
            elif p.truth_scar_fraction > scar_threshold:
                labels.append("burned")
            else:
                labels.append("other")
        return labels

    def __len__(self) -> int:
        return len(self.patches)

    def __iter__(self) -> Iterator[Patch]:
        return iter(self.patches)


def glcm_features(tile: np.ndarray) -> Tuple[float, float]:
    """(contrast, homogeneity) of a tile's grey-level co-occurrence matrix."""
    lo = float(tile.min())
    hi = float(tile.max())
    if hi - lo < 1e-9:
        return (0.0, 1.0)
    levels = np.clip(
        ((tile - lo) / (hi - lo) * (_GLCM_LEVELS - 1)).astype(int),
        0,
        _GLCM_LEVELS - 1,
    )
    left = levels[:, :-1].reshape(-1)
    right = levels[:, 1:].reshape(-1)
    glcm = np.zeros((_GLCM_LEVELS, _GLCM_LEVELS), dtype=float)
    np.add.at(glcm, (left, right), 1.0)
    total = glcm.sum()
    if total == 0:
        return (0.0, 1.0)
    glcm /= total
    i_idx, j_idx = np.meshgrid(
        np.arange(_GLCM_LEVELS), np.arange(_GLCM_LEVELS), indexing="ij"
    )
    diff = i_idx - j_idx
    contrast = float((glcm * diff ** 2).sum())
    homogeneity = float((glcm / (1.0 + np.abs(diff))).sum())
    return (contrast, homogeneity)


def patch_features(t039: np.ndarray, t108: np.ndarray) -> np.ndarray:
    """The 8-element descriptor of one patch."""
    gy, gx = np.gradient(t039.astype(float))
    contrast, homogeneity = glcm_features(t039)
    return np.array(
        [
            float(t039.mean()),
            float(t039.std()),
            float(t108.mean()),
            float(t108.std()),
            float((t039 - t108).mean()),
            float((gx ** 2 + gy ** 2).mean()),
            contrast,
            homogeneity,
        ]
    )


def extract_patches(
    scene: SeviriScene,
    patch_size: int = 16,
    skip_sea: bool = False,
) -> PatchGrid:
    """Cut a scene into non-overlapping square patches with descriptors.

    ``skip_sea=True`` drops patches that are entirely sea (no information
    for landcover/fire concepts).
    """
    if patch_size < 2:
        raise ValueError("patch_size must be >= 2")
    t039 = scene.band("t039")
    t108 = scene.band("t108")
    h, w = scene.shape
    patches: List[Patch] = []
    for row in range(0, h - patch_size + 1, patch_size):
        for col in range(0, w - patch_size + 1, patch_size):
            sl = (
                slice(row, row + patch_size),
                slice(col, col + patch_size),
            )
            if skip_sea and scene.sea_mask[sl].all():
                continue
            features = patch_features(t039[sl], t108[sl])
            footprint = _patch_footprint(scene, row, col, patch_size)
            truth = float(scene.fire_mask[sl].mean())
            patches.append(
                Patch(row, col, patch_size, features, footprint, truth)
            )
    return PatchGrid(patches, patch_size)


def _patch_footprint(
    scene: SeviriScene, row: int, col: int, size: int
) -> Polygon:
    nw = scene.pixel_polygon(row, col)
    se = scene.pixel_polygon(row + size - 1, col + size - 1)
    env = nw.envelope.union(se.envelope)
    return Polygon.from_envelope(env, srid=4326)
