"""The ingestion pipeline: archive files → database tier.

The :class:`Ingestor` wires the three destinations of Figure 2's arrows:

* the file is cataloged in the **Data Vault** (lazy payload access),
* its pixels become a **SciQL array** in the MonetDB-style database,
* a **product record** plus **stRDF metadata** land in the relational
  catalog and in Strabon.
"""

from __future__ import annotations

import os
from datetime import datetime
from typing import Dict, List, Optional

from repro import faults, obs, resilience
from repro.eo.products import ProcessingLevel, Product
from repro.eo.seviri import read_header
from repro.geometry import Envelope, Polygon
from repro.ingest.handlers import seviri_format_handler
from repro.ingest.metadata import product_to_rdf, product_uri
from repro.mdb import Database
from repro.mdb.datavault import DataVault
from repro.mdb.sciql import SciArray
from repro.strabon import StrabonStore


class IngestFailure:
    """One archive file that failed to ingest inside a directory run.

    Mirrors :class:`repro.noa.chain.ChainFailure`: the failure occupies
    the file's slot in the report instead of aborting the run, and the
    original exception is preserved for the caller.
    """

    __slots__ = ("path", "error")

    def __init__(self, path: str, error: BaseException):
        self.path = path
        self.error = error

    @property
    def ok(self) -> bool:
        return False

    def __repr__(self) -> str:
        return (
            f"<IngestFailure {os.path.basename(self.path)!r} "
            f"{type(self.error).__name__}: {self.error}>"
        )


class IngestionReport:
    """What one ingestion run produced (and what it failed to)."""

    def __init__(self):
        self.products: List[Product] = []
        self.array_names: List[str] = []
        self.failures: List[IngestFailure] = []
        self.metadata_triples = 0

    @property
    def ok(self) -> bool:
        """True when every attempted file produced a product."""
        return not self.failures

    def __repr__(self) -> str:
        return (
            f"<IngestionReport products={len(self.products)} "
            f"failures={len(self.failures)} "
            f"triples={self.metadata_triples}>"
        )


class Ingestor:
    """Ingests SEVIRI archive files into the database tier."""

    def __init__(
        self,
        db: Database,
        store: StrabonStore,
        vault: Optional[DataVault] = None,
        retry: Optional[resilience.RetryPolicy] = None,
    ):
        self.db = db
        self.store = store
        self.retry = retry or resilience.DEFAULT_RETRY
        # `is not None` matters: an empty vault is falsy (it has __len__).
        self.vault = vault if vault is not None else DataVault("eo-archive")
        if "msg-seviri" not in self.vault.formats():
            self.vault.register_format(seviri_format_handler())
        if not self.db.catalog.has_table("products"):
            self.db.execute(
                "CREATE TABLE products ("
                "product_id STRING, mission STRING, sensor STRING, "
                "level INT, acquired TIMESTAMP, path STRING, "
                "array_name STRING, parent_id STRING)"
            )

    # -- cataloging -----------------------------------------------------------

    def catalog_directory(self, directory: str) -> int:
        """Register every scene file with the vault (headers only)."""
        return len(self.vault.attach_directory(directory, pattern="*.nat"))

    # -- ingestion ---------------------------------------------------------------

    def ingest_file(self, path: str, lazy: bool = True) -> Product:
        """Ingest one scene file.

        With ``lazy=True`` only the header is read now; the pixel array is
        materialised by the vault when first fetched.  ``lazy=False``
        forces immediate payload conversion (the eager-ETL baseline).

        The whole per-file transaction is retried on transient failures
        (the ``ingest.file`` injection point fires at each attempt) and
        is idempotent: the catalog row is only inserted when absent,
        stRDF loads have set semantics, and a failed attempt compensates
        by removing the partial catalog row, SciQL array and metadata it
        created — so a file either ingests completely or leaves no trace.
        """

        def attempt() -> Product:
            faults.maybe_fail("ingest.file")
            return self._ingest_once(path, lazy)

        return resilience.call_with_retry(
            attempt, self.retry, label="ingest.file"
        )

    def _ingest_once(self, path: str, lazy: bool) -> Product:
        self.vault.attach_file(path)
        header = read_header(path)
        acquired = datetime.fromisoformat(str(header["acquired"]))
        product_id = _product_id(path, acquired)
        lon0, lat0, lon1, lat1 = header["window"]  # type: ignore[misc]
        extent = Polygon.from_envelope(
            Envelope(lon0, lat0, lon1, lat1), srid=4326
        )
        product = Product(
            product_id=product_id,
            mission=str(header["mission"]),
            sensor=str(header["sensor"]),
            level=ProcessingLevel.L0_RAW,
            acquired=acquired,
            extent=extent,
            path=path,
            metadata={
                "hasWidth": int(header["width"]),
                "hasHeight": int(header["height"]),
            },
        )
        array_name = f"scene_{product_id}"
        try:
            if self.product_by_id(product_id) is None:
                self.db.insert_rows(
                    "products",
                    [
                        (
                            product.product_id,
                            product.mission,
                            product.sensor,
                            int(product.level),
                            product.acquired,
                            path,
                            array_name,
                            None,
                        )
                    ],
                )
            self.store.load_graph(product_to_rdf(product))
            if not lazy:
                self.materialize_array(product)
        except BaseException:
            self._compensate(product, array_name)
            raise
        return product

    def _compensate(self, product: Product, array_name: str) -> None:
        """Undo the partial artifacts of a failed ingest attempt.

        Removes the catalog row, the registered SciQL array and the
        product's stRDF metadata, so a retried (or abandoned) ingest
        starts from a clean slate and the catalog never advertises a
        product whose ingestion did not complete.
        """
        obs.counter("ingest.file.compensations").inc()
        self.db.execute(
            "DELETE FROM products "
            f"WHERE product_id = '{product.product_id}'"
        )
        if self.db.catalog.has_array(array_name):
            self.db.catalog.drop_array(array_name)
        self.store.remove((product_uri(product), None, None))

    def ingest_directory(
        self, directory: str, lazy: bool = True
    ) -> IngestionReport:
        """Ingest every ``.nat`` scene in a directory (sorted).

        Per-file failures *degrade* instead of aborting the run: a file
        whose ingestion fails (after the retry policy is exhausted) is
        recorded as an :class:`IngestFailure` on the report and the
        remaining files still ingest, mirroring
        :meth:`repro.noa.chain.ProcessingChain.run_batch`.  Every input
        file therefore lands in exactly one of ``report.products`` or
        ``report.failures``.
        """
        report = IngestionReport()
        before = len(self.store)
        for name in sorted(os.listdir(directory)):
            if not name.endswith(".nat"):
                continue
            path = os.path.join(directory, name)
            try:
                product = self.ingest_file(path, lazy=lazy)
            except Exception as exc:  # noqa: BLE001 — isolated per file
                obs.counter("ingest.file.failed").inc()
                report.failures.append(IngestFailure(path, exc))
                continue
            obs.counter("ingest.file.ok").inc()
            report.products.append(product)
            report.array_names.append(f"scene_{product.product_id}")
        report.metadata_triples = len(self.store) - before
        return report

    def materialize_array(self, product: Product) -> SciArray:
        """Fetch the product's pixel array (vault ingestion on first call)
        and register it in the database catalog."""
        array_name = f"scene_{product.product_id}"
        if self.db.catalog.has_array(array_name):
            return self.db.array(array_name)
        array = self.vault.fetch(product.path)
        registered = array.copy(array_name)
        self.db.catalog.add_array(registered)
        return registered

    def product_by_id(self, product_id: str) -> Optional[Dict]:
        rows = self.db.execute(
            f"SELECT * FROM products WHERE product_id = '{product_id}'"
        )
        found = list(rows.dicts())
        return found[0] if found else None


def _product_id(path: str, acquired: datetime) -> str:
    stem = os.path.splitext(os.path.basename(path))[0]
    return f"{stem}_{acquired:%Y%m%d%H%M}"
