"""The ingestion pipeline: archive files → database tier.

The :class:`Ingestor` wires the three destinations of Figure 2's arrows:

* the file is cataloged in the **Data Vault** (lazy payload access),
* its pixels become a **SciQL array** in the MonetDB-style database,
* a **product record** plus **stRDF metadata** land in the relational
  catalog and in Strabon.
"""

from __future__ import annotations

import os
from datetime import datetime
from typing import Dict, List, Optional

from repro.eo.products import ProcessingLevel, Product
from repro.eo.seviri import read_header
from repro.geometry import Envelope, Polygon
from repro.ingest.handlers import seviri_format_handler
from repro.ingest.metadata import product_to_rdf
from repro.mdb import Database
from repro.mdb.datavault import DataVault
from repro.mdb.sciql import SciArray
from repro.strabon import StrabonStore


class IngestionReport:
    """What one ingestion run produced."""

    def __init__(self):
        self.products: List[Product] = []
        self.array_names: List[str] = []
        self.metadata_triples = 0

    def __repr__(self) -> str:
        return (
            f"<IngestionReport products={len(self.products)} "
            f"triples={self.metadata_triples}>"
        )


class Ingestor:
    """Ingests SEVIRI archive files into the database tier."""

    def __init__(
        self,
        db: Database,
        store: StrabonStore,
        vault: Optional[DataVault] = None,
    ):
        self.db = db
        self.store = store
        # `is not None` matters: an empty vault is falsy (it has __len__).
        self.vault = vault if vault is not None else DataVault("eo-archive")
        if "msg-seviri" not in self.vault.formats():
            self.vault.register_format(seviri_format_handler())
        if not self.db.catalog.has_table("products"):
            self.db.execute(
                "CREATE TABLE products ("
                "product_id STRING, mission STRING, sensor STRING, "
                "level INT, acquired TIMESTAMP, path STRING, "
                "array_name STRING, parent_id STRING)"
            )

    # -- cataloging -----------------------------------------------------------

    def catalog_directory(self, directory: str) -> int:
        """Register every scene file with the vault (headers only)."""
        return len(self.vault.attach_directory(directory, pattern="*.nat"))

    # -- ingestion ---------------------------------------------------------------

    def ingest_file(self, path: str, lazy: bool = True) -> Product:
        """Ingest one scene file.

        With ``lazy=True`` only the header is read now; the pixel array is
        materialised by the vault when first fetched.  ``lazy=False``
        forces immediate payload conversion (the eager-ETL baseline).
        """
        self.vault.attach_file(path)
        header = read_header(path)
        acquired = datetime.fromisoformat(str(header["acquired"]))
        product_id = _product_id(path, acquired)
        lon0, lat0, lon1, lat1 = header["window"]  # type: ignore[misc]
        extent = Polygon.from_envelope(
            Envelope(lon0, lat0, lon1, lat1), srid=4326
        )
        product = Product(
            product_id=product_id,
            mission=str(header["mission"]),
            sensor=str(header["sensor"]),
            level=ProcessingLevel.L0_RAW,
            acquired=acquired,
            extent=extent,
            path=path,
            metadata={
                "hasWidth": int(header["width"]),
                "hasHeight": int(header["height"]),
            },
        )
        array_name = f"scene_{product_id}"
        self.db.insert_rows(
            "products",
            [
                (
                    product.product_id,
                    product.mission,
                    product.sensor,
                    int(product.level),
                    product.acquired,
                    path,
                    array_name,
                    None,
                )
            ],
        )
        self.store.load_graph(product_to_rdf(product))
        if not lazy:
            self.materialize_array(product)
        return product

    def ingest_directory(
        self, directory: str, lazy: bool = True
    ) -> IngestionReport:
        """Ingest every ``.nat`` scene in a directory (sorted)."""
        report = IngestionReport()
        before = len(self.store)
        for name in sorted(os.listdir(directory)):
            if not name.endswith(".nat"):
                continue
            product = self.ingest_file(
                os.path.join(directory, name), lazy=lazy
            )
            report.products.append(product)
            report.array_names.append(f"scene_{product.product_id}")
        report.metadata_triples = len(self.store) - before
        return report

    def materialize_array(self, product: Product) -> SciArray:
        """Fetch the product's pixel array (vault ingestion on first call)
        and register it in the database catalog."""
        array_name = f"scene_{product.product_id}"
        if self.db.catalog.has_array(array_name):
            return self.db.array(array_name)
        array = self.vault.fetch(product.path)
        registered = array.copy(array_name)
        self.db.catalog.add_array(registered)
        return registered

    def product_by_id(self, product_id: str) -> Optional[Dict]:
        rows = self.db.execute(
            f"SELECT * FROM products WHERE product_id = '{product_id}'"
        )
        found = list(rows.dicts())
        return found[0] if found else None


def _product_id(path: str, acquired: datetime) -> str:
    stem = os.path.splitext(os.path.basename(path))[0]
    return f"{stem}_{acquired:%Y%m%d%H%M}"
