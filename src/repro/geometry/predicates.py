"""Topological predicates between geometries.

The dispatch layer beneath ``Geometry.intersects`` and friends.  Semantics
follow OGC Simple Features (as implemented by PostGIS):

* ``intersects`` — closures share a point.
* ``contains(a, b)`` — ``b`` within the closure of ``a`` *and* the interiors
  intersect (so a point on a polygon's boundary is **not** contained).
* ``covers(a, b)`` — ``b`` within the closure of ``a`` (boundary counts).
* ``touches`` — closures intersect but interiors do not.
* ``crosses`` / ``overlaps`` / ``equals`` — the usual DE-9IM derivations.

All predicates first reject on envelopes, so they stay cheap for the
R-tree-refined candidate sets that the Strabon store feeds them.
"""

from __future__ import annotations

from itertools import product
from typing import List, Tuple

from repro.geometry import algorithms, linework
from repro.geometry.algorithms import Coord
from repro.geometry.base import Geometry
from repro.geometry.linestring import LineString
from repro.geometry.multi import GeometryCollection
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon


def _atoms(geom: Geometry) -> List[Geometry]:
    return list(geom._component_geometries())


def _line_coords(line: LineString) -> List[Coord]:
    from repro.geometry.linestring import LinearRing

    if isinstance(line, LinearRing):
        return line.closed_coords()
    return list(line.coords())


# ---------------------------------------------------------------------------
# intersects
# ---------------------------------------------------------------------------


def intersects(a: Geometry, b: Geometry) -> bool:
    """Whether the closures of ``a`` and ``b`` share at least one point."""
    if a.is_empty or b.is_empty:
        return False
    if not a.envelope.intersects(b.envelope):
        return False
    if isinstance(a, GeometryCollection) or isinstance(b, GeometryCollection):
        return any(
            intersects(x, y) for x, y in product(_atoms(a), _atoms(b))
        )
    return _atom_intersects(a, b)


def _atom_intersects(a: Geometry, b: Geometry) -> bool:
    if isinstance(a, Point) and isinstance(b, Point):
        return algorithms.coords_equal(a.coord, b.coord)
    if isinstance(a, Point):
        return _point_on(b, a)
    if isinstance(b, Point):
        return _point_on(a, b)
    if isinstance(a, LineString) and isinstance(b, LineString):
        return _lines_intersect(a, b)
    if isinstance(a, LineString) and isinstance(b, Polygon):
        return _line_polygon_intersect(a, b)
    if isinstance(a, Polygon) and isinstance(b, LineString):
        return _line_polygon_intersect(b, a)
    if isinstance(a, Polygon) and isinstance(b, Polygon):
        return _polygons_intersect(a, b)
    raise TypeError(
        f"unsupported operand types {a.geom_type}/{b.geom_type}"
    )


def _point_on(geom: Geometry, p: Point) -> bool:
    if isinstance(geom, LineString):
        coords = _line_coords(geom)
        return any(
            algorithms.on_segment(p.coord, coords[i], coords[i + 1])
            for i in range(len(coords) - 1)
        )
    if isinstance(geom, Polygon):
        return geom.locate_point(p.x, p.y) >= 0
    raise TypeError(f"unsupported operand type {geom.geom_type}")


def _lines_intersect(a: LineString, b: LineString) -> bool:
    ca, cb = _line_coords(a), _line_coords(b)
    for i in range(len(ca) - 1):
        for j in range(len(cb) - 1):
            if algorithms.segments_intersect(
                ca[i], ca[i + 1], cb[j], cb[j + 1]
            ):
                return True
    return False


def _line_polygon_intersect(line: LineString, poly: Polygon) -> bool:
    coords = _line_coords(line)
    if any(poly.locate_point(x, y) >= 0 for x, y in coords):
        return True
    boundary = linework.polygon_boundary_segments(poly)
    for i in range(len(coords) - 1):
        for c, d in boundary:
            if algorithms.segments_intersect(coords[i], coords[i + 1], c, d):
                return True
    return False


def _polygons_intersect(a: Polygon, b: Polygon) -> bool:
    # Any boundary crossing?
    segs_a = linework.polygon_boundary_segments(a)
    segs_b = linework.polygon_boundary_segments(b)
    for p, q in segs_a:
        for r, s in segs_b:
            if algorithms.segments_intersect(p, q, r, s):
                return True
    # No crossing: one may contain the other entirely.
    ax, ay = next(a.shell.coords())
    bx, by = next(b.shell.coords())
    return a.locate_point(bx, by) >= 0 or b.locate_point(ax, ay) >= 0


# ---------------------------------------------------------------------------
# covers / contains
# ---------------------------------------------------------------------------


def covers(a: Geometry, b: Geometry) -> bool:
    """Whether every point of ``b`` lies in the closure of ``a``."""
    if a.is_empty or b.is_empty:
        return False
    if not a.envelope.contains(b.envelope):
        return False
    if isinstance(b, GeometryCollection):
        return all(covers(a, part) for part in _atoms(b))
    if isinstance(a, GeometryCollection):
        # Sufficient test: some single part covers b (unions of parts that
        # jointly cover are not detected; acceptable approximation).
        return any(covers(part, b) for part in _atoms(a))
    return _atom_covers(a, b, strict=False)


def contains(a: Geometry, b: Geometry) -> bool:
    """OGC contains: ``covers`` plus interior-interior intersection."""
    if a.is_empty or b.is_empty:
        return False
    if not a.envelope.contains(b.envelope):
        return False
    if isinstance(b, GeometryCollection):
        parts = _atoms(b)
        return bool(parts) and all(covers(a, p) for p in parts) and any(
            _interiors_meet(a, p) for p in parts
        )
    if isinstance(a, GeometryCollection):
        return any(contains(part, b) for part in _atoms(a))
    return _atom_covers(a, b, strict=True)


def _interiors_meet(a: Geometry, b: Geometry) -> bool:
    if isinstance(a, GeometryCollection):
        return any(_interiors_meet(p, b) for p in _atoms(a))
    return _atom_covers(a, b, strict=True) or crosses(a, b) or overlaps(a, b)


def _atom_covers(a: Geometry, b: Geometry, strict: bool) -> bool:
    if isinstance(a, Point):
        return isinstance(b, Point) and algorithms.coords_equal(
            a.coord, b.coord
        )
    if isinstance(a, LineString):
        if isinstance(b, Point):
            return _point_on(a, b)
        if isinstance(b, LineString):
            return _line_covers_line(a, b)
        return False  # a line cannot cover a polygon
    if isinstance(a, Polygon):
        if isinstance(b, Point):
            where = a.locate_point(b.x, b.y)
            return where > 0 if strict else where >= 0
        if isinstance(b, LineString):
            return linework.path_within_polygon(_line_coords(b), a, strict)
        if isinstance(b, Polygon):
            return _polygon_covers_polygon(a, b, strict)
    raise TypeError(f"unsupported operand type {a.geom_type}")


def _line_covers_line(a: LineString, b: LineString) -> bool:
    ca = _line_coords(a)
    cb = _line_coords(b)
    # Every sub-segment midpoint and vertex of b must lie on a.
    samples: List[Coord] = list(cb)
    for i in range(len(cb) - 1):
        samples.append(
            ((cb[i][0] + cb[i + 1][0]) / 2, (cb[i][1] + cb[i + 1][1]) / 2)
        )
    for p in samples:
        if not any(
            algorithms.on_segment(p, ca[i], ca[i + 1])
            for i in range(len(ca) - 1)
        ):
            return False
    return True


def _polygon_covers_polygon(a: Polygon, b: Polygon, strict: bool) -> bool:
    # Every ring of b must stay out of a's exterior.
    for ring in b.rings():
        if not linework.path_within_polygon(
            ring.closed_coords(), a, strict=False
        ):
            return False
    # No hole of a may poke into b's interior.
    for hole in a.holes:
        hx, hy = algorithms.ring_centroid(list(hole.coords()))
        if b.locate_point(hx, hy) > 0 and a.locate_point(hx, hy) < 0:
            return False
    if strict:
        # Need an interior-interior witness.
        rep = b.representative_point()
        return a.locate_point(rep.x, rep.y) > 0
    return True


# ---------------------------------------------------------------------------
# touches / crosses / overlaps / equals
# ---------------------------------------------------------------------------


def touches(a: Geometry, b: Geometry) -> bool:
    """Closures intersect, interiors do not."""
    if not intersects(a, b):
        return False
    return not _interior_interior(a, b)


def crosses(a: Geometry, b: Geometry) -> bool:
    """Interiors intersect and the result is lower-dimensional than the
    higher-dimensional operand (line crossing polygon, lines crossing)."""
    da, db = _dimension(a), _dimension(b)
    if da > db:
        return crosses(b, a)
    if not intersects(a, b):
        return False
    if da == 0 and db > 0:
        # Multipoint with some points in, some out.
        pts = [g for g in _atoms(a) if isinstance(g, Point)]
        if len(pts) < 2:
            return False
        inside = sum(1 for p in pts if _interior_interior(p, b))
        return 0 < inside < len(pts)
    if da == 1 and db == 1:
        return _lines_properly_cross(a, b)
    if da == 1 and db == 2:
        has_in, _, has_out = _path_classification(a, b)
        return has_in and has_out
    return False


def overlaps(a: Geometry, b: Geometry) -> bool:
    """Same-dimension partial interior sharing (neither covers the other)."""
    if _dimension(a) != _dimension(b):
        return False
    if not _interior_interior(a, b):
        return False
    return not covers(a, b) and not covers(b, a)


def equals(a: Geometry, b: Geometry) -> bool:
    """Spatial equality: mutual coverage."""
    if a.is_empty and b.is_empty:
        return True
    if a.is_empty or b.is_empty:
        return False
    return covers(a, b) and covers(b, a)


def relate(a: Geometry, b: Geometry) -> str:
    """A human-readable relation summary (not a full DE-9IM matrix)."""
    checks = (
        ("equals", equals),
        ("contains", contains),
        ("within", lambda x, y: contains(y, x)),
        ("overlaps", overlaps),
        ("crosses", crosses),
        ("touches", touches),
        ("intersects", intersects),
    )
    for name, fn in checks:
        try:
            if fn(a, b):
                return name
        except TypeError:
            continue
    return "disjoint"


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _dimension(geom: Geometry) -> int:
    dims = []
    for g in _atoms(geom):
        if isinstance(g, Point):
            dims.append(0)
        elif isinstance(g, LineString):
            dims.append(1)
        elif isinstance(g, Polygon):
            dims.append(2)
    return max(dims) if dims else -1


def _interior_interior(a: Geometry, b: Geometry) -> bool:
    """Whether the interiors of ``a`` and ``b`` share a point."""
    if isinstance(a, GeometryCollection) or isinstance(b, GeometryCollection):
        return any(
            _interior_interior(x, y)
            for x, y in product(_atoms(a), _atoms(b))
        )
    if isinstance(a, Point) and isinstance(b, Point):
        return algorithms.coords_equal(a.coord, b.coord)
    if isinstance(a, Point):
        return _point_in_interior(b, a)
    if isinstance(b, Point):
        return _point_in_interior(a, b)
    if isinstance(a, LineString) and isinstance(b, LineString):
        return _lines_properly_cross(a, b) or _lines_share_segment(a, b)
    if isinstance(a, LineString) and isinstance(b, Polygon):
        has_in, _, _ = _path_classification(a, b)
        return has_in
    if isinstance(a, Polygon) and isinstance(b, LineString):
        return _interior_interior(b, a)
    if isinstance(a, Polygon) and isinstance(b, Polygon):
        return _polygon_interiors_meet(a, b)
    raise TypeError(
        f"unsupported operand types {a.geom_type}/{b.geom_type}"
    )


def _point_in_interior(geom: Geometry, p: Point) -> bool:
    if isinstance(geom, Polygon):
        return geom.locate_point(p.x, p.y) > 0
    if isinstance(geom, LineString):
        coords = _line_coords(geom)
        endpoints = (
            ()
            if getattr(geom, "is_closed", False)
            else (coords[0], coords[-1])
        )
        if any(algorithms.coords_equal(p.coord, e) for e in endpoints):
            return False
        return _point_on(geom, p)
    raise TypeError(f"unsupported operand type {geom.geom_type}")


def _lines_properly_cross(a: Geometry, b: Geometry) -> bool:
    for la in _atoms(a):
        if not isinstance(la, LineString):
            continue
        ca = _line_coords(la)
        for lb in _atoms(b):
            if not isinstance(lb, LineString):
                continue
            cb = _line_coords(lb)
            for i in range(len(ca) - 1):
                for j in range(len(cb) - 1):
                    p = algorithms.segment_intersection_point(
                        ca[i], ca[i + 1], cb[j], cb[j + 1]
                    )
                    if p is None:
                        continue
                    if _is_line_endpoint(p, ca) or _is_line_endpoint(p, cb):
                        continue
                    return True
    return False


def _is_line_endpoint(p: Coord, coords: List[Coord]) -> bool:
    return algorithms.coords_equal(p, coords[0]) or algorithms.coords_equal(
        p, coords[-1]
    )


def _lines_share_segment(a: Geometry, b: Geometry) -> bool:
    for la in _atoms(a):
        ca = _line_coords(la)
        for lb in _atoms(b):
            cb = _line_coords(lb)
            for i in range(len(ca) - 1):
                mid = (
                    (ca[i][0] + ca[i + 1][0]) / 2,
                    (ca[i][1] + ca[i + 1][1]) / 2,
                )
                for j in range(len(cb) - 1):
                    if algorithms.on_segment(mid, cb[j], cb[j + 1]):
                        return True
    return False


def _path_classification(
    line: Geometry, poly: Polygon
) -> Tuple[bool, bool, bool]:
    has_in = has_bnd = has_out = False
    for part in _atoms(line):
        if not isinstance(part, LineString):
            continue
        i, b, o = linework.path_polygon_crossings(_line_coords(part), poly)
        has_in = has_in or i
        has_bnd = has_bnd or b
        has_out = has_out or o
    return has_in, has_bnd, has_out


def _polygon_interiors_meet(a: Polygon, b: Polygon) -> bool:
    # A boundary crossing between shells almost always implies shared
    # interior; verify with a sampled witness point to rule out touching.
    if covers(a, b) or covers(b, a):
        return True
    segs_a = linework.polygon_boundary_segments(a)
    segs_b = linework.polygon_boundary_segments(b)
    for p, q in segs_a:
        pieces = linework.split_path_by_polygon([p, q], b)
        for where, coords in pieces:
            if where != linework.INTERIOR:
                continue
            mid = (
                (coords[0][0] + coords[-1][0]) / 2,
                (coords[0][1] + coords[-1][1]) / 2,
            )
            if a.locate_point(mid[0], mid[1]) >= 0:
                return True
    for p, q in segs_b:
        pieces = linework.split_path_by_polygon([p, q], a)
        for where, coords in pieces:
            if where == linework.INTERIOR:
                return True
    # Identical boundaries / shared-area cases: test vertices and centroid.
    for x, y in b.shell.coords():
        if a.locate_point(x, y) > 0:
            return True
    cx, cy = algorithms.ring_centroid(list(b.shell.coords()))
    return a.locate_point(cx, cy) > 0 and b.locate_point(cx, cy) > 0
