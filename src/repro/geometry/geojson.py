"""GeoJSON (RFC 7946) encoding and decoding of geometries.

The rapid-mapping outputs are easiest to hand to web viewers as GeoJSON;
this module converts between the engine's geometry model and GeoJSON
``geometry`` / ``Feature`` / ``FeatureCollection`` dictionaries.

GeoJSON is always WGS84; geometries in other systems are re-projected on
encode and tagged 4326 on decode.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.geometry.base import Geometry, GeometryError
from repro.geometry.linestring import LineString
from repro.geometry.multi import (
    GeometryCollection,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
)
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon


def _position(x: float, y: float) -> List[float]:
    return [float(x), float(y)]


def _ring_positions(ring) -> List[List[float]]:
    return [_position(x, y) for x, y in ring.closed_coords()]


def to_geojson(geom: Geometry) -> Dict[str, Any]:
    """Encode a geometry as a GeoJSON geometry object."""
    if geom.srid not in (4326, 84):
        geom = geom.transform(4326)
    if isinstance(geom, Point):
        return {"type": "Point", "coordinates": _position(geom.x, geom.y)}
    if isinstance(geom, Polygon):
        return {
            "type": "Polygon",
            "coordinates": [_ring_positions(r) for r in geom.rings()],
        }
    if isinstance(geom, MultiPoint):
        return {
            "type": "MultiPoint",
            "coordinates": [_position(p.x, p.y) for p in geom.geoms],
        }
    if isinstance(geom, MultiLineString):
        return {
            "type": "MultiLineString",
            "coordinates": [
                [_position(x, y) for x, y in line.coords()]
                for line in geom.geoms
            ],
        }
    if isinstance(geom, MultiPolygon):
        return {
            "type": "MultiPolygon",
            "coordinates": [
                [_ring_positions(r) for r in poly.rings()]
                for poly in geom.geoms
            ],
        }
    if isinstance(geom, GeometryCollection):
        return {
            "type": "GeometryCollection",
            "geometries": [to_geojson(g) for g in geom.geoms],
        }
    if isinstance(geom, LineString):
        return {
            "type": "LineString",
            "coordinates": [_position(x, y) for x, y in geom.coords()],
        }
    raise GeometryError(f"cannot encode {geom.geom_type} as GeoJSON")


def from_geojson(doc: Dict[str, Any]) -> Geometry:
    """Decode a GeoJSON geometry object (SRID 4326)."""
    try:
        kind = doc["type"]
    except (TypeError, KeyError):
        raise GeometryError("not a GeoJSON geometry object") from None
    if kind == "Point":
        x, y = doc["coordinates"][:2]
        return Point(x, y, srid=4326)
    if kind == "LineString":
        return LineString(
            [(c[0], c[1]) for c in doc["coordinates"]], srid=4326
        )
    if kind == "Polygon":
        rings = doc["coordinates"]
        if not rings:
            raise GeometryError("GeoJSON Polygon without rings")
        return Polygon(
            [(c[0], c[1]) for c in rings[0]],
            [[(c[0], c[1]) for c in hole] for hole in rings[1:]],
            srid=4326,
        )
    if kind == "MultiPoint":
        return MultiPoint(
            [Point(c[0], c[1], srid=4326) for c in doc["coordinates"]],
            srid=4326,
        )
    if kind == "MultiLineString":
        return MultiLineString(
            [
                LineString([(c[0], c[1]) for c in line], srid=4326)
                for line in doc["coordinates"]
            ],
            srid=4326,
        )
    if kind == "MultiPolygon":
        polys = []
        for rings in doc["coordinates"]:
            polys.append(
                Polygon(
                    [(c[0], c[1]) for c in rings[0]],
                    [[(c[0], c[1]) for c in hole] for hole in rings[1:]],
                    srid=4326,
                )
            )
        return MultiPolygon(polys, srid=4326)
    if kind == "GeometryCollection":
        return GeometryCollection(
            [from_geojson(g) for g in doc["geometries"]], srid=4326
        )
    raise GeometryError(f"unknown GeoJSON type {kind!r}")


def feature(
    geom: Optional[Geometry], properties: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Wrap a geometry as a GeoJSON Feature."""
    return {
        "type": "Feature",
        "geometry": to_geojson(geom) if geom is not None else None,
        "properties": dict(properties or {}),
    }


def feature_collection(
    features: Iterable[Dict[str, Any]]
) -> Dict[str, Any]:
    """Bundle features into a FeatureCollection."""
    return {"type": "FeatureCollection", "features": list(features)}
