"""The Polygon geometry (shell plus optional holes)."""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.geometry.base import Geometry, GeometryError
from repro.geometry.envelope import Envelope
from repro.geometry.linestring import LinearRing

Coord = Tuple[float, float]


class Polygon(Geometry):
    """A simple polygon: one exterior shell and zero or more interior holes.

    The shell is normalised to counter-clockwise winding and holes to
    clockwise, per OGC convention.  Rings may be given as coordinate
    sequences or as :class:`LinearRing` instances.
    """

    geom_type = "Polygon"

    __slots__ = ("shell", "holes")

    def __init__(
        self,
        shell: Iterable[Sequence[float]] | LinearRing,
        holes: Optional[Iterable[Iterable[Sequence[float]] | LinearRing]] = None,
        srid: int = 4326,
    ):
        super().__init__(srid=srid)
        self.shell = self._as_ring(shell, srid).oriented(ccw=True)
        hole_rings: List[LinearRing] = []
        for hole in holes or ():
            hole_rings.append(self._as_ring(hole, srid).oriented(ccw=False))
        self.holes: Tuple[LinearRing, ...] = tuple(hole_rings)

    @staticmethod
    def _as_ring(
        ring: Iterable[Sequence[float]] | LinearRing, srid: int
    ) -> LinearRing:
        if isinstance(ring, LinearRing):
            return ring
        return LinearRing(ring, srid=srid)

    @classmethod
    def from_envelope(cls, env: Envelope, srid: int = 4326) -> "Polygon":
        """Rectangle polygon covering ``env``."""
        if env.is_empty:
            raise GeometryError("cannot build polygon from empty envelope")
        return cls(list(env.corners()), srid=srid)

    @classmethod
    def regular(
        cls,
        cx: float,
        cy: float,
        radius: float,
        sides: int = 16,
        srid: int = 4326,
    ) -> "Polygon":
        """Regular ``sides``-gon centred at ``(cx, cy)`` — a cheap circle."""
        import math

        if sides < 3:
            raise GeometryError("a polygon needs at least 3 sides")
        if radius <= 0:
            raise GeometryError("radius must be positive")
        pts = [
            (
                cx + radius * math.cos(2.0 * math.pi * i / sides),
                cy + radius * math.sin(2.0 * math.pi * i / sides),
            )
            for i in range(sides)
        ]
        return cls(pts, srid=srid)

    @property
    def is_empty(self) -> bool:
        return False

    @property
    def envelope(self) -> Envelope:
        return self.shell.envelope

    def coords(self) -> Iterator[Coord]:
        yield from self.shell.coords()
        for hole in self.holes:
            yield from hole.coords()

    @property
    def area(self) -> float:
        total = abs(self.shell.signed_area)
        for hole in self.holes:
            total -= abs(hole.signed_area)
        return max(total, 0.0)

    @property
    def length(self) -> float:
        """Total boundary length (shell + holes)."""
        return self.shell.length + sum(h.length for h in self.holes)

    @property
    def exterior(self) -> LinearRing:
        return self.shell

    @property
    def interiors(self) -> Tuple[LinearRing, ...]:
        return self.holes

    def rings(self) -> Iterator[LinearRing]:
        """Yield the shell followed by every hole."""
        yield self.shell
        yield from self.holes

    def locate_point(self, x: float, y: float) -> int:
        """Locate ``(x, y)``: 1 interior, 0 boundary, -1 exterior."""
        where = self.shell.contains_point(x, y)
        if where <= 0:
            return where
        for hole in self.holes:
            inside_hole = hole.contains_point(x, y)
            if inside_hole == 0:
                return 0
            if inside_hole > 0:
                return -1
        return 1

    def contains_coord(self, x: float, y: float) -> bool:
        """Whether ``(x, y)`` is inside or on the boundary."""
        return self.locate_point(x, y) >= 0

    def representative_point(self):
        """A point guaranteed inside the polygon.

        Tries the centroid first, then scans horizontal midlines.
        """
        from repro.geometry.point import Point

        cx, cy = self.centroid.coord
        if self.locate_point(cx, cy) > 0:
            return Point(cx, cy, srid=self.srid)
        env = self.envelope
        steps = 32
        for i in range(1, steps):
            y = env.miny + env.height * i / steps
            for j in range(1, steps):
                x = env.minx + env.width * j / steps
                if self.locate_point(x, y) > 0:
                    return Point(x, y, srid=self.srid)
        # Fall back to a shell vertex (boundary point).
        x, y = next(self.shell.coords())
        return Point(x, y, srid=self.srid)

    def without_holes(self) -> "Polygon":
        """The shell alone, holes discarded."""
        if not self.holes:
            return self
        return Polygon(self.shell, srid=self.srid)

    def _clone(self) -> "Polygon":
        return Polygon(self.shell, self.holes, srid=self.srid)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polygon):
            return NotImplemented
        return (
            self.shell == other.shell
            and self.holes == other.holes
            and self.srid == other.srid
        )

    def __hash__(self) -> int:
        return hash((self.geom_type, self.shell, self.holes, self.srid))
