"""Axis-aligned bounding boxes (envelopes).

Envelopes are the currency of the R-tree index and of every cheap spatial
pre-filter in the system: predicates first reject on envelopes before running
the exact geometry test.  :class:`PackedEnvelopes` stores many envelopes as
numpy struct-of-arrays so batch workloads (``RTree.query_batch``, the
stSPARQL vectorised FILTER prefilter) test thousands of envelopes with four
array comparisons instead of a Python loop.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np


class Envelope:
    """An axis-aligned rectangle ``[minx, maxx] x [miny, maxy]``.

    An envelope may be *empty* (containing no points); empty envelopes are
    produced by :meth:`Envelope.empty` and behave as the identity for
    :meth:`union` and as the annihilator for :meth:`intersection`.
    """

    __slots__ = ("minx", "miny", "maxx", "maxy")

    def __init__(self, minx: float, miny: float, maxx: float, maxy: float):
        if minx > maxx or miny > maxy:
            # Normalised empty representation.
            self.minx, self.miny = math.inf, math.inf
            self.maxx, self.maxy = -math.inf, -math.inf
        else:
            self.minx = float(minx)
            self.miny = float(miny)
            self.maxx = float(maxx)
            self.maxy = float(maxy)

    @classmethod
    def empty(cls) -> "Envelope":
        """Return the empty envelope."""
        return cls(math.inf, math.inf, -math.inf, -math.inf)

    @classmethod
    def of_point(cls, x: float, y: float) -> "Envelope":
        """Return the degenerate envelope covering a single point."""
        return cls(x, y, x, y)

    @classmethod
    def of_coords(cls, coords: Iterable[Tuple[float, float]]) -> "Envelope":
        """Return the tightest envelope covering ``coords``."""
        minx = miny = math.inf
        maxx = maxy = -math.inf
        for x, y in coords:
            if x < minx:
                minx = x
            if x > maxx:
                maxx = x
            if y < miny:
                miny = y
            if y > maxy:
                maxy = y
        if minx > maxx:
            return cls.empty()
        return cls(minx, miny, maxx, maxy)

    @property
    def is_empty(self) -> bool:
        return self.minx > self.maxx

    @property
    def width(self) -> float:
        return 0.0 if self.is_empty else self.maxx - self.minx

    @property
    def height(self) -> float:
        return 0.0 if self.is_empty else self.maxy - self.miny

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def perimeter(self) -> float:
        return 2.0 * (self.width + self.height)

    @property
    def center(self) -> Tuple[float, float]:
        if self.is_empty:
            raise ValueError("empty envelope has no center")
        return ((self.minx + self.maxx) / 2.0, (self.miny + self.maxy) / 2.0)

    def contains_point(self, x: float, y: float) -> bool:
        """Whether ``(x, y)`` lies inside or on the boundary."""
        return self.minx <= x <= self.maxx and self.miny <= y <= self.maxy

    def contains(self, other: "Envelope") -> bool:
        """Whether ``other`` lies fully inside this envelope."""
        if other.is_empty:
            return True
        if self.is_empty:
            return False
        return (
            self.minx <= other.minx
            and self.miny <= other.miny
            and self.maxx >= other.maxx
            and self.maxy >= other.maxy
        )

    def intersects(self, other: "Envelope") -> bool:
        """Whether the two envelopes share at least one point."""
        if self.is_empty or other.is_empty:
            return False
        return (
            self.minx <= other.maxx
            and other.minx <= self.maxx
            and self.miny <= other.maxy
            and other.miny <= self.maxy
        )

    def intersection(self, other: "Envelope") -> "Envelope":
        """Return the envelope common to both (possibly empty)."""
        return Envelope(
            max(self.minx, other.minx),
            max(self.miny, other.miny),
            min(self.maxx, other.maxx),
            min(self.maxy, other.maxy),
        )

    def union(self, other: "Envelope") -> "Envelope":
        """Return the smallest envelope covering both."""
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        return Envelope(
            min(self.minx, other.minx),
            min(self.miny, other.miny),
            max(self.maxx, other.maxx),
            max(self.maxy, other.maxy),
        )

    def expanded(self, margin: float) -> "Envelope":
        """Return this envelope grown by ``margin`` on every side."""
        if self.is_empty:
            return self
        return Envelope(
            self.minx - margin,
            self.miny - margin,
            self.maxx + margin,
            self.maxy + margin,
        )

    def enlargement(self, other: "Envelope") -> float:
        """Area increase needed for this envelope to cover ``other``.

        Used by the R-tree insertion heuristic.
        """
        return self.union(other).area - self.area

    def distance(self, other: "Envelope") -> float:
        """Minimum Euclidean distance between the two envelopes."""
        if self.is_empty or other.is_empty:
            return math.inf
        dx = max(other.minx - self.maxx, self.minx - other.maxx, 0.0)
        dy = max(other.miny - self.maxy, self.miny - other.maxy, 0.0)
        return math.hypot(dx, dy)

    def corners(self) -> Iterator[Tuple[float, float]]:
        """Yield the four corners counter-clockwise from (minx, miny)."""
        yield (self.minx, self.miny)
        yield (self.maxx, self.miny)
        yield (self.maxx, self.maxy)
        yield (self.minx, self.maxy)

    def as_tuple(self) -> Tuple[float, float, float, float]:
        return (self.minx, self.miny, self.maxx, self.maxy)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Envelope):
            return NotImplemented
        if self.is_empty and other.is_empty:
            return True
        return self.as_tuple() == other.as_tuple()

    def __hash__(self) -> int:
        return hash(self.as_tuple())

    def __repr__(self) -> str:
        if self.is_empty:
            return "Envelope.empty()"
        return (
            f"Envelope({self.minx!r}, {self.miny!r}, "
            f"{self.maxx!r}, {self.maxy!r})"
        )


class PackedEnvelopes:
    """``n`` envelopes packed into four float64 arrays.

    The layout keeps batch predicates vectorised: one intersection test
    against ``n`` envelopes is four array comparisons.  Empty envelopes
    pack as ``(+inf, +inf, -inf, -inf)`` and therefore fail every
    comparison, matching :meth:`Envelope.intersects` exactly.
    """

    __slots__ = ("minx", "miny", "maxx", "maxy")

    def __init__(
        self,
        minx: np.ndarray,
        miny: np.ndarray,
        maxx: np.ndarray,
        maxy: np.ndarray,
    ):
        self.minx = np.asarray(minx, dtype=np.float64)
        self.miny = np.asarray(miny, dtype=np.float64)
        self.maxx = np.asarray(maxx, dtype=np.float64)
        self.maxy = np.asarray(maxy, dtype=np.float64)
        if not (
            self.minx.shape == self.miny.shape
            == self.maxx.shape == self.maxy.shape
        ) or self.minx.ndim != 1:
            raise ValueError("packed bounds must be equal-length 1-D arrays")

    @classmethod
    def pack(cls, envelopes: Sequence["Envelope"]) -> "PackedEnvelopes":
        """Pack a sequence of envelopes (order preserved)."""
        n = len(envelopes)
        minx = np.empty(n, dtype=np.float64)
        miny = np.empty(n, dtype=np.float64)
        maxx = np.empty(n, dtype=np.float64)
        maxy = np.empty(n, dtype=np.float64)
        for i, env in enumerate(envelopes):
            minx[i] = env.minx
            miny[i] = env.miny
            maxx[i] = env.maxx
            maxy[i] = env.maxy
        return cls(minx, miny, maxx, maxy)

    def __len__(self) -> int:
        return self.minx.shape[0]

    def get(self, index: int) -> Envelope:
        """The envelope at ``index`` (unpacked)."""
        return Envelope(
            self.minx[index], self.miny[index],
            self.maxx[index], self.maxy[index],
        )

    def intersects(self, envelope: Envelope) -> np.ndarray:
        """Boolean mask: which packed envelopes intersect ``envelope``."""
        if envelope.is_empty or len(self) == 0:
            return np.zeros(len(self), dtype=bool)
        return (
            (self.minx <= envelope.maxx)
            & (envelope.minx <= self.maxx)
            & (self.miny <= envelope.maxy)
            & (envelope.miny <= self.maxy)
        )

    def intersecting(self, envelope: Envelope) -> np.ndarray:
        """Indices (ascending) of packed envelopes intersecting
        ``envelope``."""
        return np.flatnonzero(self.intersects(envelope))

    def distance(self, envelope: Envelope) -> np.ndarray:
        """Per-entry minimum Euclidean distance to ``envelope``.

        Same edge semantics as :meth:`Envelope.distance` — an empty
        probe, and empty packed entries, yield ``inf`` — but the batch
        uses ``np.hypot``, which may differ from the scalar
        ``math.hypot`` in the last ulp.  Callers treating the result as
        a strict lower bound (batch spatial FILTERs) must shave a
        relative margin before comparing.
        """
        n = len(self)
        if envelope.is_empty or n == 0:
            return np.full(n, np.inf, dtype=np.float64)
        dx = np.maximum(envelope.minx - self.maxx, self.minx - envelope.maxx)
        np.maximum(dx, 0.0, out=dx)
        dy = np.maximum(envelope.miny - self.maxy, self.miny - envelope.maxy)
        np.maximum(dy, 0.0, out=dy)
        out = np.hypot(dx, dy)
        empty = self.minx > self.maxx
        if empty.any():
            out[empty] = np.inf
        return out

    def contains_points(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Boolean matrix ``(len(self), len(x))``: envelope i contains
        point j (boundary inclusive)."""
        x = np.asarray(x, dtype=np.float64)[np.newaxis, :]
        y = np.asarray(y, dtype=np.float64)[np.newaxis, :]
        return (
            (self.minx[:, np.newaxis] <= x) & (x <= self.maxx[:, np.newaxis])
            & (self.miny[:, np.newaxis] <= y) & (y <= self.maxy[:, np.newaxis])
        )

    def union_envelope(self) -> Envelope:
        """The envelope covering every non-empty packed entry."""
        valid = self.minx <= self.maxx
        if not valid.any():
            return Envelope.empty()
        return Envelope(
            float(self.minx[valid].min()),
            float(self.miny[valid].min()),
            float(self.maxx[valid].max()),
            float(self.maxy[valid].max()),
        )

    def unpack(self) -> List[Envelope]:
        return [self.get(i) for i in range(len(self))]

    def __repr__(self) -> str:
        return f"<PackedEnvelopes n={len(self)}>"
