"""Exact polygonisation of axis-aligned grid cells.

Hotspot geometries are unions of pixel footprints — axis-aligned cells of
a regular grid.  Generic polygon union needs perturbation for such fully
degenerate inputs and can leave sliver artifacts; boundary tracing of the
binary cell set is exact, fast and always valid.  This module converts a
set of ``(row, col)`` cells into rings (with holes) in grid-corner
coordinates and, optionally, maps the corners through a georeferencing
function.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence, Set, Tuple

from repro.geometry import algorithms
from repro.geometry.base import Geometry
from repro.geometry.multi import MultiPolygon
from repro.geometry.polygon import Polygon

Cell = Tuple[int, int]
Corner = Tuple[int, int]  # (row, col) lattice corner


def boundary_rings(cells: Iterable[Cell]) -> List[List[Corner]]:
    """Trace the boundary rings of a cell set.

    Returns closed rings (first vertex not repeated) in grid-corner
    coordinates.  Every ring is a simple rectilinear polygon; shells and
    holes are distinguishable by winding (see :func:`rings_to_polygons`).
    """
    cell_set: Set[Cell] = set(cells)
    if not cell_set:
        return []
    # Directed boundary edges, interior kept on a consistent side.
    edges: Dict[Corner, List[Corner]] = {}

    def emit(a: Corner, b: Corner) -> None:
        edges.setdefault(a, []).append(b)

    for r, c in cell_set:
        if (r - 1, c) not in cell_set:  # top edge, walk east
            emit((r, c), (r, c + 1))
        if (r, c + 1) not in cell_set:  # right edge, walk south
            emit((r, c + 1), (r + 1, c + 1))
        if (r + 1, c) not in cell_set:  # bottom edge, walk west
            emit((r + 1, c + 1), (r + 1, c))
        if (r, c - 1) not in cell_set:  # left edge, walk north
            emit((r + 1, c), (r, c))

    rings: List[List[Corner]] = []
    while edges:
        start = next(iter(edges))
        ring: List[Corner] = [start]
        current = start
        incoming = None
        while True:
            outs = edges.get(current)
            if not outs:
                break
            if len(outs) == 1 or incoming is None:
                nxt = outs.pop()
            else:
                # Diagonal-touch corner: prefer the sharpest left turn so
                # rings stay simple (never cross themselves).
                nxt = min(
                    outs, key=lambda cand: _turn(incoming, current, cand)
                )
                outs.remove(nxt)
            if not outs:
                del edges[current]
            incoming = current
            current = nxt
            if current == start:
                break
            ring.append(current)
        # Drop collinear intermediate corners.
        rings.append(_simplify_rectilinear(ring))
    return rings


def _turn(prev: Corner, here: Corner, nxt: Corner) -> int:
    """Turn preference: 0 = left turn, 1 = straight, 2 = right turn."""
    d_in = (here[0] - prev[0], here[1] - prev[1])
    d_out = (nxt[0] - here[0], nxt[1] - here[1])
    cross = d_in[0] * d_out[1] - d_in[1] * d_out[0]
    # In (row, col) space with our edge orientation, cross > 0 is a right
    # turn on screen; prefer the turn that hugs the interior.
    if cross < 0:
        return 0
    if cross == 0:
        return 1
    return 2


def _simplify_rectilinear(ring: List[Corner]) -> List[Corner]:
    if len(ring) < 3:
        return ring
    out: List[Corner] = []
    n = len(ring)
    for i in range(n):
        prev = ring[(i - 1) % n]
        here = ring[i]
        nxt = ring[(i + 1) % n]
        d1 = (here[0] - prev[0], here[1] - prev[1])
        d2 = (nxt[0] - here[0], nxt[1] - here[1])
        if d1[0] * d2[1] - d1[1] * d2[0] != 0:
            out.append(here)
    return out or ring


def rings_to_polygons(
    rings: Sequence[List[Corner]],
    corner_to_xy: Callable[[int, int], Tuple[float, float]],
    srid: int = 4326,
) -> List[Polygon]:
    """Assemble traced rings into polygons with holes.

    ``corner_to_xy(row, col)`` maps lattice corners to world coordinates.
    Ring role (shell vs hole) is decided by signed area in *grid space*
    (stable regardless of the georeference's axis flips).
    """
    shells: List[Tuple[List[Corner], List[Tuple[float, float]]]] = []
    holes: List[Tuple[List[Corner], List[Tuple[float, float]]]] = []
    for ring in rings:
        if len(ring) < 3:
            continue
        grid_area = algorithms.ring_signed_area(
            [(float(c), float(r)) for r, c in ring]
        )
        world = [corner_to_xy(r, c) for r, c in ring]
        # With our edge orientation, shells wind one way and holes the
        # other in grid space; the traced shell of a single cell is
        # (0,0)->(0,1)->(1,1)->(1,0), whose (x=c, y=r) signed area is +1.
        if grid_area > 0:
            shells.append((ring, world))
        else:
            holes.append((ring, world))
    polygons: List[Tuple[List[Corner], List, List[List]]] = [
        (ring, world, []) for ring, world in shells
    ]
    for hole_ring, hole_world in holes:
        hr, hc = hole_ring[0]
        placed = False
        for shell_ring, shell_world, shell_holes in polygons:
            grid_shell = [(float(c), float(r)) for r, c in shell_ring]
            if algorithms.point_in_ring(
                (float(hc), float(hr)), grid_shell
            ) >= 0:
                shell_holes.append(hole_world)
                placed = True
                break
        if not placed:  # should not happen; keep it as a shell
            polygons.append((hole_ring, hole_world, []))
    return [
        Polygon(world, hole_list, srid=srid)
        for _, world, hole_list in polygons
    ]


def cells_to_geometry(
    cells: Iterable[Cell],
    corner_to_xy: Callable[[int, int], Tuple[float, float]],
    srid: int = 4326,
) -> Geometry:
    """Cells → a Polygon or MultiPolygon in world coordinates."""
    rings = boundary_rings(cells)
    polys = rings_to_polygons(rings, corner_to_xy, srid=srid)
    if len(polys) == 1:
        return polys[0]
    return MultiPolygon(polys, srid=srid)


def mask_to_geometry(
    mask,
    corner_to_xy: Callable[[int, int], Tuple[float, float]],
    srid: int = 4326,
) -> Geometry:
    """Boolean (rows, cols) mask → polygonised geometry."""
    import numpy as np

    rows, cols = np.nonzero(mask)
    return cells_to_geometry(
        zip(rows.tolist(), cols.tolist()), corner_to_xy, srid=srid
    )
