"""Spatial reference systems and coordinate transforms.

A tiny pluggable CRS registry replacing PROJ: every CRS knows how to map
its coordinates to and from WGS84 lon/lat (the hub), so any pair of
registered systems can interoperate.  Built in:

* ``4326``  — WGS84 geographic, coordinates are (lon, lat) degrees.
* ``84``    — CRS84 alias of 4326 (GeoSPARQL's default).
* ``3857``  — WGS84 Web Mercator, coordinates in metres.

Satellite ingestion registers additional *sensor grid* systems (affine
row/column grids georeferenced to a WGS84 window) via
:func:`register_affine_grid`.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Tuple

from repro.geometry.base import Geometry, GeometryError

Coord = Tuple[float, float]
CoordFn = Callable[[float, float], Coord]

SRID_WGS84 = 4326
SRID_CRS84 = 84
SRID_WEB_MERCATOR = 3857

#: Mean Earth radius in metres (spherical model, as Web Mercator assumes).
EARTH_RADIUS_M = 6378137.0

_MAX_LAT = 85.05112877980659


class CRS:
    """A coordinate reference system with WGS84-hub conversion functions."""

    def __init__(
        self,
        srid: int,
        name: str,
        to_wgs84: CoordFn,
        from_wgs84: CoordFn,
        units: str = "degree",
    ):
        self.srid = int(srid)
        self.name = name
        self.to_wgs84 = to_wgs84
        self.from_wgs84 = from_wgs84
        self.units = units

    def __repr__(self) -> str:
        return f"CRS({self.srid}, {self.name!r}, units={self.units!r})"


_identity: CoordFn = lambda x, y: (x, y)  # noqa: E731


def _mercator_forward(lon: float, lat: float) -> Coord:
    lat = max(-_MAX_LAT, min(_MAX_LAT, lat))
    x = math.radians(lon) * EARTH_RADIUS_M
    y = math.log(math.tan(math.pi / 4.0 + math.radians(lat) / 2.0))
    return (x, y * EARTH_RADIUS_M)


def _mercator_inverse(x: float, y: float) -> Coord:
    lon = math.degrees(x / EARTH_RADIUS_M)
    lat = math.degrees(
        2.0 * math.atan(math.exp(y / EARTH_RADIUS_M)) - math.pi / 2.0
    )
    return (lon, lat)


_REGISTRY: Dict[int, CRS] = {}


def register_crs(crs: CRS, replace: bool = False) -> CRS:
    """Add a CRS to the registry; refuses silent redefinition."""
    if not replace and crs.srid in _REGISTRY:
        existing = _REGISTRY[crs.srid]
        if existing.name != crs.name:
            raise GeometryError(
                f"SRID {crs.srid} already registered as {existing.name!r}"
            )
    _REGISTRY[crs.srid] = crs
    return crs


def get_crs(srid: int) -> CRS:
    """Look up a registered CRS; raises :class:`GeometryError` if unknown."""
    try:
        return _REGISTRY[srid]
    except KeyError:
        raise GeometryError(f"unknown SRID {srid}") from None


register_crs(CRS(SRID_WGS84, "WGS 84", _identity, _identity))
register_crs(CRS(SRID_CRS84, "CRS84", _identity, _identity))
register_crs(
    CRS(
        SRID_WEB_MERCATOR,
        "WGS 84 / Pseudo-Mercator",
        _mercator_inverse,
        _mercator_forward,
        units="metre",
    )
)


def register_affine_grid(
    srid: int,
    name: str,
    origin_lon: float,
    origin_lat: float,
    lon_per_col: float,
    lat_per_row: float,
) -> CRS:
    """Register a sensor row/column grid georeferenced to a WGS84 window.

    Grid coordinates are ``(col, row)`` with ``row`` growing *southwards*
    (image convention), so ``lat_per_row`` is typically negative when
    callers pass a positive cell size — this helper negates it for them.
    """
    lat_step = -abs(lat_per_row)

    def to_wgs84(col: float, row: float) -> Coord:
        return (origin_lon + col * lon_per_col, origin_lat + row * lat_step)

    def from_wgs84(lon: float, lat: float) -> Coord:
        return ((lon - origin_lon) / lon_per_col, (lat - origin_lat) / lat_step)

    return register_crs(
        CRS(srid, name, to_wgs84, from_wgs84, units="pixel"), replace=True
    )


def transform_coord(x: float, y: float, from_srid: int, to_srid: int) -> Coord:
    """Re-project a coordinate pair between registered systems."""
    if from_srid == to_srid:
        return (x, y)
    source = get_crs(from_srid)
    target = get_crs(to_srid)
    lon, lat = source.to_wgs84(x, y)
    return target.from_wgs84(lon, lat)


def transform(geom: Geometry, to_srid: int) -> Geometry:
    """Return ``geom`` re-projected into ``to_srid``."""
    if geom.srid == to_srid:
        return geom._clone()
    from repro.geometry.linestring import LinearRing, LineString
    from repro.geometry.multi import GeometryCollection
    from repro.geometry.point import Point
    from repro.geometry.polygon import Polygon

    source = get_crs(geom.srid)
    target = get_crs(to_srid)

    def conv(x: float, y: float) -> Coord:
        lon, lat = source.to_wgs84(x, y)
        return target.from_wgs84(lon, lat)

    if isinstance(geom, Point):
        nx, ny = conv(geom.x, geom.y)
        return Point(nx, ny, srid=to_srid)
    if isinstance(geom, Polygon):
        shell = [conv(x, y) for x, y in geom.shell.coords()]
        holes = [
            [conv(x, y) for x, y in hole.coords()] for hole in geom.holes
        ]
        return Polygon(shell, holes, srid=to_srid)
    if isinstance(geom, LinearRing):
        return LinearRing(
            [conv(x, y) for x, y in geom.coords()], srid=to_srid
        )
    if isinstance(geom, LineString):
        return LineString(
            [conv(x, y) for x, y in geom.coords()], srid=to_srid
        )
    if isinstance(geom, GeometryCollection):
        return type(geom)(
            [transform(g, to_srid) for g in geom.geoms], srid=to_srid
        )
    raise GeometryError(f"cannot transform {geom.geom_type}")


def haversine_m(lon1: float, lat1: float, lon2: float, lat2: float) -> float:
    """Great-circle distance in metres between two WGS84 positions."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = phi2 - phi1
    dlmb = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlmb / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(a)))


def geodesic_distance_m(a: Geometry, b: Geometry) -> float:
    """Approximate metric distance between WGS84 geometries.

    Both geometries are projected to Web Mercator, the planar distance is
    measured there and corrected by the Mercator scale factor at the mean
    latitude — accurate to a few percent at regional scales, which is the
    regime the fire-monitoring queries operate in.
    """
    if a.srid not in (SRID_WGS84, SRID_CRS84):
        a = transform(a, SRID_WGS84)
    if b.srid not in (SRID_WGS84, SRID_CRS84):
        b = transform(b, SRID_WGS84)
    b = b.with_srid(a.srid)
    am = transform(a.with_srid(SRID_WGS84), SRID_WEB_MERCATOR)
    bm = transform(b.with_srid(SRID_WGS84), SRID_WEB_MERCATOR)
    planar = am.distance(bm)
    env = a.envelope.union(b.envelope)
    if env.is_empty:
        return planar
    mean_lat = (env.miny + env.maxy) / 2.0
    return planar * math.cos(math.radians(max(-89.0, min(89.0, mean_lat))))
