"""Abstract geometry base class.

Concrete types (:class:`~repro.geometry.point.Point`, line strings, polygons,
multi-geometries) derive from :class:`Geometry`, which provides the shared
OGC-style method surface.  Heavy lifting is delegated to the
``predicates``, ``measure``, ``overlay``, ``buffer`` and ``srs`` modules via
late imports, keeping the class graph cycle-free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional, Tuple

from repro.geometry.envelope import Envelope

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.geometry.point import Point


class GeometryError(ValueError):
    """Raised for invalid geometric constructions or unsupported operands."""


class Geometry:
    """Base class of all simple-features geometries.

    Geometries are immutable value objects; every operation returns a new
    geometry.  Each geometry carries a spatial reference id (``srid``,
    default 4326 / WGS84) that serialisers and CRS transforms honour.
    """

    #: OGC name, overridden by subclasses ("Point", "Polygon", ...).
    geom_type: str = "Geometry"

    __slots__ = ("srid",)

    def __init__(self, srid: int = 4326):
        self.srid = int(srid)

    # -- structure ---------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """Whether the geometry contains no points."""
        raise NotImplementedError

    @property
    def envelope(self) -> Envelope:
        """The geometry's axis-aligned bounding box."""
        raise NotImplementedError

    def coords(self) -> Iterator[Tuple[float, float]]:
        """Yield every vertex of the geometry."""
        raise NotImplementedError

    def _component_geometries(self) -> Iterator["Geometry"]:
        """Yield atomic (non-collection) parts; atoms yield themselves."""
        yield self

    # -- serialisation -----------------------------------------------------

    @property
    def wkt(self) -> str:
        """OGC Well-Known Text representation."""
        from repro.geometry import wkt as wkt_module

        return wkt_module.to_wkt(self)

    @property
    def gml(self) -> str:
        """GML 3 representation."""
        from repro.geometry import gml as gml_module

        return gml_module.to_gml(self)

    # -- measurement -------------------------------------------------------

    @property
    def area(self) -> float:
        """Planar area (0 for points and lines)."""
        return 0.0

    @property
    def length(self) -> float:
        """Planar boundary/path length (0 for points)."""
        return 0.0

    @property
    def centroid(self) -> "Point":
        """The geometry's centroid."""
        from repro.geometry import measure

        return measure.centroid(self)

    def distance(self, other: "Geometry") -> float:
        """Minimum planar distance to ``other`` (0 if they intersect)."""
        from repro.geometry import measure

        return measure.distance(self, other)

    # -- predicates ----------------------------------------------------------

    def intersects(self, other: "Geometry") -> bool:
        """Whether the geometries share at least one point."""
        from repro.geometry import predicates

        return predicates.intersects(self, other)

    def disjoint(self, other: "Geometry") -> bool:
        """Whether the geometries share no point."""
        return not self.intersects(other)

    def contains(self, other: "Geometry") -> bool:
        """Whether ``other`` lies inside this geometry."""
        from repro.geometry import predicates

        return predicates.contains(self, other)

    def within(self, other: "Geometry") -> bool:
        """Whether this geometry lies inside ``other``."""
        from repro.geometry import predicates

        return predicates.contains(other, self)

    def touches(self, other: "Geometry") -> bool:
        """Whether the geometries meet only at their boundaries."""
        from repro.geometry import predicates

        return predicates.touches(self, other)

    def crosses(self, other: "Geometry") -> bool:
        """Whether the geometries cross (interiors intersect partially,
        with the intersection of lower dimension than the operands)."""
        from repro.geometry import predicates

        return predicates.crosses(self, other)

    def overlaps(self, other: "Geometry") -> bool:
        """Whether same-dimension geometries partially share interior."""
        from repro.geometry import predicates

        return predicates.overlaps(self, other)

    def equals(self, other: "Geometry") -> bool:
        """Spatial equality (mutual containment)."""
        from repro.geometry import predicates

        return predicates.equals(self, other)

    def dwithin(self, other: "Geometry", dist: float) -> bool:
        """Whether ``other`` lies within ``dist`` of this geometry."""
        return self.distance(other) <= dist

    def relate(self, other: "Geometry") -> str:
        """DE-9IM-style relation summary (see ``predicates.relate``)."""
        from repro.geometry import predicates

        return predicates.relate(self, other)

    # -- constructive operations ---------------------------------------------

    def intersection(self, other: "Geometry") -> "Geometry":
        """Return the shared region of the two geometries."""
        from repro.geometry import overlay

        return overlay.intersection(self, other)

    def union(self, other: "Geometry") -> "Geometry":
        """Return the combined region of the two geometries."""
        from repro.geometry import overlay

        return overlay.union(self, other)

    def difference(self, other: "Geometry") -> "Geometry":
        """Return the part of this geometry not covered by ``other``."""
        from repro.geometry import overlay

        return overlay.difference(self, other)

    def symmetric_difference(self, other: "Geometry") -> "Geometry":
        """Return points in exactly one of the two geometries."""
        from repro.geometry import overlay

        return overlay.symmetric_difference(self, other)

    def buffer(self, dist: float, resolution: int = 16) -> "Geometry":
        """Return the geometry expanded by ``dist`` (approximate round
        joins sampled with ``resolution`` points per circle)."""
        from repro.geometry import buffer as buffer_module

        return buffer_module.buffer(self, dist, resolution)

    def convex_hull(self) -> "Geometry":
        """Return the convex hull as a polygon (or lower-dim geometry)."""
        from repro.geometry import overlay

        return overlay.convex_hull_of(self)

    def simplify(self, tolerance: float) -> "Geometry":
        """Return a Douglas–Peucker simplified copy."""
        from repro.geometry import simplify as simplify_module

        return simplify_module.simplify(self, tolerance)

    def transform(self, to_srid: int) -> "Geometry":
        """Return a copy re-projected into CRS ``to_srid``."""
        from repro.geometry import srs

        return srs.transform(self, to_srid)

    def envelope_geometry(self) -> "Geometry":
        """The envelope as a Polygon geometry (or Point if degenerate)."""
        from repro.geometry.point import Point
        from repro.geometry.polygon import Polygon

        env = self.envelope
        if env.is_empty:
            raise GeometryError("empty geometry has no envelope polygon")
        if env.width == 0.0 and env.height == 0.0:
            return Point(env.minx, env.miny, srid=self.srid)
        return Polygon(list(env.corners()), srid=self.srid)

    # -- misc ----------------------------------------------------------------

    def with_srid(self, srid: int) -> "Geometry":
        """Return a copy tagged with ``srid`` (no re-projection)."""
        clone = self._clone()
        clone.srid = int(srid)
        return clone

    def _clone(self) -> "Geometry":
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{self.geom_type} {self.wkt}>"


def require_same_srid(a: Geometry, b: Geometry) -> None:
    """Raise :class:`GeometryError` when operand SRIDs differ."""
    if a.srid != b.srid:
        raise GeometryError(
            f"operands in different CRS: SRID {a.srid} vs {b.srid}; "
            "call .transform() first"
        )


def coerce_point(value: object) -> Optional[Tuple[float, float]]:
    """Best-effort conversion of ``value`` to an ``(x, y)`` tuple."""
    if isinstance(value, (tuple, list)) and len(value) == 2:
        return (float(value[0]), float(value[1]))
    return None
