"""The Point geometry."""

from __future__ import annotations

import math
from typing import Iterator, Tuple

from repro.geometry.base import Geometry, GeometryError
from repro.geometry.envelope import Envelope


class Point(Geometry):
    """A single position in the plane."""

    geom_type = "Point"

    __slots__ = ("x", "y")

    def __init__(self, x: float, y: float, srid: int = 4326):
        super().__init__(srid=srid)
        x = float(x)
        y = float(y)
        if not (math.isfinite(x) and math.isfinite(y)):
            raise GeometryError(f"non-finite point coordinates ({x}, {y})")
        self.x = x
        self.y = y

    @property
    def is_empty(self) -> bool:
        return False

    @property
    def envelope(self) -> Envelope:
        return Envelope.of_point(self.x, self.y)

    def coords(self) -> Iterator[Tuple[float, float]]:
        yield (self.x, self.y)

    @property
    def coord(self) -> Tuple[float, float]:
        """The point's ``(x, y)`` tuple."""
        return (self.x, self.y)

    def _clone(self) -> "Point":
        return Point(self.x, self.y, srid=self.srid)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Point):
            return NotImplemented
        return (
            self.x == other.x
            and self.y == other.y
            and self.srid == other.srid
        )

    def __hash__(self) -> int:
        return hash((self.geom_type, self.x, self.y, self.srid))
