"""Douglas–Peucker simplification for every geometry type."""

from __future__ import annotations

from repro.geometry import algorithms
from repro.geometry.base import Geometry, GeometryError
from repro.geometry.linestring import LinearRing, LineString
from repro.geometry.multi import GeometryCollection, collect, flatten
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon


def simplify(geom: Geometry, tolerance: float) -> Geometry:
    """Return a simplified copy of ``geom``.

    Vertices whose removal displaces the outline by less than ``tolerance``
    are dropped.  Rings that would collapse below 3 vertices are kept
    unsimplified; holes that collapse are removed.
    """
    if tolerance < 0:
        raise GeometryError("tolerance must be non-negative")
    if tolerance == 0 or isinstance(geom, Point):
        return geom._clone()
    if isinstance(geom, GeometryCollection):
        return collect(
            [simplify(g, tolerance) for g in flatten(geom)], srid=geom.srid
        )
    if isinstance(geom, Polygon):
        shell = _simplify_ring(geom.shell, tolerance)
        holes = []
        for hole in geom.holes:
            simplified = _simplify_ring(hole, tolerance, allow_collapse=True)
            if simplified is not None:
                holes.append(simplified)
        if shell is None:
            return geom._clone()
        return Polygon(shell, holes, srid=geom.srid)
    if isinstance(geom, LinearRing):
        ring = _simplify_ring(geom, tolerance)
        if ring is None:
            return geom._clone()
        return LinearRing(ring, srid=geom.srid)
    if isinstance(geom, LineString):
        coords = algorithms.douglas_peucker(list(geom.coords()), tolerance)
        if len(coords) < 2:
            return geom._clone()
        return LineString(coords, srid=geom.srid)
    raise GeometryError(f"cannot simplify {geom.geom_type}")


def _simplify_ring(
    ring: LinearRing, tolerance: float, allow_collapse: bool = False
):
    """Simplify a ring; returns coordinates, None if collapsed/kept."""
    closed = ring.closed_coords()
    coords = algorithms.douglas_peucker(closed, tolerance)
    # Drop the closing duplicate for ring storage.
    if len(coords) >= 2 and algorithms.coords_equal(coords[0], coords[-1]):
        coords = coords[:-1]
    if len(coords) < 3 or abs(algorithms.ring_signed_area(coords)) < 1e-12:
        if allow_collapse:
            return None
        return list(ring.coords())
    return coords
