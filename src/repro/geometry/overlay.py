"""Constructive overlay operations (intersection, union, difference).

Polygon/polygon overlay uses the Greiner–Hormann clipping algorithm.
Greiner–Hormann is exact for polygons in *general position*; degenerate
configurations (shared vertices, collinear overlapping edges — ubiquitous
for the pixel-aligned hotspot polygons the NOA chain produces) are resolved
by deterministically perturbing the clip polygon by a relative ~1e-9 and
retrying, so results are exact up to that perturbation.

Line/polygon overlay is computed exactly by splitting the line at boundary
crossings (:mod:`repro.geometry.linework`); point overlays reduce to
predicates.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.geometry import algorithms, linework
from repro.geometry.algorithms import EPS, Coord
from repro.geometry.base import Geometry, GeometryError, require_same_srid
from repro.geometry.linestring import LinearRing, LineString
from repro.geometry.multi import GeometryCollection, collect, flatten
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon

#: Minimum area below which result rings are discarded as slivers.
_MIN_RING_AREA = 1e-12

#: Parametric margin inside which an edge intersection counts as degenerate.
_ALPHA_EPS = 1e-9

_MAX_PERTURB_ATTEMPTS = 6


class _Degenerate(Exception):
    """Internal signal: the configuration needs perturbation."""


# ---------------------------------------------------------------------------
# Greiner–Hormann machinery (hole-free simple polygons)
# ---------------------------------------------------------------------------


class _Vertex:
    __slots__ = (
        "x",
        "y",
        "next",
        "prev",
        "neighbour",
        "intersect",
        "entry",
        "alpha",
        "visited",
    )

    def __init__(self, x: float, y: float):
        self.x = x
        self.y = y
        self.next: Optional["_Vertex"] = None
        self.prev: Optional["_Vertex"] = None
        self.neighbour: Optional["_Vertex"] = None
        self.intersect = False
        self.entry = False
        self.alpha = 0.0
        self.visited = False

    @property
    def coord(self) -> Coord:
        return (self.x, self.y)


def _build_list(ring: Sequence[Coord]) -> _Vertex:
    head: Optional[_Vertex] = None
    prev: Optional[_Vertex] = None
    for x, y in ring:
        v = _Vertex(x, y)
        if head is None:
            head = v
        else:
            prev.next = v
            v.prev = prev
        prev = v
    assert head is not None and prev is not None
    prev.next = head
    head.prev = prev
    return head


def _iter_vertices(head: _Vertex):
    v = head
    while True:
        yield v
        v = v.next
        if v is head:
            return


def _original_edges(head: _Vertex) -> List[Tuple[_Vertex, _Vertex]]:
    """Edges between consecutive non-intersection vertices."""
    originals = [v for v in _iter_vertices(head) if not v.intersect]
    edges = []
    for i, v in enumerate(originals):
        edges.append((v, originals[(i + 1) % len(originals)]))
    return edges


def _insert_between(start: _Vertex, end: _Vertex, new: _Vertex) -> None:
    """Insert an intersection vertex between ``start`` and ``end`` keeping
    ``alpha`` order (both are original vertices of one edge)."""
    pos = start
    while pos.next is not end and pos.next.alpha < new.alpha:
        pos = pos.next
    new.next = pos.next
    new.prev = pos
    pos.next.prev = new
    pos.next = new


def _edge_intersection(
    a1: Coord, a2: Coord, b1: Coord, b2: Coord
) -> Optional[Tuple[float, float, Coord]]:
    """Proper intersection of open edges; returns (t, u, point).

    Raises :class:`_Degenerate` when the crossing is too close to an
    endpoint or the edges are collinear-overlapping.
    """
    r = (a2[0] - a1[0], a2[1] - a1[1])
    s = (b2[0] - b1[0], b2[1] - b1[1])
    denom = r[0] * s[1] - r[1] * s[0]
    if abs(denom) <= EPS:
        # Parallel: overlapping collinear edges are degenerate.
        if algorithms.on_segment(b1, a1, a2) or algorithms.on_segment(
            b2, a1, a2
        ) or algorithms.on_segment(a1, b1, b2):
            raise _Degenerate
        return None
    qp = (b1[0] - a1[0], b1[1] - a1[1])
    t = (qp[0] * s[1] - qp[1] * s[0]) / denom
    u = (qp[0] * r[1] - qp[1] * r[0]) / denom
    if t < -_ALPHA_EPS or t > 1 + _ALPHA_EPS or u < -_ALPHA_EPS or u > 1 + _ALPHA_EPS:
        return None
    if (
        t < _ALPHA_EPS
        or t > 1 - _ALPHA_EPS
        or u < _ALPHA_EPS
        or u > 1 - _ALPHA_EPS
    ):
        raise _Degenerate
    point = (a1[0] + t * r[0], a1[1] + t * r[1])
    return (t, u, point)


def _point_in(ring: Sequence[Coord], p: Coord) -> int:
    return algorithms.point_in_ring(p, ring)


def _mark_intersections(
    subj_head: _Vertex, clip_head: _Vertex
) -> int:
    count = 0
    for s1, s2 in _original_edges(subj_head):
        for c1, c2 in _original_edges(clip_head):
            hit = _edge_intersection(s1.coord, s2.coord, c1.coord, c2.coord)
            if hit is None:
                continue
            t, u, point = hit
            vs = _Vertex(*point)
            vc = _Vertex(*point)
            vs.intersect = vc.intersect = True
            vs.alpha, vc.alpha = t, u
            vs.neighbour, vc.neighbour = vc, vs
            _insert_between(s1, s2, vs)
            _insert_between(c1, c2, vc)
            count += 1
    return count


def _mark_entries(
    head: _Vertex, other_ring: Sequence[Coord]
) -> None:
    first = head.coord
    where = _point_in(other_ring, first)
    if where == 0:
        raise _Degenerate
    status = where < 0  # outside -> first intersection is an entry
    for v in _iter_vertices(head):
        if v.intersect:
            v.entry = status
            status = not status


def _gh_clip(
    subject: Sequence[Coord],
    clip: Sequence[Coord],
    invert_subject: bool,
    invert_clip: bool,
) -> Optional[List[List[Coord]]]:
    """Core Greiner–Hormann traversal.

    Returns result rings, or ``None`` when there were no crossings (the
    caller resolves containment cases).  Raises :class:`_Degenerate` on
    non-general-position input.
    """
    subj_head = _build_list(subject)
    clip_head = _build_list(clip)
    # Reject configurations with vertices on the other boundary up front.
    for v in _iter_vertices(subj_head):
        if _point_in(clip, v.coord) == 0:
            raise _Degenerate
    for v in _iter_vertices(clip_head):
        if _point_in(subject, v.coord) == 0:
            raise _Degenerate
    n_hits = _mark_intersections(subj_head, clip_head)
    if n_hits == 0:
        return None
    if n_hits % 2 != 0:
        raise _Degenerate
    _mark_entries(subj_head, clip)
    _mark_entries(clip_head, subject)
    if invert_subject:
        for v in _iter_vertices(subj_head):
            if v.intersect:
                v.entry = not v.entry
    if invert_clip:
        for v in _iter_vertices(clip_head):
            if v.intersect:
                v.entry = not v.entry

    results: List[List[Coord]] = []
    unprocessed = [v for v in _iter_vertices(subj_head) if v.intersect]
    for start in unprocessed:
        if start.visited:
            continue
        ring: List[Coord] = [start.coord]
        current = start
        guard = 0
        limit = 8 * (n_hits + len(subject) + len(clip))
        while True:
            current.visited = True
            if current.neighbour is not None:
                current.neighbour.visited = True
            if current.entry:
                while True:
                    current = current.next
                    ring.append(current.coord)
                    if current.intersect:
                        break
            else:
                while True:
                    current = current.prev
                    ring.append(current.coord)
                    if current.intersect:
                        break
            current = current.neighbour
            guard += 1
            if guard > limit:
                raise _Degenerate
            if current is start or (
                current.neighbour is start
            ):
                break
        results.append(ring)
    return results


def _ring_clean(ring: Sequence[Coord]) -> Optional[List[Coord]]:
    """Drop duplicate consecutive vertices and sliver rings."""
    cleaned: List[Coord] = []
    for p in ring:
        if not cleaned or not algorithms.coords_equal(cleaned[-1], p):
            cleaned.append(p)
    while len(cleaned) >= 2 and algorithms.coords_equal(
        cleaned[0], cleaned[-1]
    ):
        cleaned.pop()
    if len(cleaned) < 3:
        return None
    if abs(algorithms.ring_signed_area(cleaned)) < _MIN_RING_AREA:
        return None
    return cleaned


def _perturbed(ring: List[Coord], attempt: int, scale: float) -> List[Coord]:
    """Deterministic pseudo-random jitter, grown per attempt."""
    magnitude = scale * (10.0 ** attempt)
    state = 0x2545F4914F6CDD1D ^ (attempt + 1)
    out: List[Coord] = []
    for x, y in ring:
        state = (state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
        dx = ((state >> 16) % 2001 - 1000) / 1000.0
        state = (state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
        dy = ((state >> 16) % 2001 - 1000) / 1000.0
        out.append((x + dx * magnitude, y + dy * magnitude))
    return out


def _ring_inside(inner: Sequence[Coord], outer: Sequence[Coord]) -> bool:
    """Whether ring ``inner`` lies (non-strictly) inside ring ``outer``."""
    strict_votes = 0
    for p in inner:
        where = _point_in(outer, p)
        if where < 0:
            return False
        if where > 0:
            strict_votes += 1
    if strict_votes:
        return True
    # All vertices on the boundary: decide by centroid.
    c = algorithms.ring_centroid(list(inner))
    return _point_in(outer, c) >= 0


def _shell_op(
    subject: List[Coord], clip: List[Coord], op: str
) -> List[Polygon]:
    """Boolean op between two hole-free rings, with perturbation retries.

    ``op`` is one of ``"int"``, ``"union"``, ``"diff"``.  Returns hole-free
    polygons except for the contained-difference case, which produces a
    polygon with one hole.
    """
    span = max(
        max(x for x, _ in subject) - min(x for x, _ in subject),
        max(y for _, y in subject) - min(y for _, y in subject),
        max(x for x, _ in clip) - min(x for x, _ in clip),
        max(y for _, y in clip) - min(y for _, y in clip),
        1.0,
    )
    base_scale = span * 1e-9
    # Entry-flag transformation (Greiner–Hormann):
    #   intersection: flags as computed
    #   union:        invert both
    #   A \ B:        invert the subject's flags
    invert_subject = op in ("union", "diff")
    invert_clip = op in ("union",)
    current_clip = clip
    for attempt in range(_MAX_PERTURB_ATTEMPTS):
        try:
            rings = _gh_clip(
                subject, current_clip, invert_subject, invert_clip
            )
        except _Degenerate:
            current_clip = _perturbed(clip, attempt, base_scale)
            continue
        if rings is None:
            return _containment_result(subject, current_clip, op)
        polys: List[Polygon] = []
        for ring in rings:
            cleaned = _ring_clean(ring)
            if cleaned is not None:
                polys.append(Polygon(cleaned))
        return polys
    raise GeometryError(
        "polygon overlay failed to reach general position after "
        f"{_MAX_PERTURB_ATTEMPTS} perturbation attempts"
    )


def _containment_result(
    subject: List[Coord], clip: List[Coord], op: str
) -> List[Polygon]:
    subj_in_clip = _ring_inside(subject, clip)
    clip_in_subj = _ring_inside(clip, subject)
    if op == "int":
        if subj_in_clip:
            return [Polygon(subject)]
        if clip_in_subj:
            return [Polygon(clip)]
        return []
    if op == "union":
        if subj_in_clip:
            return [Polygon(clip)]
        if clip_in_subj:
            return [Polygon(subject)]
        return [Polygon(subject), Polygon(clip)]
    # diff
    if subj_in_clip:
        return []
    if clip_in_subj:
        return [Polygon(subject, holes=[clip])]
    return [Polygon(subject)]


# ---------------------------------------------------------------------------
# Polygon-with-holes boolean algebra
# ---------------------------------------------------------------------------


def _shell_coords(poly: Polygon) -> List[Coord]:
    return list(poly.shell.coords())


def _hole_polygons(poly: Polygon) -> List[Polygon]:
    return [Polygon(list(h.coords()), srid=poly.srid) for h in poly.holes]


def _polygon_intersection(a: Polygon, b: Polygon) -> List[Polygon]:
    pieces = _shell_op(_shell_coords(a), _shell_coords(b), "int")
    for hole in _hole_polygons(a) + _hole_polygons(b):
        pieces = _subtract_from_pieces(pieces, hole)
    return pieces


def _polygon_difference(a: Polygon, b: Polygon) -> List[Polygon]:
    # A \ B = ((Ashell \ Bshell) ∪ (Ashell ∩ holesB)) \ holesA
    pieces = _shell_op(_shell_coords(a), _shell_coords(b), "diff")
    shell_a = Polygon(_shell_coords(a), srid=a.srid)
    for hole_b in _hole_polygons(b):
        pieces.extend(_polygon_intersection(shell_a, hole_b))
    for hole_a in _hole_polygons(a):
        pieces = _subtract_from_pieces(pieces, hole_a)
    return pieces


def _polygon_union(a: Polygon, b: Polygon) -> List[Polygon]:
    pieces = _shell_op(_shell_coords(a), _shell_coords(b), "union")
    for hole_a in _hole_polygons(a):
        survivors = _polygon_difference(hole_a, b)
        for s in survivors:
            pieces = _subtract_from_pieces(pieces, s)
    for hole_b in _hole_polygons(b):
        survivors = _polygon_difference(hole_b, a)
        for s in survivors:
            pieces = _subtract_from_pieces(pieces, s)
    return pieces


def _subtract_from_pieces(
    pieces: List[Polygon], cut: Polygon
) -> List[Polygon]:
    out: List[Polygon] = []
    for piece in pieces:
        if not piece.envelope.intersects(cut.envelope):
            out.append(piece)
            continue
        out.extend(_polygon_difference_flat(piece, cut))
    return out


def _polygon_difference_flat(a: Polygon, cut: Polygon) -> List[Polygon]:
    """Difference where ``cut`` is hole-free (internal helper)."""
    pieces = _shell_op(_shell_coords(a), _shell_coords(cut), "diff")
    for hole_a in _hole_polygons(a):
        pieces = [
            p
            for piece in pieces
            for p in _shell_diff_with_holes(piece, hole_a)
        ]
    return pieces


def _shell_diff_with_holes(piece: Polygon, hole: Polygon) -> List[Polygon]:
    if not piece.envelope.intersects(hole.envelope):
        return [piece]
    result = _shell_op(_shell_coords(piece), _shell_coords(hole), "diff")
    # Preserve existing holes of the piece.
    if piece.holes:
        final: List[Polygon] = []
        for r in result:
            holes = list(r.holes) + [
                list(h.coords())
                for h in piece.holes
                if _ring_inside(list(h.coords()), _shell_coords(r))
            ]
            final.append(Polygon(_shell_coords(r), holes, srid=piece.srid))
        return final
    return result


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def intersection(a: Geometry, b: Geometry) -> Geometry:
    """The shared region of ``a`` and ``b``."""
    require_same_srid(a, b)
    srid = a.srid
    parts: List[Geometry] = []
    for ga in flatten(a):
        for gb in flatten(b):
            parts.extend(_atom_intersection(ga, gb))
    return collect(parts, srid=srid)


def _atom_intersection(a: Geometry, b: Geometry) -> List[Geometry]:
    if not a.envelope.intersects(b.envelope):
        return []
    if isinstance(a, Point):
        return [a._clone()] if _point_covered(a, b) else []
    if isinstance(b, Point):
        return [b._clone()] if _point_covered(b, a) else []
    if isinstance(a, LineString) and isinstance(b, Polygon):
        return _clip_line_to_polygon(a, b, keep_inside=True)
    if isinstance(a, Polygon) and isinstance(b, LineString):
        return _clip_line_to_polygon(b, a, keep_inside=True)
    if isinstance(a, LineString) and isinstance(b, LineString):
        return _line_line_intersection_points(a, b)
    if isinstance(a, Polygon) and isinstance(b, Polygon):
        return [p.with_srid(a.srid) for p in _polygon_intersection(a, b)]
    raise GeometryError(
        f"intersection not supported for {a.geom_type}/{b.geom_type}"
    )


def _point_covered(p: Point, geom: Geometry) -> bool:
    from repro.geometry import predicates

    return predicates.covers(geom, p)


def _clip_line_to_polygon(
    line: LineString, poly: Polygon, keep_inside: bool
) -> List[Geometry]:
    coords = (
        line.closed_coords()
        if isinstance(line, LinearRing)
        else list(line.coords())
    )
    pieces = linework.split_path_by_polygon(coords, poly)
    keep = (
        (linework.INTERIOR, linework.BOUNDARY)
        if keep_inside
        else (linework.EXTERIOR,)
    )
    out: List[Geometry] = []
    for where, piece in pieces:
        if where in keep and len(piece) >= 2:
            out.append(LineString(piece, srid=line.srid))
    return out


def _line_line_intersection_points(
    a: LineString, b: LineString
) -> List[Geometry]:
    ca = list(a.coords())
    cb = list(b.coords())
    if isinstance(a, LinearRing):
        ca = a.closed_coords()
    if isinstance(b, LinearRing):
        cb = b.closed_coords()
    points: List[Geometry] = []
    seen: List[Coord] = []
    for i in range(len(ca) - 1):
        for j in range(len(cb) - 1):
            p = algorithms.segment_intersection_point(
                ca[i], ca[i + 1], cb[j], cb[j + 1]
            )
            if p is None:
                continue
            if any(algorithms.coords_equal(p, q) for q in seen):
                continue
            seen.append(p)
            points.append(Point(p[0], p[1], srid=a.srid))
    return points


def union(a: Geometry, b: Geometry) -> Geometry:
    """The combined region of ``a`` and ``b``."""
    require_same_srid(a, b)
    polys_a = [g for g in flatten(a) if isinstance(g, Polygon)]
    polys_b = [g for g in flatten(b) if isinstance(g, Polygon)]
    others = [
        g
        for g in flatten(a) + flatten(b)
        if not isinstance(g, Polygon)
    ]
    merged = union_all(polys_a + polys_b) if (polys_a or polys_b) else []
    return collect(
        [p.with_srid(a.srid) for p in merged] + [g._clone() for g in others],
        srid=a.srid,
    )


def union_all(polys: Sequence[Polygon]) -> List[Polygon]:
    """Cascaded union of polygons (returns disjoint pieces)."""
    pending = [p for p in polys if not p.is_empty]
    result: List[Polygon] = []
    while pending:
        current = pending.pop()
        merged_any = True
        while merged_any:
            merged_any = False
            rest: List[Polygon] = []
            for other in pending:
                if current.envelope.intersects(other.envelope):
                    pieces = _polygon_union(current, other)
                    if len(pieces) == 1:
                        current = pieces[0]
                        merged_any = True
                        continue
                rest.append(other)
            pending = rest
        result.append(current)
    return result


def difference(a: Geometry, b: Geometry) -> Geometry:
    """Points of ``a`` not covered by ``b``."""
    require_same_srid(a, b)
    parts: List[Geometry] = []
    for ga in flatten(a):
        remains: List[Geometry] = [ga]
        for gb in flatten(b):
            next_remains: List[Geometry] = []
            for piece in remains:
                next_remains.extend(_atom_difference(piece, gb))
            remains = next_remains
        parts.extend(remains)
    return collect([p.with_srid(a.srid) for p in parts], srid=a.srid)


def _atom_difference(a: Geometry, b: Geometry) -> List[Geometry]:
    if not a.envelope.intersects(b.envelope):
        return [a]
    if isinstance(a, Point):
        return [] if _point_covered(a, b) else [a]
    if isinstance(a, LineString) and isinstance(b, Polygon):
        return _clip_line_to_polygon(a, b, keep_inside=False)
    if isinstance(a, LineString):
        return [a]  # subtracting points/lines leaves measure unchanged
    if isinstance(a, Polygon) and isinstance(b, Polygon):
        return [p for p in _polygon_difference(a, b)]
    if isinstance(a, Polygon):
        return [a]  # subtracting lower-dimensional geometry: no-op
    raise GeometryError(
        f"difference not supported for {a.geom_type}/{b.geom_type}"
    )


def symmetric_difference(a: Geometry, b: Geometry) -> Geometry:
    """Points in exactly one of ``a``, ``b``."""
    left = difference(a, b)
    right = difference(b, a)
    return union(left, right)


def convex_hull_of(geom: Geometry) -> Geometry:
    """Convex hull as Polygon / LineString / Point by dimensionality."""
    coords = list(geom.coords())
    if not coords:
        return GeometryCollection([], srid=geom.srid)
    hull = algorithms.convex_hull(coords)
    if len(hull) == 1:
        return Point(hull[0][0], hull[0][1], srid=geom.srid)
    if len(hull) == 2:
        return LineString(hull, srid=geom.srid)
    return Polygon(hull, srid=geom.srid)
