"""Geometry buffering (dilation).

Buffers are *approximate*: circles are sampled as regular ``resolution``-gons
and joins are resolved through polygon union, so the result underestimates
the true buffer by at most ``dist * (1 - cos(pi / resolution))``.  This is
the standard discrete-buffer construction and is adequate for the
"within d" style map queries the TELEIOS demo runs (where exactness comes
from :meth:`Geometry.dwithin`, which uses true distances).
"""

from __future__ import annotations

import math
from typing import List

from repro.geometry import overlay
from repro.geometry.base import Geometry, GeometryError
from repro.geometry.linestring import LinearRing, LineString
from repro.geometry.multi import collect, flatten
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon


def buffer(geom: Geometry, dist: float, resolution: int = 16) -> Geometry:
    """Return ``geom`` dilated by ``dist``.

    Negative distances are only supported for polygons (erosion by vertex
    offsetting, approximate).  A zero distance returns a clone.
    """
    if resolution < 4:
        raise GeometryError("buffer resolution must be >= 4")
    if dist == 0.0:
        return geom._clone()
    if dist < 0.0:
        return _erode(geom, -dist)
    pieces: List[Polygon] = []
    for atom in flatten(geom):
        pieces.extend(_atom_buffer(atom, dist, resolution))
    merged = overlay.union_all(pieces)
    return collect([p.with_srid(geom.srid) for p in merged], srid=geom.srid)


def _atom_buffer(
    geom: Geometry, dist: float, resolution: int
) -> List[Polygon]:
    if isinstance(geom, Point):
        return [Polygon.regular(geom.x, geom.y, dist, resolution)]
    if isinstance(geom, LineString):
        coords = (
            geom.closed_coords()
            if isinstance(geom, LinearRing)
            else list(geom.coords())
        )
        return _path_buffer(coords, dist, resolution)
    if isinstance(geom, Polygon):
        pieces = [Polygon(list(geom.shell.coords()))]
        pieces.extend(
            _path_buffer(geom.shell.closed_coords(), dist, resolution)
        )
        # Holes shrink; approximate by subtracting the eroded holes later —
        # for dilation we simply keep holes that survive the margin.
        result = overlay.union_all(pieces)
        survivors: List[Polygon] = []
        for piece in result:
            holes = []
            for hole in geom.holes:
                eroded = _offset_ring(list(hole.coords()), -dist)
                if eroded is not None:
                    holes.append(eroded)
            if holes:
                piece = Polygon(
                    list(piece.shell.coords()),
                    [h for h in holes],
                )
            survivors.append(piece)
        return survivors
    raise GeometryError(f"cannot buffer {geom.geom_type}")


def _path_buffer(coords, dist: float, resolution: int) -> List[Polygon]:
    """Union of per-segment capsules approximating a path buffer."""
    pieces: List[Polygon] = []
    for i in range(len(coords) - 1):
        (x1, y1), (x2, y2) = coords[i], coords[i + 1]
        dx, dy = x2 - x1, y2 - y1
        seg = math.hypot(dx, dy)
        if seg <= 0.0:
            continue
        nx, ny = -dy / seg * dist, dx / seg * dist
        pieces.append(
            Polygon(
                [
                    (x1 + nx, y1 + ny),
                    (x2 + nx, y2 + ny),
                    (x2 - nx, y2 - ny),
                    (x1 - nx, y1 - ny),
                ]
            )
        )
    for x, y in coords:
        pieces.append(Polygon.regular(x, y, dist, resolution))
    return pieces


def _offset_ring(ring, delta: float):
    """Offset a ring inward/outward along vertex bisectors (miter joins).

    Returns ``None`` when the ring collapses.  Approximate: concave rings
    offset outward by large deltas may self-intersect.
    """
    from repro.geometry import algorithms

    n = len(ring)
    if n < 3:
        return None
    ccw = algorithms.ring_is_ccw(ring)
    sign = 1.0 if ccw else -1.0
    out = []
    for i in range(n):
        p_prev = ring[(i - 1) % n]
        p = ring[i]
        p_next = ring[(i + 1) % n]
        v1 = _unit(p[0] - p_prev[0], p[1] - p_prev[1])
        v2 = _unit(p_next[0] - p[0], p_next[1] - p[1])
        if v1 is None or v2 is None:
            continue
        # Outward normals: positive delta grows the enclosed area.  For a
        # ccw ring the interior is to the left, so outward is the right
        # normal (vy, -vx).
        n1 = (v1[1] * sign, -v1[0] * sign)
        n2 = (v2[1] * sign, -v2[0] * sign)
        bx, by = n1[0] + n2[0], n1[1] + n2[1]
        blen = math.hypot(bx, by)
        if blen < 1e-12:
            continue
        # Miter scale limited to 4x to avoid spikes.
        cos_half = blen / 2.0
        scale = min(1.0 / max(cos_half, 1e-6), 4.0)
        out.append(
            (p[0] + bx / blen * delta * scale, p[1] + by / blen * delta * scale)
        )
    if len(out) < 3:
        return None
    area_in = algorithms.ring_signed_area(ring)
    area_out = algorithms.ring_signed_area(out)
    if abs(area_out) < 1e-12:
        return None
    # Offsetting past the inradius inverts the ring; detect collapse by a
    # flipped orientation or by area moving the wrong way.
    if (area_out > 0) != (area_in > 0):
        return None
    if delta < 0 and abs(area_out) >= abs(area_in):
        return None
    if delta > 0 and abs(area_out) <= abs(area_in):
        return None
    return out


def _unit(x: float, y: float):
    norm = math.hypot(x, y)
    if norm < 1e-12:
        return None
    return (x / norm, y / norm)


def _erode(geom: Geometry, dist: float) -> Geometry:
    polys = [g for g in flatten(geom) if isinstance(g, Polygon)]
    if not polys:
        raise GeometryError("negative buffer only supported for polygons")
    pieces: List[Polygon] = []
    for poly in polys:
        shell = _offset_ring(list(poly.shell.coords()), -dist)
        if shell is None:
            continue
        holes = []
        for hole in poly.holes:
            grown = _offset_ring(list(hole.coords()), dist)
            if grown is not None:
                holes.append(grown)
        pieces.append(Polygon(shell, holes, srid=geom.srid))
    return collect(pieces, srid=geom.srid)
