"""Multi-part geometries and geometry collections."""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.geometry.base import Geometry, GeometryError
from repro.geometry.envelope import Envelope
from repro.geometry.linestring import LineString
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon

Coord = Tuple[float, float]


class GeometryCollection(Geometry):
    """A heterogeneous bag of geometries.

    Subclasses restrict the member type (MultiPoint etc.).  Collections may
    be empty — this is the canonical "empty geometry" of the engine.
    """

    geom_type = "GeometryCollection"
    _member_type = Geometry

    __slots__ = ("geoms",)

    def __init__(self, geoms: Iterable[Geometry] = (), srid: int = 4326):
        super().__init__(srid=srid)
        members: List[Geometry] = []
        for g in geoms:
            if not isinstance(g, self._member_type):
                raise GeometryError(
                    f"{self.geom_type} cannot contain {g.geom_type}"
                )
            if g.srid != srid:
                g = g.with_srid(srid)
            members.append(g)
        self.geoms: Tuple[Geometry, ...] = tuple(members)

    @property
    def is_empty(self) -> bool:
        return not self.geoms

    @property
    def envelope(self) -> Envelope:
        env = Envelope.empty()
        for g in self.geoms:
            env = env.union(g.envelope)
        return env

    def coords(self) -> Iterator[Coord]:
        for g in self.geoms:
            yield from g.coords()

    def _component_geometries(self) -> Iterator[Geometry]:
        for g in self.geoms:
            yield from g._component_geometries()

    @property
    def area(self) -> float:
        return sum(g.area for g in self.geoms)

    @property
    def length(self) -> float:
        return sum(g.length for g in self.geoms)

    def _clone(self) -> "GeometryCollection":
        return type(self)(self.geoms, srid=self.srid)

    def __len__(self) -> int:
        return len(self.geoms)

    def __iter__(self) -> Iterator[Geometry]:
        return iter(self.geoms)

    def __getitem__(self, index: int) -> Geometry:
        return self.geoms[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GeometryCollection):
            return NotImplemented
        return (
            type(self) is type(other)
            and self.geoms == other.geoms
            and self.srid == other.srid
        )

    def __hash__(self) -> int:
        return hash((self.geom_type, self.geoms, self.srid))


class MultiPoint(GeometryCollection):
    """A set of points."""

    geom_type = "MultiPoint"
    _member_type = Point

    __slots__ = ()

    @classmethod
    def from_coords(
        cls, coords: Iterable[Sequence[float]], srid: int = 4326
    ) -> "MultiPoint":
        return cls(
            [Point(c[0], c[1], srid=srid) for c in coords], srid=srid
        )


class MultiLineString(GeometryCollection):
    """A set of line strings."""

    geom_type = "MultiLineString"
    _member_type = LineString

    __slots__ = ()


class MultiPolygon(GeometryCollection):
    """A set of polygons."""

    geom_type = "MultiPolygon"
    _member_type = Polygon

    __slots__ = ()

    def contains_coord(self, x: float, y: float) -> bool:
        """Whether any member polygon contains ``(x, y)``."""
        return any(p.contains_coord(x, y) for p in self.geoms)


def flatten(geom: Geometry) -> List[Geometry]:
    """Return the atomic parts of ``geom`` (collections recursively opened)."""
    return list(geom._component_geometries())


def collect(geoms: Sequence[Geometry], srid: int = 4326) -> Geometry:
    """Package atomic geometries into the most specific collection type.

    A single geometry is returned as-is; homogeneous sets become Multi*
    geometries; mixed sets become a :class:`GeometryCollection`.
    """
    atoms: List[Geometry] = []
    for g in geoms:
        atoms.extend(g._component_geometries())
    if not atoms:
        return GeometryCollection([], srid=srid)
    if len(atoms) == 1:
        return atoms[0]
    kinds = {type(a) for a in atoms}
    if kinds == {Point}:
        return MultiPoint(atoms, srid=srid)
    if kinds <= {LineString} or all(isinstance(a, LineString) for a in atoms):
        return MultiLineString(atoms, srid=srid)
    if kinds == {Polygon}:
        return MultiPolygon(atoms, srid=srid)
    return GeometryCollection(atoms, srid=srid)
