"""R-tree spatial index.

Supports both incremental insertion (Guttman's quadratic-split R-tree) and
Sort-Tile-Recursive (STR) bulk loading.  The Strabon store uses it to
accelerate stSPARQL spatial filters; benchmark ``A1`` measures exactly this
index against a full scan.

For *batch* spatial filtering (many probe envelopes against one tree —
the shape of a spatial FILTER applied across many solutions),
:meth:`RTree.query_batch` snapshots every leaf entry into packed numpy
envelope arrays (:class:`repro.geometry.envelope.PackedEnvelopes`) and
answers each probe with one vectorised intersection pass, optionally
fanning the probes out over the shared worker pool.  Results are
identical to per-probe :meth:`RTree.query` calls, including item order.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro import obs
from repro.geometry.envelope import Envelope, PackedEnvelopes


class _Node:
    __slots__ = ("leaf", "entries", "envelope")

    def __init__(self, leaf: bool):
        self.leaf = leaf
        # Leaf entries: (Envelope, item); inner entries: (Envelope, _Node).
        self.entries: List[Tuple[Envelope, Any]] = []
        self.envelope = Envelope.empty()

    def recompute_envelope(self) -> None:
        env = Envelope.empty()
        for e, _ in self.entries:
            env = env.union(e)
        self.envelope = env


class RTree:
    """A 2-D R-tree over ``(envelope, item)`` pairs.

    ``max_entries`` is the node fan-out (M); ``min_entries`` defaults to
    ``M // 2``.
    """

    def __init__(self, max_entries: int = 8):
        if max_entries < 4:
            raise ValueError("max_entries must be >= 4")
        self._max = max_entries
        self._min = max(2, max_entries // 2)
        self._root = _Node(leaf=True)
        self._size = 0
        # Packed leaf-entry snapshot for query_batch, built lazily and
        # dropped on any structural mutation.
        self._packed: Optional[Tuple[PackedEnvelopes, List[Any]]] = None

    # -- construction -------------------------------------------------------

    @classmethod
    def bulk_load(
        cls,
        items: Iterable[Tuple[Envelope, Any]],
        max_entries: int = 8,
    ) -> "RTree":
        """Build a packed tree with Sort-Tile-Recursive loading.

        Always returns a *fresh* tree (callers replacing an existing
        index swap the reference), so its packed snapshot starts
        vacuously unset — there is no pre-existing ``query_batch``
        snapshot to go stale.
        """
        tree = cls(max_entries=max_entries)
        entries = [(env, item) for env, item in items]
        tree._size = len(entries)
        if not entries:
            return tree
        leaves = tree._str_pack(
            [(env, item) for env, item in entries], leaf=True
        )
        level = leaves
        while len(level) > 1:
            level = tree._str_pack(
                [(node.envelope, node) for node in level], leaf=False
            )
        tree._root = level[0]
        return tree

    def _str_pack(
        self, entries: List[Tuple[Envelope, Any]], leaf: bool
    ) -> List[_Node]:
        import math

        cap = self._max
        n = len(entries)
        n_nodes = max(1, math.ceil(n / cap))
        n_slices = max(1, math.ceil(math.sqrt(n_nodes)))
        per_slice = math.ceil(n / n_slices)
        entries = sorted(
            entries, key=lambda e: (e[0].minx + e[0].maxx) / 2.0
        )
        nodes: List[_Node] = []
        for i in range(0, n, per_slice):
            chunk = sorted(
                entries[i : i + per_slice],
                key=lambda e: (e[0].miny + e[0].maxy) / 2.0,
            )
            for j in range(0, len(chunk), cap):
                node = _Node(leaf=leaf)
                node.entries = list(chunk[j : j + cap])
                node.recompute_envelope()
                nodes.append(node)
        return nodes

    # -- mutation ------------------------------------------------------------

    def insert(self, envelope: Envelope, item: Any) -> None:
        """Insert an item under its envelope."""
        if envelope.is_empty:
            raise ValueError("cannot index an empty envelope")
        split = self._insert(self._root, envelope, item)
        if split is not None:
            old_root = self._root
            self._root = _Node(leaf=False)
            self._root.entries = [
                (old_root.envelope, old_root),
                (split.envelope, split),
            ]
            self._root.recompute_envelope()
        self._size += 1
        # Invalidate the packed snapshot AFTER the structural work: a
        # reader that rebuilds the snapshot while the mutation is
        # mid-flight (the batch-filtering threads race tree maintenance
        # exactly this way) would otherwise re-cache a stale snapshot
        # that nothing ever clears again.
        self._packed = None

    def _insert(
        self, node: _Node, envelope: Envelope, item: Any
    ) -> Optional[_Node]:
        node.envelope = node.envelope.union(envelope)
        if node.leaf:
            node.entries.append((envelope, item))
            if len(node.entries) > self._max:
                return self._split(node)
            return None
        best_index = self._choose_subtree(node, envelope)
        child = node.entries[best_index][1]
        split = self._insert(child, envelope, item)
        node.entries[best_index] = (child.envelope, child)
        if split is not None:
            node.entries.append((split.envelope, split))
            if len(node.entries) > self._max:
                return self._split(node)
        return None

    def _choose_subtree(self, node: _Node, envelope: Envelope) -> int:
        best_index = 0
        best_cost = None
        for i, (env, _) in enumerate(node.entries):
            cost = (env.enlargement(envelope), env.area)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_index = i
        return best_index

    def _split(self, node: _Node) -> _Node:
        """Guttman quadratic split; ``node`` keeps one group, the new node
        gets the other."""
        entries = node.entries
        # Pick the pair wasting the most area as seeds.
        worst = -1.0
        seed_a = 0
        seed_b = 1
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                combined = entries[i][0].union(entries[j][0])
                waste = (
                    combined.area - entries[i][0].area - entries[j][0].area
                )
                if waste > worst:
                    worst = waste
                    seed_a, seed_b = i, j
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        env_a = entries[seed_a][0]
        env_b = entries[seed_b][0]
        remaining = [
            e for k, e in enumerate(entries) if k not in (seed_a, seed_b)
        ]
        while remaining:
            # Force-assign when one group must take all the rest.
            if len(group_a) + len(remaining) == self._min:
                group_a.extend(remaining)
                for env, _ in remaining:
                    env_a = env_a.union(env)
                break
            if len(group_b) + len(remaining) == self._min:
                group_b.extend(remaining)
                for env, _ in remaining:
                    env_b = env_b.union(env)
                break
            # Pick the entry with maximum preference difference.
            best_index = 0
            best_diff = -1.0
            for i, (env, _) in enumerate(remaining):
                d1 = env_a.enlargement(env)
                d2 = env_b.enlargement(env)
                diff = abs(d1 - d2)
                if diff > best_diff:
                    best_diff = diff
                    best_index = i
            env, payload = remaining.pop(best_index)
            if env_a.enlargement(env) <= env_b.enlargement(env):
                group_a.append((env, payload))
                env_a = env_a.union(env)
            else:
                group_b.append((env, payload))
                env_b = env_b.union(env)
        node.entries = group_a
        node.recompute_envelope()
        sibling = _Node(leaf=node.leaf)
        sibling.entries = group_b
        sibling.recompute_envelope()
        return sibling

    def remove(self, envelope: Envelope, item: Any) -> bool:
        """Remove one ``(envelope, item)`` entry; returns success.

        Uses the condense-and-reinsert strategy: underfull nodes on the
        removal path are dissolved and their entries reinserted.
        """
        path: List[_Node] = []
        leaf = self._find_leaf(self._root, envelope, item, path)
        if leaf is None:
            return False
        leaf.entries = [
            (env, it)
            for env, it in leaf.entries
            if not (it == item and env == envelope)
        ]
        self._size -= 1
        orphans: List[Tuple[Envelope, Any]] = []
        self._condense(path, orphans)
        for env, it in orphans:
            self._size -= 1  # reinsert re-increments
            self.insert(env, it)
        # Shrink the root if it became a single-child inner node.
        while not self._root.leaf and len(self._root.entries) == 1:
            self._root = self._root.entries[0][1]
        # Invalidate last (see insert): entry filtering, condensation and
        # orphan reinsertion are all structural; a snapshot rebuilt by a
        # concurrent reader at any point in between must not survive the
        # removal.
        self._packed = None
        return True

    def _find_leaf(
        self,
        node: _Node,
        envelope: Envelope,
        item: Any,
        path: List[_Node],
    ) -> Optional[_Node]:
        path.append(node)
        if node.leaf:
            for env, it in node.entries:
                if it == item and env == envelope:
                    return node
            path.pop()
            return None
        for env, child in node.entries:
            if env.contains(envelope):
                found = self._find_leaf(child, envelope, item, path)
                if found is not None:
                    return found
        path.pop()
        return None

    def _condense(
        self, path: List[_Node], orphans: List[Tuple[Envelope, Any]]
    ) -> None:
        for depth in range(len(path) - 1, 0, -1):
            node = path[depth]
            parent = path[depth - 1]
            if len(node.entries) < self._min and node is not self._root:
                parent.entries = [
                    (env, child)
                    for env, child in parent.entries
                    if child is not node
                ]
                self._collect_entries(node, orphans)
            else:
                node.recompute_envelope()
                parent.entries = [
                    (child.envelope if child is node else env, child)
                    for env, child in parent.entries
                ]
        path[0].recompute_envelope()

    def _collect_entries(
        self, node: _Node, out: List[Tuple[Envelope, Any]]
    ) -> None:
        if node.leaf:
            out.extend(node.entries)
            return
        for _, child in node.entries:
            self._collect_entries(child, out)

    # -- queries -------------------------------------------------------------

    def query(self, envelope: Envelope) -> List[Any]:
        """All items whose envelopes intersect ``envelope``."""
        return list(self.iter_query(envelope))

    def iter_query(self, envelope: Envelope) -> Iterator[Any]:
        """Lazily yield items whose envelopes intersect ``envelope``."""
        if envelope.is_empty or self._size == 0:
            return
        visits = 0
        try:
            stack = [self._root]
            while stack:
                node = stack.pop()
                visits += 1
                if not node.envelope.intersects(envelope):
                    continue
                if node.leaf:
                    for env, item in node.entries:
                        if env.intersects(envelope):
                            yield item
                else:
                    for env, child in node.entries:
                        if env.intersects(envelope):
                            stack.append(child)
        finally:
            # Flushed even when the consumer abandons the generator, so
            # partial walks are still accounted.
            obs.counter("rtree.query.calls").inc()
            obs.counter("rtree.query.node_visits").inc(visits)

    def query_point(self, x: float, y: float) -> List[Any]:
        """All items whose envelopes contain the point."""
        return self.query(Envelope.of_point(x, y))

    def packed_entries(self) -> Tuple[PackedEnvelopes, List[Any]]:
        """Every leaf entry as (packed envelopes, parallel item list).

        The snapshot is ordered exactly as :meth:`iter_query` visits
        entries (both walk the same DFS stack), cached until the next
        structural mutation.
        """
        if self._packed is None:
            envelopes: List[Envelope] = []
            items: List[Any] = []
            for env, item in self.items():
                envelopes.append(env)
                items.append(item)
            self._packed = (PackedEnvelopes.pack(envelopes), items)
            obs.counter("rtree.snapshot.rebuilds").inc()
        return self._packed

    def query_batch(
        self,
        envelopes: Sequence[Envelope],
        workers: Optional[int] = None,
        scheduler=None,
    ) -> List[List[Any]]:
        """Batch query: one result list per probe envelope.

        Equivalent to ``[self.query(e) for e in envelopes]`` (same items,
        same order) but each probe is a vectorised intersection test over
        the packed leaf snapshot, and probes fan out across the shared
        worker pool (``workers``/``REPRO_WORKERS``; numpy releases the
        GIL during the comparisons).
        """
        from repro import parallel

        envelopes = list(envelopes)
        if not envelopes:
            return []
        obs.counter("rtree.query_batch.calls").inc()
        obs.counter("rtree.query_batch.probes").inc(len(envelopes))
        if self._size == 0:
            return [[] for _ in envelopes]
        packed, items = self.packed_entries()

        def probe(envelope: Envelope) -> List[Any]:
            # tolist() converts indices to plain ints in one C pass —
            # iterating numpy scalars dominates this loop otherwise.
            hits = packed.intersecting(envelope).tolist()
            return [items[i] for i in hits]

        sched = parallel.get_scheduler(scheduler, workers)
        if sched.workers == 1 or len(envelopes) == 1:
            return [probe(envelope) for envelope in envelopes]
        # Band the probes so each worker gets a few chunky tasks rather
        # than one queue round-trip per probe.
        bands = parallel.split_bands(len(envelopes), sched.workers * 2)
        parts = sched.map(
            lambda band: [probe(e) for e in envelopes[band[0]:band[1]]],
            bands,
        )
        return [result for part in parts for result in part]

    def nearest(
        self,
        x: float,
        y: float,
        k: int = 1,
        max_distance: float = float("inf"),
    ) -> List[Any]:
        """The ``k`` items with minimum envelope distance to ``(x, y)``.

        Distance is measured to item envelopes; callers needing exact
        geometry distances should over-fetch and re-rank.
        """
        if self._size == 0 or k <= 0:
            return []
        probe = Envelope.of_point(x, y)
        counter = itertools.count()
        heap: List[Tuple[float, int, bool, Any]] = [
            (self._root.envelope.distance(probe), next(counter), False, self._root)
        ]
        results: List[Any] = []
        while heap and len(results) < k:
            dist, _, is_item, payload = heapq.heappop(heap)
            if dist > max_distance:
                break
            if is_item:
                results.append(payload)
                continue
            node: _Node = payload
            for env, child in node.entries:
                heapq.heappush(
                    heap,
                    (env.distance(probe), next(counter), node.leaf, child),
                )
        return results

    def items(self) -> Iterator[Tuple[Envelope, Any]]:
        """Yield every indexed (envelope, item) pair."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.leaf:
                yield from node.entries
            else:
                stack.extend(child for _, child in node.entries)

    @property
    def envelope(self) -> Envelope:
        """Envelope of everything indexed."""
        return self._root.envelope

    def __len__(self) -> int:
        return self._size

    def height(self) -> int:
        """Tree height (1 for a leaf-only tree)."""
        h = 1
        node = self._root
        while not node.leaf:
            h += 1
            node = node.entries[0][1]
        return h
