"""OGC Well-Known Text reader and writer.

Supports the 2-D simple-features types plus the PostGIS-style ``SRID=n;``
prefix (EWKT) that stRDF literals use, and the ``EMPTY`` keyword for
collections.
"""

from __future__ import annotations

import re
from typing import List, Tuple

from repro.geometry.base import Geometry
from repro.geometry.linestring import LineString
from repro.geometry.multi import (
    GeometryCollection,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
)
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon

Coord = Tuple[float, float]


class WKTParseError(ValueError):
    """Raised when a WKT string cannot be parsed."""


_SRID_RE = re.compile(r"^\s*SRID\s*=\s*(\d+)\s*;", re.IGNORECASE)
_TOKEN_RE = re.compile(
    r"\s*([A-Za-z]+|\(|\)|,|-?\d+\.?\d*(?:[eE][-+]?\d+)?|\.\d+)"
)


class _Tokens:
    """A simple peekable token stream over a WKT body."""

    def __init__(self, text: str):
        self.tokens: List[str] = []
        pos = 0
        while pos < len(text):
            m = _TOKEN_RE.match(text, pos)
            if not m:
                if text[pos:].strip():
                    raise WKTParseError(
                        f"unexpected character at {pos}: {text[pos:pos+10]!r}"
                    )
                break
            self.tokens.append(m.group(1))
            pos = m.end()
        self.index = 0

    def peek(self) -> str:
        if self.index >= len(self.tokens):
            return ""
        return self.tokens[self.index]

    def next(self) -> str:
        tok = self.peek()
        if not tok:
            raise WKTParseError("unexpected end of WKT input")
        self.index += 1
        return tok

    def expect(self, token: str) -> None:
        tok = self.next()
        if tok != token:
            raise WKTParseError(f"expected {token!r}, got {tok!r}")

    @property
    def exhausted(self) -> bool:
        return self.index >= len(self.tokens)


def from_wkt(text: str, default_srid: int = 4326) -> Geometry:
    """Parse a WKT (or EWKT with ``SRID=n;`` prefix) string."""
    if not isinstance(text, str):
        raise WKTParseError(f"WKT input must be a string, got {type(text)}")
    srid = default_srid
    m = _SRID_RE.match(text)
    if m:
        srid = int(m.group(1))
        text = text[m.end():]
    toks = _Tokens(text)
    geom = _parse_geometry(toks, srid)
    if not toks.exhausted:
        raise WKTParseError(f"trailing tokens after geometry: {toks.peek()!r}")
    return geom


def _parse_geometry(toks: _Tokens, srid: int) -> Geometry:
    tag = toks.next().upper()
    if tag == "POINT":
        coords = _parse_point_body(toks)
        return Point(coords[0], coords[1], srid=srid)
    if tag == "LINESTRING":
        return LineString(_parse_coord_list(toks), srid=srid)
    if tag == "POLYGON":
        rings = _parse_ring_list(toks)
        return Polygon(rings[0], rings[1:], srid=srid)
    if tag == "MULTIPOINT":
        return MultiPoint.from_coords(_parse_multipoint_body(toks), srid=srid)
    if tag == "MULTILINESTRING":
        if _consume_empty(toks):
            return MultiLineString([], srid=srid)
        toks.expect("(")
        lines = [LineString(_parse_coord_list(toks), srid=srid)]
        while toks.peek() == ",":
            toks.next()
            lines.append(LineString(_parse_coord_list(toks), srid=srid))
        toks.expect(")")
        return MultiLineString(lines, srid=srid)
    if tag == "MULTIPOLYGON":
        if _consume_empty(toks):
            return MultiPolygon([], srid=srid)
        toks.expect("(")
        polys = [_parse_polygon_body(toks, srid)]
        while toks.peek() == ",":
            toks.next()
            polys.append(_parse_polygon_body(toks, srid))
        toks.expect(")")
        return MultiPolygon(polys, srid=srid)
    if tag == "GEOMETRYCOLLECTION":
        if _consume_empty(toks):
            return GeometryCollection([], srid=srid)
        toks.expect("(")
        members = [_parse_geometry(toks, srid)]
        while toks.peek() == ",":
            toks.next()
            members.append(_parse_geometry(toks, srid))
        toks.expect(")")
        return GeometryCollection(members, srid=srid)
    raise WKTParseError(f"unknown geometry type {tag!r}")


def _consume_empty(toks: _Tokens) -> bool:
    if toks.peek().upper() == "EMPTY":
        toks.next()
        return True
    return False


def _parse_number(toks: _Tokens) -> float:
    tok = toks.next()
    try:
        return float(tok)
    except ValueError:
        raise WKTParseError(f"expected a number, got {tok!r}") from None


def _parse_coord(toks: _Tokens) -> Coord:
    x = _parse_number(toks)
    y = _parse_number(toks)
    # Tolerate (and drop) Z/M ordinates.
    while toks.peek() not in (",", ")", ""):
        _parse_number(toks)
    return (x, y)


def _parse_point_body(toks: _Tokens) -> Coord:
    if _consume_empty(toks):
        raise WKTParseError("POINT EMPTY is not supported")
    toks.expect("(")
    coord = _parse_coord(toks)
    toks.expect(")")
    return coord


def _parse_coord_list(toks: _Tokens) -> List[Coord]:
    if _consume_empty(toks):
        raise WKTParseError("EMPTY coordinate list for a non-collection type")
    toks.expect("(")
    coords = [_parse_coord(toks)]
    while toks.peek() == ",":
        toks.next()
        coords.append(_parse_coord(toks))
    toks.expect(")")
    return coords


def _parse_ring_list(toks: _Tokens) -> List[List[Coord]]:
    if _consume_empty(toks):
        raise WKTParseError("POLYGON EMPTY is not supported")
    toks.expect("(")
    rings = [_parse_coord_list(toks)]
    while toks.peek() == ",":
        toks.next()
        rings.append(_parse_coord_list(toks))
    toks.expect(")")
    return rings


def _parse_polygon_body(toks: _Tokens, srid: int) -> Polygon:
    rings = _parse_ring_list(toks)
    return Polygon(rings[0], rings[1:], srid=srid)


def _parse_multipoint_body(toks: _Tokens) -> List[Coord]:
    if _consume_empty(toks):
        return []
    toks.expect("(")
    coords: List[Coord] = []
    while True:
        if toks.peek() == "(":
            toks.next()
            coords.append(_parse_coord(toks))
            toks.expect(")")
        else:
            coords.append(_parse_coord(toks))
        if toks.peek() == ",":
            toks.next()
            continue
        break
    toks.expect(")")
    return coords


# ---------------------------------------------------------------------------
# Serialisation
# ---------------------------------------------------------------------------


def _fmt(value: float) -> str:
    """Render a coordinate without trailing float noise."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _coords_text(coords) -> str:
    return ", ".join(f"{_fmt(x)} {_fmt(y)}" for x, y in coords)


def _polygon_text(poly: Polygon) -> str:
    parts = [f"({_coords_text(poly.shell.closed_coords())})"]
    for hole in poly.holes:
        parts.append(f"({_coords_text(hole.closed_coords())})")
    return "(" + ", ".join(parts) + ")"


def to_wkt(geom: Geometry, include_srid: bool = False) -> str:
    """Serialise a geometry to WKT (EWKT when ``include_srid``)."""
    prefix = f"SRID={geom.srid};" if include_srid else ""
    return prefix + _geometry_text(geom)


def _geometry_text(geom: Geometry) -> str:
    if isinstance(geom, Point):
        return f"POINT ({_fmt(geom.x)} {_fmt(geom.y)})"
    if isinstance(geom, Polygon):
        return "POLYGON " + _polygon_text(geom)
    if isinstance(geom, MultiPoint):
        if geom.is_empty:
            return "MULTIPOINT EMPTY"
        inner = ", ".join(
            f"({_fmt(p.x)} {_fmt(p.y)})" for p in geom.geoms
        )
        return f"MULTIPOINT ({inner})"
    if isinstance(geom, MultiLineString):
        if geom.is_empty:
            return "MULTILINESTRING EMPTY"
        inner = ", ".join(
            f"({_coords_text(line.coords())})" for line in geom.geoms
        )
        return f"MULTILINESTRING ({inner})"
    if isinstance(geom, MultiPolygon):
        if geom.is_empty:
            return "MULTIPOLYGON EMPTY"
        inner = ", ".join(_polygon_text(p) for p in geom.geoms)
        return f"MULTIPOLYGON ({inner})"
    if isinstance(geom, GeometryCollection):
        if geom.is_empty:
            return "GEOMETRYCOLLECTION EMPTY"
        inner = ", ".join(_geometry_text(g) for g in geom.geoms)
        return f"GEOMETRYCOLLECTION ({inner})"
    if isinstance(geom, LineString):  # also covers LinearRing
        coords = list(geom.coords())
        from repro.geometry.linestring import LinearRing

        if isinstance(geom, LinearRing):
            coords = geom.closed_coords()
        return f"LINESTRING ({_coords_text(coords)})"
    raise TypeError(f"cannot serialise {type(geom).__name__} to WKT")
