"""LineString and LinearRing geometries."""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.geometry import algorithms
from repro.geometry.base import Geometry, GeometryError
from repro.geometry.envelope import Envelope

Coord = Tuple[float, float]


def _clean_coords(coords: Iterable[Sequence[float]]) -> List[Coord]:
    cleaned: List[Coord] = []
    for c in coords:
        if len(c) < 2:
            raise GeometryError(f"coordinate needs 2 values, got {c!r}")
        pt = (float(c[0]), float(c[1]))
        # Drop exactly repeated consecutive vertices.
        if cleaned and cleaned[-1] == pt:
            continue
        cleaned.append(pt)
    return cleaned


class LineString(Geometry):
    """An open polyline through two or more vertices."""

    geom_type = "LineString"

    __slots__ = ("_coords",)

    def __init__(self, coords: Iterable[Sequence[float]], srid: int = 4326):
        super().__init__(srid=srid)
        cleaned = _clean_coords(coords)
        if len(cleaned) < 2:
            raise GeometryError(
                f"LineString needs >= 2 distinct vertices, got {len(cleaned)}"
            )
        self._coords: Tuple[Coord, ...] = tuple(cleaned)

    @property
    def is_empty(self) -> bool:
        return False

    @property
    def envelope(self) -> Envelope:
        return Envelope.of_coords(self._coords)

    def coords(self) -> Iterator[Coord]:
        return iter(self._coords)

    @property
    def coord_list(self) -> List[Coord]:
        """The vertices as a fresh list."""
        return list(self._coords)

    @property
    def length(self) -> float:
        return algorithms.path_length(self._coords)

    @property
    def is_closed(self) -> bool:
        """Whether first and last vertices coincide."""
        return algorithms.coords_equal(self._coords[0], self._coords[-1])

    @property
    def is_simple(self) -> bool:
        """Whether the line does not self-intersect."""
        return not algorithms.polyline_self_intersects(list(self._coords))

    def interpolate(self, fraction: float):
        """Point at ``fraction`` (0..1) along the line."""
        from repro.geometry.point import Point

        x, y = algorithms.interpolate_along(list(self._coords), fraction)
        return Point(x, y, srid=self.srid)

    def reversed_(self) -> "LineString":
        """The same path traversed in the opposite direction."""
        return LineString(reversed(self._coords), srid=self.srid)

    def segments(self) -> Iterator[Tuple[Coord, Coord]]:
        """Yield consecutive vertex pairs."""
        for i in range(len(self._coords) - 1):
            yield (self._coords[i], self._coords[i + 1])

    def _clone(self) -> "LineString":
        return LineString(self._coords, srid=self.srid)

    def __len__(self) -> int:
        return len(self._coords)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LineString):
            return NotImplemented
        return self._coords == other._coords and self.srid == other.srid

    def __hash__(self) -> int:
        return hash((self.geom_type, self._coords, self.srid))


class LinearRing(LineString):
    """A closed, simple polyline — the building block of polygon boundaries.

    The stored coordinate sequence is kept *open* (the closing vertex is
    implicit); ``coords()`` therefore does not repeat the first vertex.
    """

    geom_type = "LinearRing"

    __slots__ = ()

    def __init__(self, coords: Iterable[Sequence[float]], srid: int = 4326):
        cleaned = _clean_coords(coords)
        if len(cleaned) >= 2 and algorithms.coords_equal(
            cleaned[0], cleaned[-1]
        ):
            cleaned = cleaned[:-1]
        if len(cleaned) < 3:
            raise GeometryError(
                f"LinearRing needs >= 3 distinct vertices, got {len(cleaned)}"
            )
        # Bypass LineString validation: store directly.
        Geometry.__init__(self, srid=srid)
        self._coords = tuple(cleaned)

    @property
    def is_closed(self) -> bool:
        return True

    @property
    def length(self) -> float:
        closed = list(self._coords) + [self._coords[0]]
        return algorithms.path_length(closed)

    @property
    def signed_area(self) -> float:
        """Shoelace area; positive when counter-clockwise."""
        return algorithms.ring_signed_area(self._coords)

    @property
    def is_ccw(self) -> bool:
        return self.signed_area > 0.0

    def oriented(self, ccw: bool = True) -> "LinearRing":
        """Return a copy wound counter-clockwise (or clockwise)."""
        if self.is_ccw == ccw:
            return self
        return LinearRing(tuple(reversed(self._coords)), srid=self.srid)

    def closed_coords(self) -> List[Coord]:
        """Vertices with the closing vertex repeated at the end."""
        return list(self._coords) + [self._coords[0]]

    def segments(self) -> Iterator[Tuple[Coord, Coord]]:
        n = len(self._coords)
        for i in range(n):
            yield (self._coords[i], self._coords[(i + 1) % n])

    def contains_point(self, x: float, y: float) -> int:
        """Locate ``(x, y)``: 1 inside, 0 on boundary, -1 outside."""
        return algorithms.point_in_ring((x, y), self._coords)

    def _clone(self) -> "LinearRing":
        return LinearRing(self._coords, srid=self.srid)
