"""Distance and centroid computations.

Distances are planar Euclidean in the geometry's own CRS.  For geodesic
distances on WGS84 coordinates, see :mod:`repro.geometry.srs`
(``haversine_m`` and the Web-Mercator transform).
"""

from __future__ import annotations

import math
from itertools import product
from typing import List

from repro.geometry import algorithms
from repro.geometry.base import Geometry, GeometryError, require_same_srid
from repro.geometry.linestring import LinearRing, LineString
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon


def distance(a: Geometry, b: Geometry) -> float:
    """Minimum planar distance between two geometries (0 on intersection)."""
    require_same_srid(a, b)
    if a.is_empty or b.is_empty:
        return math.inf
    atoms_a = list(a._component_geometries())
    atoms_b = list(b._component_geometries())
    return min(
        _atom_distance(x, y) for x, y in product(atoms_a, atoms_b)
    )


def _line_coords(line: LineString) -> List:
    if isinstance(line, LinearRing):
        return line.closed_coords()
    return list(line.coords())


def _atom_distance(a: Geometry, b: Geometry) -> float:
    if isinstance(a, Point) and isinstance(b, Point):
        return math.hypot(a.x - b.x, a.y - b.y)
    if isinstance(a, Point) and isinstance(b, LineString):
        return _point_line_distance(a, b)
    if isinstance(a, LineString) and isinstance(b, Point):
        return _point_line_distance(b, a)
    if isinstance(a, Point) and isinstance(b, Polygon):
        return _point_polygon_distance(a, b)
    if isinstance(a, Polygon) and isinstance(b, Point):
        return _point_polygon_distance(b, a)
    if isinstance(a, LineString) and isinstance(b, LineString):
        return _line_line_distance(a, b)
    if isinstance(a, LineString) and isinstance(b, Polygon):
        return _line_polygon_distance(a, b)
    if isinstance(a, Polygon) and isinstance(b, LineString):
        return _line_polygon_distance(b, a)
    if isinstance(a, Polygon) and isinstance(b, Polygon):
        return _polygon_polygon_distance(a, b)
    raise GeometryError(
        f"cannot measure distance between {a.geom_type} and {b.geom_type}"
    )


def _point_line_distance(p: Point, line: LineString) -> float:
    coords = _line_coords(line)
    return min(
        algorithms.point_segment_distance(p.coord, coords[i], coords[i + 1])
        for i in range(len(coords) - 1)
    )


def _point_polygon_distance(p: Point, poly: Polygon) -> float:
    if poly.locate_point(p.x, p.y) >= 0:
        return 0.0
    return min(
        algorithms.point_segment_distance(p.coord, s, e)
        for ring in poly.rings()
        for s, e in ring.segments()
    )


def _line_line_distance(a: LineString, b: LineString) -> float:
    ca, cb = _line_coords(a), _line_coords(b)
    best = math.inf
    for i in range(len(ca) - 1):
        for j in range(len(cb) - 1):
            d = algorithms.segment_segment_distance(
                ca[i], ca[i + 1], cb[j], cb[j + 1]
            )
            if d < best:
                best = d
                if best == 0.0:
                    return 0.0
    return best


def _line_polygon_distance(line: LineString, poly: Polygon) -> float:
    coords = _line_coords(line)
    if any(poly.locate_point(x, y) >= 0 for x, y in coords):
        return 0.0
    best = math.inf
    for ring in poly.rings():
        for s, e in ring.segments():
            for i in range(len(coords) - 1):
                d = algorithms.segment_segment_distance(
                    coords[i], coords[i + 1], s, e
                )
                if d < best:
                    best = d
                    if best == 0.0:
                        return 0.0
    return best


def _polygon_polygon_distance(a: Polygon, b: Polygon) -> float:
    from repro.geometry import predicates

    if predicates.intersects(a, b):
        return 0.0
    best = math.inf
    for ring_a in a.rings():
        for sa, ea in ring_a.segments():
            for ring_b in b.rings():
                for sb, eb in ring_b.segments():
                    d = algorithms.segment_segment_distance(sa, ea, sb, eb)
                    if d < best:
                        best = d
    return best


def centroid(geom: Geometry) -> Point:
    """Centroid of the highest-dimension parts of ``geom``.

    Polygons use the area centroid, lines the length-weighted midpoint,
    point sets the mean.
    """
    if geom.is_empty:
        raise GeometryError("empty geometry has no centroid")
    atoms = list(geom._component_geometries())
    polys = [g for g in atoms if isinstance(g, Polygon)]
    if polys:
        return _weighted_centroid(
            [(p, abs(p.area)) for p in polys], _polygon_centroid, geom.srid
        )
    lines = [g for g in atoms if isinstance(g, LineString)]
    if lines:
        return _weighted_centroid(
            [(ln, ln.length) for ln in lines], _line_centroid, geom.srid
        )
    points = [g for g in atoms if isinstance(g, Point)]
    n = len(points)
    return Point(
        sum(p.x for p in points) / n,
        sum(p.y for p in points) / n,
        srid=geom.srid,
    )


def _weighted_centroid(weighted, part_centroid, srid: int) -> Point:
    total = sum(w for _, w in weighted)
    if total <= 0.0:
        # Degenerate: average the part centroids.
        cs = [part_centroid(g) for g, _ in weighted]
        return Point(
            sum(c[0] for c in cs) / len(cs),
            sum(c[1] for c in cs) / len(cs),
            srid=srid,
        )
    sx = sy = 0.0
    for g, w in weighted:
        cx, cy = part_centroid(g)
        sx += cx * w
        sy += cy * w
    return Point(sx / total, sy / total, srid=srid)


def _polygon_centroid(poly: Polygon):
    # Weight the shell positively and holes negatively.
    shell_area = abs(poly.shell.signed_area)
    cx, cy = algorithms.ring_centroid(list(poly.shell.coords()))
    wx, wy, w = cx * shell_area, cy * shell_area, shell_area
    for hole in poly.holes:
        ha = abs(hole.signed_area)
        hx, hy = algorithms.ring_centroid(list(hole.coords()))
        wx -= hx * ha
        wy -= hy * ha
        w -= ha
    if w <= algorithms.EPS:
        return (cx, cy)
    return (wx / w, wy / w)


def _line_centroid(line: LineString):
    coords = _line_coords(line)
    total = sx = sy = 0.0
    for i in range(len(coords) - 1):
        seg_len = algorithms.segment_length(coords[i], coords[i + 1])
        mx = (coords[i][0] + coords[i + 1][0]) / 2.0
        my = (coords[i][1] + coords[i + 1][1]) / 2.0
        sx += mx * seg_len
        sy += my * seg_len
        total += seg_len
    if total <= algorithms.EPS:
        return coords[0]
    return (sx / total, sy / total)
