"""OGC Simple Features geometry engine.

A from-scratch computational-geometry substrate providing the spatial
semantics that TELEIOS obtains from PostGIS/JTS: the simple-features type
hierarchy, WKT and GML serialisation, topological predicates, overlay
operations, measurement, simplification, buffering, an R-tree spatial index
and coordinate-reference-system transforms.

Quick example::

    from repro.geometry import Point, Polygon, from_wkt

    poly = from_wkt("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))")
    assert poly.contains(Point(5, 5))
    assert abs(poly.area - 100.0) < 1e-9
"""

from repro.geometry.envelope import Envelope, PackedEnvelopes
from repro.geometry.base import Geometry, GeometryError
from repro.geometry.point import Point
from repro.geometry.linestring import LineString, LinearRing
from repro.geometry.polygon import Polygon
from repro.geometry.multi import (
    GeometryCollection,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
)
from repro.geometry.wkt import WKTParseError, from_wkt, to_wkt
from repro.geometry.gml import from_gml, to_gml
from repro.geometry.geojson import from_geojson, to_geojson
from repro.geometry.rtree import RTree
from repro.geometry.srs import (
    CRS,
    SRID_CRS84,
    SRID_WEB_MERCATOR,
    SRID_WGS84,
    get_crs,
    register_crs,
    transform,
)

__all__ = [
    "CRS",
    "Envelope",
    "Geometry",
    "GeometryCollection",
    "GeometryError",
    "LineString",
    "LinearRing",
    "MultiLineString",
    "MultiPoint",
    "MultiPolygon",
    "PackedEnvelopes",
    "Point",
    "Polygon",
    "RTree",
    "SRID_CRS84",
    "SRID_WEB_MERCATOR",
    "SRID_WGS84",
    "WKTParseError",
    "from_geojson",
    "from_gml",
    "from_wkt",
    "get_crs",
    "to_geojson",
    "register_crs",
    "to_gml",
    "to_wkt",
    "transform",
]
