"""Minimal GML 3 reader/writer.

Covers the profile stRDF/GeoSPARQL literals use: ``gml:Point``,
``gml:LineString``, ``gml:Polygon`` (with interior rings) and
``gml:MultiSurface``.  The ``srsName`` attribute carries the SRID as an
EPSG URN.
"""

from __future__ import annotations

import re
from typing import List, Tuple
from xml.etree import ElementTree

from repro.geometry.base import Geometry, GeometryError
from repro.geometry.linestring import LineString
from repro.geometry.multi import MultiPolygon
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon

GML_NS = "http://www.opengis.net/gml"
_EPSG_RE = re.compile(r"(?:EPSG|epsg)[:/]+(?:[\d.]+[:/])?(\d+)\s*$")


def _srs_name(srid: int) -> str:
    return f"urn:ogc:def:crs:EPSG::{srid}"


def _parse_srid(srs_name: str, default: int) -> int:
    if not srs_name:
        return default
    m = _EPSG_RE.search(srs_name)
    if m:
        return int(m.group(1))
    return default


def _fmt_coords(coords) -> str:
    parts: List[str] = []
    for x, y in coords:
        parts.append(f"{x:g} {y:g}")
    return " ".join(parts)


def to_gml(geom: Geometry) -> str:
    """Serialise a geometry to a GML 3 fragment."""
    srs = _srs_name(geom.srid)
    if isinstance(geom, Point):
        return (
            f'<gml:Point xmlns:gml="{GML_NS}" srsName="{srs}">'
            f"<gml:pos>{geom.x:g} {geom.y:g}</gml:pos></gml:Point>"
        )
    if isinstance(geom, Polygon):
        return (
            f'<gml:Polygon xmlns:gml="{GML_NS}" srsName="{srs}">'
            + _polygon_body(geom)
            + "</gml:Polygon>"
        )
    if isinstance(geom, MultiPolygon):
        members = "".join(
            "<gml:surfaceMember><gml:Polygon>"
            + _polygon_body(p)
            + "</gml:Polygon></gml:surfaceMember>"
            for p in geom.geoms
        )
        return (
            f'<gml:MultiSurface xmlns:gml="{GML_NS}" srsName="{srs}">'
            + members
            + "</gml:MultiSurface>"
        )
    if isinstance(geom, LineString):
        return (
            f'<gml:LineString xmlns:gml="{GML_NS}" srsName="{srs}">'
            f"<gml:posList>{_fmt_coords(geom.coords())}</gml:posList>"
            "</gml:LineString>"
        )
    raise GeometryError(f"cannot serialise {geom.geom_type} to GML")


def _polygon_body(poly: Polygon) -> str:
    parts = [
        "<gml:exterior><gml:LinearRing><gml:posList>"
        + _fmt_coords(poly.shell.closed_coords())
        + "</gml:posList></gml:LinearRing></gml:exterior>"
    ]
    for hole in poly.holes:
        parts.append(
            "<gml:interior><gml:LinearRing><gml:posList>"
            + _fmt_coords(hole.closed_coords())
            + "</gml:posList></gml:LinearRing></gml:interior>"
        )
    return "".join(parts)


def from_gml(text: str, default_srid: int = 4326) -> Geometry:
    """Parse a GML 3 fragment into a geometry."""
    try:
        root = ElementTree.fromstring(text)
    except ElementTree.ParseError as exc:
        raise GeometryError(f"invalid GML: {exc}") from exc
    return _parse_element(root, default_srid)


def _local(tag: str) -> str:
    return tag.rsplit("}", 1)[-1]


def _parse_element(elem, default_srid: int) -> Geometry:
    srid = _parse_srid(elem.get("srsName", ""), default_srid)
    kind = _local(elem.tag)
    if kind == "Point":
        coords = _parse_pos_text(elem)
        if len(coords) != 1:
            raise GeometryError("gml:Point needs exactly one position")
        return Point(coords[0][0], coords[0][1], srid=srid)
    if kind == "LineString":
        return LineString(_parse_pos_text(elem), srid=srid)
    if kind == "Polygon":
        return _parse_polygon(elem, srid)
    if kind == "MultiSurface":
        polys = []
        for member in elem.iter():
            if _local(member.tag) == "Polygon":
                polys.append(_parse_polygon(member, srid))
        return MultiPolygon(polys, srid=srid)
    raise GeometryError(f"unsupported GML element {kind!r}")


def _parse_polygon(elem, srid: int) -> Polygon:
    shell: List[Tuple[float, float]] = []
    holes: List[List[Tuple[float, float]]] = []
    for child in elem:
        role = _local(child.tag)
        if role in ("exterior", "outerBoundaryIs"):
            shell = _parse_pos_text(child)
        elif role in ("interior", "innerBoundaryIs"):
            holes.append(_parse_pos_text(child))
    if not shell:
        raise GeometryError("gml:Polygon without an exterior ring")
    return Polygon(shell, holes, srid=srid)


def _parse_pos_text(elem) -> List[Tuple[float, float]]:
    texts: List[str] = []
    for node in elem.iter():
        if _local(node.tag) in ("pos", "posList", "coordinates") and node.text:
            texts.append(node.text)
    numbers: List[float] = []
    for text in texts:
        for token in text.replace(",", " ").split():
            numbers.append(float(token))
    if len(numbers) % 2 != 0:
        raise GeometryError("odd number of GML ordinates")
    return [
        (numbers[i], numbers[i + 1]) for i in range(0, len(numbers), 2)
    ]
