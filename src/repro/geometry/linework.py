"""Shared line/ring splitting helpers used by predicates and overlay.

The central tool is :func:`split_path_by_polygon`: it cuts a polyline at
every crossing with a polygon boundary and classifies each resulting piece
as interior / boundary / exterior by its midpoint.  Containment tests and
line clipping are both built on it.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.geometry import algorithms
from repro.geometry.algorithms import EPS, Coord
from repro.geometry.polygon import Polygon

#: Classification labels for path pieces.
INTERIOR, BOUNDARY, EXTERIOR = 1, 0, -1


def polygon_boundary_segments(poly: Polygon) -> List[Tuple[Coord, Coord]]:
    """All boundary segments of a polygon (shell and holes)."""
    segs: List[Tuple[Coord, Coord]] = []
    for ring in poly.rings():
        segs.extend(ring.segments())
    return segs


def _cut_points_on_segment(
    a: Coord, b: Coord, boundary: Sequence[Tuple[Coord, Coord]]
) -> List[Coord]:
    """Intersection points of segment ``ab`` with the boundary segments,
    ordered from ``a`` to ``b`` (endpoints included when they touch)."""
    hits: List[Tuple[float, Coord]] = []
    seg_len = algorithms.segment_length(a, b)
    if seg_len <= EPS:
        return []
    for c, d in boundary:
        if not algorithms.segments_intersect(a, b, c, d):
            continue
        p = algorithms.segment_intersection_point(a, b, c, d)
        if p is not None:
            t = _param_along(a, b, p, seg_len)
            hits.append((t, p))
            continue
        # Collinear overlap: project the endpoints of cd that lie on ab.
        for q in (c, d):
            if algorithms.on_segment(q, a, b):
                t = _param_along(a, b, q, seg_len)
                hits.append((t, q))
    hits.sort(key=lambda item: item[0])
    ordered: List[Coord] = []
    for _, p in hits:
        if not ordered or not algorithms.coords_equal(ordered[-1], p):
            ordered.append(p)
    return ordered


def _param_along(a: Coord, b: Coord, p: Coord, seg_len: float) -> float:
    return algorithms.segment_length(a, p) / seg_len


def split_path_by_polygon(
    coords: Sequence[Coord], poly: Polygon
) -> List[Tuple[int, List[Coord]]]:
    """Split a polyline at polygon-boundary crossings and classify pieces.

    Returns ``[(where, piece_coords), ...]`` where ``where`` is
    :data:`INTERIOR`, :data:`BOUNDARY` or :data:`EXTERIOR`; pieces appear in
    path order and consecutive same-class pieces are merged.
    """
    boundary = polygon_boundary_segments(poly)
    pieces: List[Tuple[int, List[Coord]]] = []
    for i in range(len(coords) - 1):
        a, b = coords[i], coords[i + 1]
        cuts = _cut_points_on_segment(a, b, boundary)
        waypoints: List[Coord] = [a]
        for p in cuts:
            if not algorithms.coords_equal(waypoints[-1], p):
                waypoints.append(p)
        if not algorithms.coords_equal(waypoints[-1], b):
            waypoints.append(b)
        for j in range(len(waypoints) - 1):
            p, q = waypoints[j], waypoints[j + 1]
            if algorithms.coords_equal(p, q):
                continue
            mid = ((p[0] + q[0]) / 2.0, (p[1] + q[1]) / 2.0)
            where = _locate_with_boundary(mid, poly, boundary)
            _append_piece(pieces, where, p, q)
    return pieces


def _locate_with_boundary(
    p: Coord, poly: Polygon, boundary: Sequence[Tuple[Coord, Coord]]
) -> int:
    for c, d in boundary:
        if algorithms.on_segment(p, c, d):
            return BOUNDARY
    return INTERIOR if poly.locate_point(p[0], p[1]) > 0 else EXTERIOR


def _append_piece(
    pieces: List[Tuple[int, List[Coord]]], where: int, p: Coord, q: Coord
) -> None:
    if pieces:
        last_where, last_coords = pieces[-1]
        if last_where == where and algorithms.coords_equal(
            last_coords[-1], p
        ):
            last_coords.append(q)
            return
    pieces.append((where, [p, q]))


def path_within_polygon(
    coords: Sequence[Coord], poly: Polygon, strict: bool
) -> bool:
    """Whether a polyline lies inside the polygon.

    ``strict=True`` additionally requires at least one interior piece (OGC
    *contains* semantics: a path living entirely on the boundary does not
    count).
    """
    pieces = split_path_by_polygon(coords, poly)
    if any(where == EXTERIOR for where, _ in pieces):
        return False
    if strict:
        return any(where == INTERIOR for where, _ in pieces)
    return bool(pieces)


def path_polygon_crossings(
    coords: Sequence[Coord], poly: Polygon
) -> Tuple[bool, bool, bool]:
    """Presence of (interior, boundary, exterior) pieces of the path."""
    pieces = split_path_by_polygon(coords, poly)
    kinds = {where for where, _ in pieces}
    return (INTERIOR in kinds, BOUNDARY in kinds, EXTERIOR in kinds)
