"""Low-level computational geometry on raw coordinate sequences.

These functions are the shared kernels beneath the geometry classes: they
operate on plain ``(x, y)`` tuples so they can be unit-tested in isolation and
reused by the overlay, predicate and measurement layers.

A global absolute tolerance :data:`EPS` absorbs floating-point noise; all
"on the line" style decisions are made against it.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

Coord = Tuple[float, float]

#: Absolute tolerance for degeneracy decisions (collinearity, coincidence).
EPS = 1e-9


def orient(p: Coord, q: Coord, r: Coord) -> float:
    """Signed twice-area of triangle ``pqr``.

    Positive when ``r`` lies to the left of the directed line ``p -> q``
    (counter-clockwise turn), negative to the right, ~0 when collinear.
    """
    return (q[0] - p[0]) * (r[1] - p[1]) - (q[1] - p[1]) * (r[0] - p[0])


def orientation(p: Coord, q: Coord, r: Coord) -> int:
    """Classify the turn ``p -> q -> r``: +1 ccw, -1 cw, 0 collinear."""
    v = orient(p, q, r)
    if v > EPS:
        return 1
    if v < -EPS:
        return -1
    return 0


def coords_equal(a: Coord, b: Coord, eps: float = EPS) -> bool:
    """Whether two coordinates coincide within ``eps``."""
    return abs(a[0] - b[0]) <= eps and abs(a[1] - b[1]) <= eps


def on_segment(p: Coord, a: Coord, b: Coord, eps: float = EPS) -> bool:
    """Whether point ``p`` lies on the closed segment ``ab``."""
    if abs(orient(a, b, p)) > eps * (1.0 + segment_length(a, b)):
        return False
    return (
        min(a[0], b[0]) - eps <= p[0] <= max(a[0], b[0]) + eps
        and min(a[1], b[1]) - eps <= p[1] <= max(a[1], b[1]) + eps
    )


def segment_length(a: Coord, b: Coord) -> float:
    return math.hypot(b[0] - a[0], b[1] - a[1])


def segments_intersect(a: Coord, b: Coord, c: Coord, d: Coord) -> bool:
    """Whether closed segments ``ab`` and ``cd`` share at least one point."""
    o1 = orientation(a, b, c)
    o2 = orientation(a, b, d)
    o3 = orientation(c, d, a)
    o4 = orientation(c, d, b)
    if o1 != o2 and o3 != o4:
        return True
    if o1 == 0 and on_segment(c, a, b):
        return True
    if o2 == 0 and on_segment(d, a, b):
        return True
    if o3 == 0 and on_segment(a, c, d):
        return True
    if o4 == 0 and on_segment(b, c, d):
        return True
    return False


def segment_intersection_point(
    a: Coord, b: Coord, c: Coord, d: Coord
) -> Optional[Coord]:
    """Return the proper intersection point of ``ab`` and ``cd``.

    Returns ``None`` when the segments are parallel/collinear or do not
    cross.  Endpoint touches are reported (they are intersections).
    """
    r = (b[0] - a[0], b[1] - a[1])
    s = (d[0] - c[0], d[1] - c[1])
    denom = r[0] * s[1] - r[1] * s[0]
    if abs(denom) <= EPS:
        return None
    qp = (c[0] - a[0], c[1] - a[1])
    t = (qp[0] * s[1] - qp[1] * s[0]) / denom
    u = (qp[0] * r[1] - qp[1] * r[0]) / denom
    if -EPS <= t <= 1.0 + EPS and -EPS <= u <= 1.0 + EPS:
        return (a[0] + t * r[0], a[1] + t * r[1])
    return None


def point_segment_distance(p: Coord, a: Coord, b: Coord) -> float:
    """Euclidean distance from point ``p`` to the closed segment ``ab``."""
    ax, ay = a
    bx, by = b
    px, py = p
    dx, dy = bx - ax, by - ay
    seg_sq = dx * dx + dy * dy
    if seg_sq <= EPS * EPS:
        return math.hypot(px - ax, py - ay)
    t = ((px - ax) * dx + (py - ay) * dy) / seg_sq
    t = max(0.0, min(1.0, t))
    cx, cy = ax + t * dx, ay + t * dy
    return math.hypot(px - cx, py - cy)


def segment_segment_distance(a: Coord, b: Coord, c: Coord, d: Coord) -> float:
    """Minimum distance between closed segments ``ab`` and ``cd``."""
    if segments_intersect(a, b, c, d):
        return 0.0
    return min(
        point_segment_distance(a, c, d),
        point_segment_distance(b, c, d),
        point_segment_distance(c, a, b),
        point_segment_distance(d, a, b),
    )


def ring_signed_area(ring: Sequence[Coord]) -> float:
    """Signed area of a ring (shoelace); positive for counter-clockwise.

    The ring may be given open or closed (first == last); both work.
    """
    n = len(ring)
    if n < 3:
        return 0.0
    total = 0.0
    for i in range(n):
        x1, y1 = ring[i]
        x2, y2 = ring[(i + 1) % n]
        total += x1 * y2 - x2 * y1
    return total / 2.0


def ring_is_ccw(ring: Sequence[Coord]) -> bool:
    """Whether the ring winds counter-clockwise."""
    return ring_signed_area(ring) > 0.0


def ring_centroid(ring: Sequence[Coord]) -> Coord:
    """Area centroid of a simple ring; falls back to the vertex mean for
    degenerate (zero-area) rings."""
    area = ring_signed_area(ring)
    n = len(ring)
    if abs(area) <= EPS or n < 3:
        sx = sum(p[0] for p in ring)
        sy = sum(p[1] for p in ring)
        return (sx / n, sy / n)
    cx = cy = 0.0
    for i in range(n):
        x1, y1 = ring[i]
        x2, y2 = ring[(i + 1) % n]
        cross = x1 * y2 - x2 * y1
        cx += (x1 + x2) * cross
        cy += (y1 + y2) * cross
    factor = 1.0 / (6.0 * area)
    return (cx * factor, cy * factor)


def path_length(coords: Sequence[Coord]) -> float:
    """Total length of the polyline through ``coords``."""
    return sum(
        segment_length(coords[i], coords[i + 1])
        for i in range(len(coords) - 1)
    )


def point_in_ring(p: Coord, ring: Sequence[Coord]) -> int:
    """Locate ``p`` relative to a simple ring.

    Returns ``1`` for strictly inside, ``0`` for on the boundary, ``-1`` for
    outside.  Uses the crossing-number algorithm with an explicit boundary
    check first (the crossing count is unreliable exactly on edges).
    """
    n = len(ring)
    # Treat an explicitly closed ring as open.  Exact comparison: a closing
    # vertex is always an exact copy, whereas near-coincident but distinct
    # vertices can legitimately occur in sliver rings.
    if n >= 2 and ring[0] == ring[-1]:
        ring = ring[:-1]
        n -= 1
    if n < 3:
        return -1
    for i in range(n):
        if on_segment(p, ring[i], ring[(i + 1) % n]):
            return 0
    x, y = p
    inside = False
    j = n - 1
    for i in range(n):
        xi, yi = ring[i]
        xj, yj = ring[j]
        if (yi > y) != (yj > y):
            x_cross = xi + (y - yi) * (xj - xi) / (yj - yi)
            if x < x_cross:
                inside = not inside
        j = i
    return 1 if inside else -1


def convex_hull(points: Sequence[Coord]) -> List[Coord]:
    """Andrew's monotone chain convex hull.

    Returns the hull vertices in counter-clockwise order without repeating
    the first point.  Degenerate inputs (all collinear) return the extreme
    points.
    """
    pts = sorted(set((float(x), float(y)) for x, y in points))
    if len(pts) <= 2:
        return pts
    # Exact zero comparison: an EPS-tolerant pop would discard genuinely
    # extreme points whose neighbours produce legitimately tiny cross
    # products (e.g. nearly-vertical hull edges).
    lower: List[Coord] = []
    for p in pts:
        while len(lower) >= 2 and orient(lower[-2], lower[-1], p) <= 0.0:
            lower.pop()
        lower.append(p)
    upper: List[Coord] = []
    for p in reversed(pts):
        while len(upper) >= 2 and orient(upper[-2], upper[-1], p) <= 0.0:
            upper.pop()
        upper.append(p)
    hull = lower[:-1] + upper[:-1]
    if len(hull) < 3:  # fully collinear input
        return [pts[0], pts[-1]]
    return hull


def douglas_peucker(coords: Sequence[Coord], tolerance: float) -> List[Coord]:
    """Ramer–Douglas–Peucker polyline simplification.

    Keeps the endpoints and every vertex whose removal would displace the
    line by more than ``tolerance``.
    """
    if len(coords) <= 2:
        return list(coords)
    keep = [False] * len(coords)
    keep[0] = keep[-1] = True
    stack = [(0, len(coords) - 1)]
    while stack:
        first, last = stack.pop()
        max_dist = -1.0
        index = -1
        a, b = coords[first], coords[last]
        for i in range(first + 1, last):
            d = point_segment_distance(coords[i], a, b)
            if d > max_dist:
                max_dist = d
                index = i
        if max_dist > tolerance and index > 0:
            keep[index] = True
            stack.append((first, index))
            stack.append((index, last))
    return [c for c, k in zip(coords, keep) if k]


def polyline_self_intersects(coords: Sequence[Coord]) -> bool:
    """Whether a polyline crosses itself (adjacent-segment joins allowed)."""
    n = len(coords) - 1
    closed = n >= 1 and coords_equal(coords[0], coords[-1])
    for i in range(n):
        for j in range(i + 2, n):
            # Skip the shared vertex of adjacent segments and, for closed
            # rings, the first/last segment pair.
            if i == 0 and j == n - 1 and closed:
                continue
            if segments_intersect(
                coords[i], coords[i + 1], coords[j], coords[j + 1]
            ):
                return True
    return False


def interpolate_along(coords: Sequence[Coord], fraction: float) -> Coord:
    """Point at ``fraction`` (0..1) of the way along a polyline."""
    if not coords:
        raise ValueError("empty coordinate sequence")
    if len(coords) == 1 or fraction <= 0.0:
        return coords[0]
    if fraction >= 1.0:
        return coords[-1]
    target = path_length(coords) * fraction
    walked = 0.0
    for i in range(len(coords) - 1):
        step = segment_length(coords[i], coords[i + 1])
        if walked + step >= target and step > 0.0:
            t = (target - walked) / step
            ax, ay = coords[i]
            bx, by = coords[i + 1]
            return (ax + t * (bx - ax), ay + t * (by - ay))
        walked += step
    return coords[-1]
