"""The end-to-end mining pipeline: vault → SciQL features → annotations.

Mirrors the NOA :class:`~repro.noa.chain.ProcessingChain` batch shape
for the knowledge-discovery pillar: each acquisition runs extract →
classify → annotate as retried, deadline-checked stages with the
``mining.extract`` / ``mining.classify`` fault-injection sites, and
:meth:`MiningPipeline.run_batch` pipelines acquisitions over the worker
pool with every annotation graph merged into one
:meth:`StrabonStore.bulk` emit.  Failures degrade per acquisition to
:class:`~repro.noa.chain.ChainFailure` — a faulted scene contributes
*zero* annotation triples (no orphans), the rest of the batch lands.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from datetime import timedelta
from typing import (
    Any,
    Callable,
    ContextManager,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro import faults, obs, parallel, resilience
from repro.eo.products import Product
from repro.ingest.features import PatchGrid
from repro.mining.annotate import DEFAULT_VALIDITY, SemanticAnnotator
from repro.mining.classify import Classifier
from repro.mining.features import extract_patch_grid
from repro.rdf import Graph
from repro.noa.chain import ChainFailure


class MiningResult:
    """One acquisition's mining output, with per-stage timings."""

    def __init__(self, product: Product, grid: PatchGrid):
        self.product = product
        self.grid = grid
        self.labels: List[str] = []
        self.rdf: Graph = Graph()
        self.timings: Dict[str, float] = {}

    @property
    def ok(self) -> bool:
        return True

    def label_statistics(self) -> Dict[str, int]:
        stats: Dict[str, int] = {}
        for label in self.labels:
            stats[label] = stats.get(label, 0) + 1
        return stats

    def __repr__(self) -> str:
        return (
            f"<MiningResult {self.product.product_id} "
            f"patches={len(self.grid)} {self.label_statistics()}>"
        )


class MiningPipeline:
    """Batchable patch-mining over ingested acquisitions.

    ``classifier`` is a *fitted* :class:`Classifier` (train one with
    :func:`repro.mining.features.extract_patch_grid` +
    ``PatchGrid.truth_labels``, or load persisted state through
    :class:`repro.mining.models.ModelStore`).
    """

    def __init__(
        self,
        ingestor,
        classifier: Classifier,
        patch_size: int = 8,
        retry: Optional[resilience.RetryPolicy] = None,
        deadline: Optional[float] = None,
        validity: timedelta = DEFAULT_VALIDITY,
        concept_map: Optional[Dict] = None,
    ):
        self.ingestor = ingestor
        self.classifier = classifier
        self.patch_size = patch_size
        self.annotator = SemanticAnnotator(
            classifier, concept_map=concept_map, validity=validity
        )
        self.retry = retry or resilience.DEFAULT_RETRY
        self.deadline = deadline

    # -- execution -----------------------------------------------------------

    def run(self, path: str) -> MiningResult:
        """Mine one archive file (annotations emitted immediately)."""
        return self._execute(path)

    def run_batch(
        self,
        paths: Sequence[str],
        workers: Optional[int] = None,
        scheduler: Optional["parallel.TaskScheduler"] = None,
    ) -> List["MiningResult | ChainFailure"]:
        """Mine a whole acquisition series with one merged RDF emit.

        Results come back in ``paths`` order; an acquisition that fails
        (hard fault, bad file) occupies its slot as a
        :class:`ChainFailure` while the rest of the batch completes and
        reaches the single bulk emit.  Counters ``mining.batch.ok`` /
        ``mining.batch.failed`` record the split.
        """
        paths = list(paths)
        sched = parallel.get_scheduler(scheduler, workers)
        with obs.span("mining.run_batch", acquisitions=len(paths)):
            if sched.workers == 1 or len(paths) <= 1:
                results: List[MiningResult | ChainFailure] = [
                    self._guarded(path) for path in paths
                ]
            else:
                store = self.ingestor.store
                lock = self.ingestor.db.lock
                with store.bulk():
                    results = sched.map(
                        lambda path: self._guarded(
                            path, emit=False, lock=lock
                        ),
                        paths,
                    )
                    for result in results:
                        if isinstance(result, MiningResult):
                            store.load_graph(result.rdf)
            ok = sum(1 for r in results if isinstance(r, MiningResult))
            obs.counter("mining.batch.ok").inc(ok)
            obs.counter("mining.batch.failed").inc(len(results) - ok)
        return results

    def _guarded(
        self,
        path: str,
        emit: bool = True,
        lock: Optional[ContextManager] = None,
    ) -> "MiningResult | ChainFailure":
        try:
            return self._execute(path, emit=emit, lock=lock)
        except Exception as exc:  # noqa: BLE001 — isolated per acquisition
            obs.counter("mining.errors").inc()
            return ChainFailure(path, exc)

    def _stage(
        self,
        name: str,
        timings: Dict[str, float],
        deadline: Optional[resilience.Deadline],
        fn: Callable[[], Any],
        guard: Optional[ContextManager] = None,
        **tags: Any,
    ) -> Any:
        """One pipeline stage under the chain's resilience envelope:
        deadline checked at the boundary, the ``mining.<name>`` fault
        site fired per attempt, transient failures retried, and the
        shared-state guard re-acquired per attempt (backoff sleeps never
        hold the database lock)."""
        if deadline is not None:
            deadline.check(f"mining.{name}")
        t0 = time.perf_counter()

        def attempt() -> Any:
            with (guard if guard is not None else nullcontext()):
                faults.maybe_fail(f"mining.{name}")
                return fn()

        try:
            with obs.span(f"mining.stage.{name}", **tags):
                return resilience.call_with_retry(
                    attempt, self.retry, label=f"mining.{name}"
                )
        finally:
            timings[name] = time.perf_counter() - t0

    def _execute(
        self,
        path: str,
        emit: bool = True,
        lock: Optional[ContextManager] = None,
    ) -> MiningResult:
        guard: ContextManager = lock if lock is not None else nullcontext()
        timings: Dict[str, float] = {}
        deadline = (
            resilience.Deadline(self.deadline)
            if self.deadline is not None
            else resilience.active_deadline()
        )

        # (a) extraction — ingest + patch-grid features through SciQL.
        def extract() -> Tuple[Product, PatchGrid]:
            product = self.ingestor.ingest_file(path, lazy=True)
            array = self.ingestor.materialize_array(product)
            env = product.envelope
            window = (env.minx, env.miny, env.maxx, env.maxy)
            grid = extract_patch_grid(
                array, window, patch_size=self.patch_size
            )
            return product, grid

        product, grid = self._stage(
            "extract", timings, deadline, extract, guard, path=path
        )
        result = MiningResult(product, grid)

        # (b) classification — concepts from the fitted model.  Runs
        # unlocked: predict touches only this acquisition's features.
        result.labels = self._stage(
            "classify", timings, deadline,
            lambda: self.classifier.predict(grid.feature_matrix()),
            path=path,
        )

        # (c) annotation — stRDF emit (valid time + footprints).
        def annotate() -> Graph:
            rdf = self.annotator.annotate(product, grid, result.labels)
            if emit:
                self.ingestor.store.load_graph(rdf)
            return rdf

        result.rdf = self._stage(
            "annotate", timings, deadline, annotate, guard, path=path
        )
        result.timings = timings
        return result
