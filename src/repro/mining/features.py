"""Patch-grid feature extraction over SciQL arrays.

The knowledge-discovery pillar mines *ingested* scenes: where the
historical :mod:`repro.ingest.features` extractor loops over the raw
:class:`~repro.eo.seviri.SeviriScene` planes in Python, this module
computes the whole patch grid through the database — derived planes
(squares, gradient energy, local contrast) are written as attribute
planes and every per-patch statistic is one ``tile_aggregate`` call, so
the compiled read path of the kernels layer is the hot loop and the
extraction parallelises over row bands like any other SciQL reduction.

The descriptor (:data:`MINING_FEATURE_NAMES`) is chosen so that every
element is a composition of tile means/maxima and elementwise
arithmetic:

0. mean t039                     4. mean spectral difference (t039-t108)
1. variance t039                 5. max t039 (sub-pixel fire spike)
2. mean t108                     6. gradient energy of t039
3. variance t108                 7. local contrast of t108 (texture)

Variance (not standard deviation) keeps the pipeline closed under
rational arithmetic: for dyadic inputs every feature is *exact*, which
is what lets the testkit's brute-force pure-python oracle demand
bit-identical feature matrices across kernels on/off and worker counts.
Gradient energy is the tile mean of ``gx^2 + gy^2`` with ``np.gradient``
central differences; contrast is the tile mean of the squared horizontal
forward difference (a one-offset approximation of GLCM contrast that
needs no quantisation).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro import obs, parallel
from repro.geometry import Envelope, Polygon
from repro.ingest.features import Patch, PatchGrid
from repro.mdb.sciql import Dimension, SciArray
from repro.mdb.types import DOUBLE

MINING_FEATURE_NAMES = (
    "mean_t039",
    "var_t039",
    "mean_t108",
    "var_t108",
    "mean_diff",
    "max_t039",
    "gradient_energy",
    "contrast",
)

#: Derived attribute planes the extractor materialises before reducing.
_DERIVED_ATTRS = ("sq039", "sq108", "gradsq", "contrast")


def central_gradient(plane: np.ndarray, axis: int) -> np.ndarray:
    """``np.gradient``-style central differences along one axis.

    Interior cells get ``(x[i+1] - x[i-1]) / 2``; edges the one-sided
    full difference.  Written out explicitly so the testkit oracle can
    mirror the exact expression in pure python.
    """
    if axis == 1:
        return central_gradient(plane.T, 0).T
    g = np.zeros_like(plane)
    n = plane.shape[0]
    if n < 2:
        return g
    g[0] = plane[1] - plane[0]
    g[-1] = plane[-1] - plane[-2]
    if n > 2:
        g[1:-1] = (plane[2:] - plane[:-2]) * 0.5
    return g


def contrast_plane(plane: np.ndarray) -> np.ndarray:
    """Squared horizontal forward difference (last column zero)."""
    out = np.zeros_like(plane)
    if plane.shape[1] >= 2:
        d = plane[:, 1:] - plane[:, :-1]
        out[:, :-1] = d * d
    return out


def patch_footprint(
    window: Tuple[float, float, float, float],
    shape: Tuple[int, int],
    row: int,
    col: int,
    size: int,
) -> Polygon:
    """WGS84 footprint of the patch anchored at (row, col).

    Row 0 is the *north* edge of ``window`` (image convention, matching
    :meth:`repro.eo.seviri.SeviriScene.pixel_polygon`).
    """
    lon0, lat0, lon1, lat1 = window
    h, w = shape
    dlon = (lon1 - lon0) / w
    dlat = (lat1 - lat0) / h
    west = lon0 + col * dlon
    east = lon0 + (col + size) * dlon
    north = lat1 - row * dlat
    south = lat1 - (row + size) * dlat
    return Polygon.from_envelope(
        Envelope(west, south, east, north), srid=4326
    )


def _feature_array(array: SciArray) -> SciArray:
    """A scratch array holding the band planes plus derived planes.

    The scratch is never catalogued (no journal hook), so durable
    deployments don't WAL the intermediate planes; its fixed name and
    schema mean the kernels layer caches one tile-aggregate plan per
    (shape, tile, func, attr) across every extraction.
    """
    t039 = np.asarray(array.attribute("t039"), dtype=np.float64)
    t108 = np.asarray(array.attribute("t108"), dtype=np.float64)
    h, w = t039.shape
    attrs = [("t039", DOUBLE), ("t108", DOUBLE)] + [
        (name, DOUBLE) for name in _DERIVED_ATTRS
    ]
    for truth in ("truth_fire", "truth_scar"):
        if array.has_attribute(truth):
            attrs.append((truth, DOUBLE))
    scratch = SciArray(
        "mining_features",
        [Dimension("row", 0, h), Dimension("col", 0, w)],
        attrs,
    )
    gx = central_gradient(t039, 0)
    gy = central_gradient(t039, 1)
    scratch.set_attribute("t039", t039)
    scratch.set_attribute("t108", t108)
    scratch.set_attribute("sq039", t039 * t039)
    scratch.set_attribute("sq108", t108 * t108)
    scratch.set_attribute("gradsq", gx * gx + gy * gy)
    scratch.set_attribute("contrast", contrast_plane(t108))
    for truth in ("truth_fire", "truth_scar"):
        if scratch.has_attribute(truth):
            scratch.set_attribute(
                truth, np.asarray(array.attribute(truth), dtype=np.float64)
            )
    return scratch


def extract_patch_grid(
    array: SciArray,
    window: Tuple[float, float, float, float],
    patch_size: int = 8,
    workers: Optional[int] = None,
    scheduler: Optional["parallel.TaskScheduler"] = None,
) -> PatchGrid:
    """Cut an ingested scene array into a georeferenced patch grid.

    ``array`` needs float ``t039``/``t108`` attribute planes (the shape
    :func:`repro.ingest.handlers.scene_to_array` produces); the optional
    ``truth_fire``/``truth_scar`` planes become per-patch ground-truth
    fractions.  ``window`` is the scene's (lon0, lat0, lon1, lat1)
    extent.  Partial patches at the south/east edges are dropped, like
    the historical in-memory extractor.

    Every statistic runs through ``SciArray.tile_aggregate`` — compiled
    when ``REPRO_KERNELS`` is on, row-band parallel under ``workers`` —
    and the result is bit-identical across both switches because tiles
    are always reduced whole over float64 planes.
    """
    size = int(patch_size)
    if size < 1:
        raise ValueError("patch_size must be >= 1")
    if array.ndim != 2:
        raise ValueError("patch extraction needs a 2-D scene array")
    h, w = array.shape
    if size > h or size > w:
        raise ValueError(
            f"patch_size {size} larger than the {h}x{w} scene"
        )
    with obs.span("mining.extract", array=array.name, patch=size):
        scratch = _feature_array(array)
        tile = (size, size)

        def agg(attr: str, func: str = "mean") -> np.ndarray:
            out = scratch.tile_aggregate(
                tile, func, attr, workers=workers, scheduler=scheduler
            )
            return out.attribute(attr)

        m039 = agg("t039")
        m108 = agg("t108")
        msq039 = agg("sq039")
        msq108 = agg("sq108")
        mx039 = agg("t039", "max")
        mgrad = agg("gradsq")
        mcon = agg("contrast")
        var039 = np.maximum(msq039 - m039 * m039, 0.0)
        var108 = np.maximum(msq108 - m108 * m108, 0.0)
        feats = np.stack(
            [
                m039,
                var039,
                m108,
                var108,
                m039 - m108,
                mx039,
                mgrad,
                mcon,
            ],
            axis=-1,
        )
        rows, cols = m039.shape
        zeros = np.zeros((rows, cols))
        tfire = agg("truth_fire") if scratch.has_attribute("truth_fire") else zeros
        tscar = agg("truth_scar") if scratch.has_attribute("truth_scar") else zeros

        patches = []
        for i in range(rows):
            for j in range(cols):
                row, col = i * size, j * size
                patches.append(
                    Patch(
                        row,
                        col,
                        size,
                        feats[i, j].copy(),
                        patch_footprint(window, (h, w), row, col, size),
                        float(tfire[i, j]),
                        float(tscar[i, j]),
                    )
                )
    obs.counter("mining.extract.patches").inc(len(patches))
    return PatchGrid(patches, size)
