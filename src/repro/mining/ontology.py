"""Domain ontologies: landcover and environmental monitoring.

The paper annotates EO products "with concepts from appropriate ontologies
(e.g., landcover ontologies with concepts such as water-body, lake,
forest, etc., or environmental monitoring ontologies with concepts such as
forest fires, flood, etc.)".  This module provides those hierarchies as
RDFS graphs for the :class:`~repro.rdf.rdfs.RDFSReasoner`.
"""

from __future__ import annotations

from typing import Dict

from repro.rdf import Graph, Literal, URIRef
from repro.rdf.namespace import Namespace, RDF, RDFS

#: Landcover concept namespace.
LC = Namespace("http://teleios.di.uoa.gr/ontologies/landcover.owl#")
#: Environmental monitoring concept namespace.
EM = Namespace("http://teleios.di.uoa.gr/ontologies/monitoring.owl#")

_TYPE = URIRef(str(RDF) + "type")
_SUBCLASS = URIRef(str(RDFS) + "subClassOf")
_LABEL = URIRef(str(RDFS) + "label")
_CLASS = URIRef(str(RDFS) + "Class")

#: Concept key → IRI, used by classifiers/annotators.
CONCEPTS: Dict[str, URIRef] = {
    "fire": URIRef(str(EM) + "ForestFire"),
    "burned": URIRef(str(EM) + "BurnedArea"),
    "cloud": URIRef(str(LC) + "Cloud"),
    "sea": URIRef(str(LC) + "Sea"),
    "lake": URIRef(str(LC) + "Lake"),
    "forest": URIRef(str(LC) + "Forest"),
    "farmland": URIRef(str(LC) + "AgriculturalArea"),
    "urban": URIRef(str(LC) + "UrbanArea"),
    "other": URIRef(str(LC) + "LandSurface"),
}


def _add_class(g: Graph, node: URIRef, parent: URIRef, label: str) -> None:
    g.add((node, _TYPE, _CLASS))
    g.add((node, _SUBCLASS, parent))
    g.add((node, _LABEL, Literal(label)))


def landcover_ontology() -> Graph:
    """The landcover hierarchy (water-body / lake / forest / ... )."""
    g = Graph()
    root = URIRef(str(LC) + "LandCover")
    g.add((root, _TYPE, _CLASS))
    natural = URIRef(str(LC) + "NaturalFeature")
    water = URIRef(str(LC) + "WaterBody")
    vegetation = URIRef(str(LC) + "Vegetation")
    artificial = URIRef(str(LC) + "ArtificialSurface")
    _add_class(g, natural, root, "natural feature")
    _add_class(g, artificial, root, "artificial surface")
    _add_class(g, water, natural, "water body")
    _add_class(g, vegetation, natural, "vegetation")
    _add_class(g, URIRef(str(LC) + "Sea"), water, "sea")
    _add_class(g, URIRef(str(LC) + "Lake"), water, "lake")
    _add_class(g, URIRef(str(LC) + "River"), water, "river")
    _add_class(g, URIRef(str(LC) + "Forest"), vegetation, "forest")
    _add_class(
        g, URIRef(str(LC) + "AgriculturalArea"), vegetation,
        "agricultural area",
    )
    _add_class(g, URIRef(str(LC) + "UrbanArea"), artificial, "urban area")
    _add_class(g, URIRef(str(LC) + "LandSurface"), natural, "land surface")
    _add_class(g, URIRef(str(LC) + "Cloud"), root, "cloud")
    return g


def monitoring_ontology() -> Graph:
    """The environmental-monitoring hierarchy (fires, floods, ...)."""
    g = Graph()
    root = URIRef(str(EM) + "Event")
    g.add((root, _TYPE, _CLASS))
    hazard = URIRef(str(EM) + "NaturalHazard")
    fire = URIRef(str(EM) + "Fire")
    _add_class(g, hazard, root, "natural hazard")
    _add_class(g, fire, hazard, "fire")
    _add_class(g, URIRef(str(EM) + "ForestFire"), fire, "forest fire")
    _add_class(
        g, URIRef(str(EM) + "AgriculturalFire"), fire, "agricultural fire"
    )
    _add_class(g, URIRef(str(EM) + "BurnedArea"), hazard, "burned area")
    _add_class(g, URIRef(str(EM) + "Flood"), hazard, "flood")
    _add_class(g, URIRef(str(EM) + "Hotspot"), fire, "hotspot")
    return g


def combined_ontology() -> Graph:
    """Landcover + monitoring in one schema graph."""
    g = landcover_ontology()
    for triple in monitoring_ontology():
        g.add(triple)
    return g
