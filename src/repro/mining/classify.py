"""Patch classifiers for image information mining.

Three classic supervised classifiers over feature matrices, implemented on
numpy only.  All share the fit/predict interface of :class:`Classifier`
and normalise features internally (z-score of the training set).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


class ClassifierError(ValueError):
    """Raised for invalid training data or unfit classifiers."""


class Classifier:
    """Interface: ``fit(X, labels)`` then ``predict(X)``.

    ``X`` is an (n_samples, n_features) float matrix; labels are strings.
    """

    def __init__(self):
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None
        self.classes_: List[str] = []

    def fit(self, X: np.ndarray, labels: Sequence[str]) -> "Classifier":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or len(X) != len(labels):
            raise ClassifierError(
                f"X is {X.shape}, labels has {len(labels)} entries"
            )
        if len(X) == 0:
            raise ClassifierError("cannot fit on an empty training set")
        self._mean = X.mean(axis=0)
        self._std = X.std(axis=0)
        self._std[self._std < 1e-12] = 1.0
        self.classes_ = sorted(set(labels))
        self._fit(self._normalize(X), list(labels))
        return self

    def predict(self, X: np.ndarray) -> List[str]:
        if self._mean is None:
            raise ClassifierError("classifier is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        return self._predict(self._normalize(X))

    def score(self, X: np.ndarray, labels: Sequence[str]) -> float:
        """Accuracy on a labelled set."""
        predicted = self.predict(X)
        hits = sum(1 for p, t in zip(predicted, labels) if p == t)
        return hits / len(labels) if labels else 0.0

    def _normalize(self, X: np.ndarray) -> np.ndarray:
        return (X - self._mean) / self._std

    def _fit(self, X: np.ndarray, labels: List[str]) -> None:
        raise NotImplementedError

    def _predict(self, X: np.ndarray) -> List[str]:
        raise NotImplementedError


class KNNClassifier(Classifier):
    """k-nearest-neighbours with Euclidean distance and majority vote."""

    def __init__(self, k: int = 5):
        super().__init__()
        if k < 1:
            raise ClassifierError("k must be >= 1")
        self.k = k
        self._X: Optional[np.ndarray] = None
        self._labels: List[str] = []

    def _fit(self, X: np.ndarray, labels: List[str]) -> None:
        self._X = X
        self._labels = labels

    def _predict(self, X: np.ndarray) -> List[str]:
        assert self._X is not None
        k = min(self.k, len(self._X))
        out: List[str] = []
        for row in X:
            dist = np.linalg.norm(self._X - row, axis=1)
            nearest = np.argpartition(dist, k - 1)[:k]
            votes: Dict[str, Tuple[int, float]] = {}
            for idx in nearest:
                label = self._labels[idx]
                count, total = votes.get(label, (0, 0.0))
                votes[label] = (count + 1, total + dist[idx])
            # Majority, ties broken by smaller summed distance.
            best = max(
                votes.items(), key=lambda kv: (kv[1][0], -kv[1][1])
            )
            out.append(best[0])
        return out


class NearestCentroidClassifier(Classifier):
    """Assigns the class whose feature centroid is closest."""

    def __init__(self):
        super().__init__()
        self._centroids: Dict[str, np.ndarray] = {}

    def _fit(self, X: np.ndarray, labels: List[str]) -> None:
        self._centroids = {}
        arr_labels = np.asarray(labels)
        for cls in self.classes_:
            self._centroids[cls] = X[arr_labels == cls].mean(axis=0)

    def _predict(self, X: np.ndarray) -> List[str]:
        names = list(self._centroids)
        centers = np.vstack([self._centroids[n] for n in names])
        out = []
        for row in X:
            dist = np.linalg.norm(centers - row, axis=1)
            out.append(names[int(np.argmin(dist))])
        return out


class GaussianNBClassifier(Classifier):
    """Gaussian naive Bayes with per-class diagonal covariance."""

    def __init__(self, var_smoothing: float = 1e-6):
        super().__init__()
        self.var_smoothing = var_smoothing
        self._params: Dict[str, Tuple[np.ndarray, np.ndarray, float]] = {}

    def _fit(self, X: np.ndarray, labels: List[str]) -> None:
        self._params = {}
        arr_labels = np.asarray(labels)
        n = len(labels)
        for cls in self.classes_:
            rows = X[arr_labels == cls]
            mean = rows.mean(axis=0)
            var = rows.var(axis=0) + self.var_smoothing
            prior = len(rows) / n
            self._params[cls] = (mean, var, prior)

    def _predict(self, X: np.ndarray) -> List[str]:
        names = list(self._params)
        scores = np.zeros((len(X), len(names)))
        for j, cls in enumerate(names):
            mean, var, prior = self._params[cls]
            log_likelihood = -0.5 * (
                np.log(2.0 * np.pi * var) + (X - mean) ** 2 / var
            ).sum(axis=1)
            scores[:, j] = log_likelihood + np.log(prior)
        return [names[int(i)] for i in np.argmax(scores, axis=1)]


def train_test_split(
    X: np.ndarray,
    labels: Sequence[str],
    test_fraction: float = 0.3,
    seed: int = 0,
) -> Tuple[np.ndarray, List[str], np.ndarray, List[str]]:
    """Deterministic shuffled split: (X_train, y_train, X_test, y_test)."""
    if not 0.0 < test_fraction < 1.0:
        raise ClassifierError("test_fraction must be in (0, 1)")
    X = np.asarray(X, dtype=float)
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(X))
    cut = max(1, int(len(X) * (1.0 - test_fraction)))
    train_idx, test_idx = order[:cut], order[cut:]
    labels = list(labels)
    return (
        X[train_idx],
        [labels[i] for i in train_idx],
        X[test_idx],
        [labels[i] for i in test_idx],
    )
