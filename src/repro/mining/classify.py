"""Patch classifiers for image information mining.

Three classic supervised classifiers over feature matrices, implemented on
numpy only.  All share the fit/predict interface of :class:`Classifier`
and normalise features internally (z-score of the training set).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


class ClassifierError(ValueError):
    """Raised for invalid training data or unfit classifiers."""


class Classifier:
    """Interface: ``fit(X, labels)`` then ``predict(X)``.

    ``X`` is an (n_samples, n_features) float matrix; labels are strings.
    Fitted classifiers round-trip losslessly through :meth:`to_state` /
    :func:`classifier_from_state` (plain JSON-able dicts; floats survive
    bit-exactly via repr round-tripping), which is what the storage
    engine persists.
    """

    #: Registry key used by state round-tripping; set per subclass.
    kind = ""

    def __init__(self):
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None
        self.classes_: List[str] = []

    def fit(self, X: np.ndarray, labels: Sequence[str]) -> "Classifier":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or len(X) != len(labels):
            raise ClassifierError(
                f"X is {X.shape}, labels has {len(labels)} entries"
            )
        if len(X) == 0:
            raise ClassifierError("cannot fit on an empty training set")
        self._mean = X.mean(axis=0)
        self._std = X.std(axis=0)
        self._std[self._std < 1e-12] = 1.0
        self.classes_ = sorted(set(labels))
        self._fit(self._normalize(X), list(labels))
        return self

    def predict(self, X: np.ndarray) -> List[str]:
        if self._mean is None:
            raise ClassifierError("classifier is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        return self._predict(self._normalize(X))

    def score(self, X: np.ndarray, labels: Sequence[str]) -> float:
        """Accuracy on a labelled set."""
        predicted = self.predict(X)
        hits = sum(1 for p, t in zip(predicted, labels) if p == t)
        return hits / len(labels) if labels else 0.0

    def _normalize(self, X: np.ndarray) -> np.ndarray:
        return (X - self._mean) / self._std

    def _fit(self, X: np.ndarray, labels: List[str]) -> None:
        raise NotImplementedError

    def _predict(self, X: np.ndarray) -> List[str]:
        raise NotImplementedError

    # -- persisted model state -----------------------------------------------

    def to_state(self) -> Dict:
        """JSON-able snapshot of a *fitted* classifier."""
        if self._mean is None:
            raise ClassifierError("classifier is not fitted")
        return {
            "kind": self.kind,
            "mean": [float(v) for v in self._mean],
            "std": [float(v) for v in self._std],
            "classes": list(self.classes_),
            "params": self._state(),
        }

    def _state(self) -> Dict:
        raise NotImplementedError

    def _load_state(self, params: Dict) -> None:
        raise NotImplementedError


class KNNClassifier(Classifier):
    """k-nearest-neighbours with Euclidean distance and majority vote."""

    kind = "knn"

    def __init__(self, k: int = 5):
        super().__init__()
        if k < 1:
            raise ClassifierError("k must be >= 1")
        self.k = k
        self._X: Optional[np.ndarray] = None
        self._labels: List[str] = []

    def _fit(self, X: np.ndarray, labels: List[str]) -> None:
        self._X = X
        self._labels = labels

    def _predict(self, X: np.ndarray) -> List[str]:
        assert self._X is not None
        k = min(self.k, len(self._X))
        out: List[str] = []
        for row in X:
            dist = np.linalg.norm(self._X - row, axis=1)
            nearest = np.argpartition(dist, k - 1)[:k]
            votes: Dict[str, Tuple[int, float]] = {}
            for idx in nearest:
                label = self._labels[idx]
                count, total = votes.get(label, (0, 0.0))
                votes[label] = (count + 1, total + dist[idx])
            # Majority, ties broken by smaller summed distance.
            best = max(
                votes.items(), key=lambda kv: (kv[1][0], -kv[1][1])
            )
            out.append(best[0])
        return out

    def _state(self) -> Dict:
        assert self._X is not None
        return {
            "k": self.k,
            "X": [[float(v) for v in row] for row in self._X],
            "labels": list(self._labels),
        }

    def _load_state(self, params: Dict) -> None:
        self.k = int(params["k"])
        self._X = np.asarray(params["X"], dtype=float)
        self._labels = list(params["labels"])


class NearestCentroidClassifier(Classifier):
    """Assigns the class whose feature centroid is closest."""

    kind = "centroid"

    def __init__(self):
        super().__init__()
        self._centroids: Dict[str, np.ndarray] = {}

    def _fit(self, X: np.ndarray, labels: List[str]) -> None:
        self._centroids = {}
        arr_labels = np.asarray(labels)
        for cls in self.classes_:
            self._centroids[cls] = X[arr_labels == cls].mean(axis=0)

    def _predict(self, X: np.ndarray) -> List[str]:
        names = list(self._centroids)
        centers = np.vstack([self._centroids[n] for n in names])
        out = []
        for row in X:
            dist = np.linalg.norm(centers - row, axis=1)
            out.append(names[int(np.argmin(dist))])
        return out

    def _state(self) -> Dict:
        # A list of pairs: centroid iteration order is significant
        # (argmin ties resolve to the first name).
        return {
            "centroids": [
                [cls, [float(v) for v in centre]]
                for cls, centre in self._centroids.items()
            ]
        }

    def _load_state(self, params: Dict) -> None:
        self._centroids = {
            cls: np.asarray(centre, dtype=float)
            for cls, centre in params["centroids"]
        }


class GaussianNBClassifier(Classifier):
    """Gaussian naive Bayes with per-class diagonal covariance."""

    kind = "gaussian-nb"

    def __init__(self, var_smoothing: float = 1e-6):
        super().__init__()
        self.var_smoothing = var_smoothing
        self._params: Dict[str, Tuple[np.ndarray, np.ndarray, float]] = {}

    def _fit(self, X: np.ndarray, labels: List[str]) -> None:
        self._params = {}
        arr_labels = np.asarray(labels)
        n = len(labels)
        for cls in self.classes_:
            rows = X[arr_labels == cls]
            mean = rows.mean(axis=0)
            var = rows.var(axis=0) + self.var_smoothing
            prior = len(rows) / n
            self._params[cls] = (mean, var, prior)

    def _predict(self, X: np.ndarray) -> List[str]:
        names = list(self._params)
        scores = np.zeros((len(X), len(names)))
        for j, cls in enumerate(names):
            mean, var, prior = self._params[cls]
            log_likelihood = -0.5 * (
                np.log(2.0 * np.pi * var) + (X - mean) ** 2 / var
            ).sum(axis=1)
            scores[:, j] = log_likelihood + np.log(prior)
        return [names[int(i)] for i in np.argmax(scores, axis=1)]

    def _state(self) -> Dict:
        return {
            "var_smoothing": float(self.var_smoothing),
            "params": [
                [
                    cls,
                    [float(v) for v in mean],
                    [float(v) for v in var],
                    float(prior),
                ]
                for cls, (mean, var, prior) in self._params.items()
            ],
        }

    def _load_state(self, params: Dict) -> None:
        self.var_smoothing = float(params["var_smoothing"])
        self._params = {
            cls: (
                np.asarray(mean, dtype=float),
                np.asarray(var, dtype=float),
                float(prior),
            )
            for cls, mean, var, prior in params["params"]
        }


#: Registry of persistable classifier kinds.
CLASSIFIER_KINDS: Dict[str, type] = {
    "knn": KNNClassifier,
    "centroid": NearestCentroidClassifier,
    "gaussian-nb": GaussianNBClassifier,
}


def classifier_from_state(state: Dict) -> Classifier:
    """Rebuild a fitted classifier from a :meth:`Classifier.to_state` dict."""
    try:
        cls = CLASSIFIER_KINDS[state["kind"]]
    except KeyError:
        raise ClassifierError(
            f"unknown classifier kind {state.get('kind')!r}"
        ) from None
    clf: Classifier = cls()
    clf._mean = np.asarray(state["mean"], dtype=float)
    clf._std = np.asarray(state["std"], dtype=float)
    clf.classes_ = list(state["classes"])
    clf._load_state(state["params"])
    return clf


def train_test_split(
    X: np.ndarray,
    labels: Sequence[str],
    test_fraction: float = 0.3,
    seed: int = 0,
) -> Tuple[np.ndarray, List[str], np.ndarray, List[str]]:
    """Deterministic shuffled split: (X_train, y_train, X_test, y_test)."""
    if not 0.0 < test_fraction < 1.0:
        raise ClassifierError("test_fraction must be in (0, 1)")
    X = np.asarray(X, dtype=float)
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(X))
    cut = max(1, int(len(X) * (1.0 - test_fraction)))
    train_idx, test_idx = order[:cut], order[cut:]
    labels = list(labels)
    return (
        X[train_idx],
        [labels[i] for i in train_idx],
        X[test_idx],
        [labels[i] for i in test_idx],
    )
