"""Image information mining and knowledge discovery (paper refs [3], [4]).

Classifies image patches into concepts from OWL ontologies (landcover,
environmental monitoring) to "close the semantic gap" between user
requests and archive metadata:

* :mod:`repro.mining.ontology` — the landcover and environmental
  monitoring ontologies as RDFS class hierarchies;
* :mod:`repro.mining.classify` — patch classifiers (kNN, Gaussian naive
  Bayes, nearest-centroid) over feature vectors;
* :mod:`repro.mining.annotate` — semantic annotation: classified patches
  published as stRDF linked data.
"""

from repro.mining.ontology import (
    CONCEPTS,
    landcover_ontology,
    monitoring_ontology,
)
from repro.mining.classify import (
    Classifier,
    GaussianNBClassifier,
    KNNClassifier,
    NearestCentroidClassifier,
    train_test_split,
)
from repro.mining.annotate import SemanticAnnotator

__all__ = [
    "CONCEPTS",
    "Classifier",
    "GaussianNBClassifier",
    "KNNClassifier",
    "NearestCentroidClassifier",
    "SemanticAnnotator",
    "landcover_ontology",
    "monitoring_ontology",
    "train_test_split",
]
