"""Image information mining and knowledge discovery (paper refs [3], [4]).

Classifies image patches into concepts from OWL ontologies (landcover,
environmental monitoring) to "close the semantic gap" between user
requests and archive metadata:

* :mod:`repro.mining.ontology` — the landcover and environmental
  monitoring ontologies as RDFS class hierarchies;
* :mod:`repro.mining.features` — patch-grid feature extraction over
  SciQL arrays (tile statistics through the compiled kernel read path);
* :mod:`repro.mining.classify` — patch classifiers (kNN, Gaussian naive
  Bayes, nearest-centroid) over feature vectors, with JSON-able fitted
  state;
* :mod:`repro.mining.models` — named model persistence in the
  relational tier (WAL-durable on storage-engine-backed databases);
* :mod:`repro.mining.annotate` — semantic annotation: classified patches
  published as stRDF linked data with valid time and footprints;
* :mod:`repro.mining.pipeline` — the batchable extract → classify →
  annotate pipeline sharing the NOA chain's resilience machinery;
* :mod:`repro.mining.queries` — stSPARQL catalogue queries over
  annotations, including the hotspot-product join.
"""

from repro.mining.ontology import (
    CONCEPTS,
    landcover_ontology,
    monitoring_ontology,
)
from repro.mining.classify import (
    CLASSIFIER_KINDS,
    Classifier,
    GaussianNBClassifier,
    KNNClassifier,
    NearestCentroidClassifier,
    classifier_from_state,
    train_test_split,
)
from repro.mining.features import (
    MINING_FEATURE_NAMES,
    extract_patch_grid,
)
from repro.mining.models import ModelStore
from repro.mining.annotate import DEFAULT_VALIDITY, SemanticAnnotator
from repro.mining.pipeline import MiningPipeline, MiningResult

__all__ = [
    "CLASSIFIER_KINDS",
    "CONCEPTS",
    "Classifier",
    "DEFAULT_VALIDITY",
    "GaussianNBClassifier",
    "KNNClassifier",
    "MINING_FEATURE_NAMES",
    "MiningPipeline",
    "MiningResult",
    "ModelStore",
    "NearestCentroidClassifier",
    "SemanticAnnotator",
    "classifier_from_state",
    "extract_patch_grid",
    "landcover_ontology",
    "monitoring_ontology",
    "train_test_split",
]
