"""Persisted classifier model state.

The mining pillar's classifiers are small (centroids, neighbour tables,
Gaussian parameters), so the model registry keeps them in a relational
table, ``mining_models`` — one row per model name holding the JSON
state snapshot from :meth:`Classifier.to_state`.  On a durable database
(a :class:`repro.mdb.storage.StorageEngine`-backed instance) every save
therefore rides the WAL like any other insert and survives crash
recovery; on a plain in-memory database it behaves as a session-scoped
registry.  Floats round-trip bit-exactly (``json`` emits shortest
reprs), so a reloaded classifier predicts identically to the fitted
one.
"""

from __future__ import annotations

import json
from typing import List

from repro import obs
from repro.mining.classify import (
    Classifier,
    ClassifierError,
    classifier_from_state,
)

TABLE = "mining_models"

_SCHEMA = (
    f"CREATE TABLE IF NOT EXISTS {TABLE} (name STRING, payload STRING)"
)


def _check_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "._-" for c in name):
        raise ClassifierError(
            f"model name must be [alnum._-], got {name!r}"
        )
    return name


class ModelStore:
    """Named, persisted classifier models over an mdb database."""

    def __init__(self, db):
        self.db = db
        db.execute(_SCHEMA)

    def save(self, name: str, classifier: Classifier) -> None:
        """Persist a fitted classifier under ``name`` (upsert)."""
        _check_name(name)
        payload = json.dumps(classifier.to_state(), sort_keys=True)
        with self.db.lock:
            self.db.execute(
                f"DELETE FROM {TABLE} WHERE name = '{name}'"
            )
            self.db.insert_rows(TABLE, [(name, payload)])
        obs.counter("mining.models.saved").inc()

    def load(self, name: str) -> Classifier:
        """Rebuild the fitted classifier stored under ``name``."""
        _check_name(name)
        rows = self.db.query(
            f"SELECT payload FROM {TABLE} WHERE name = '{name}'"
        )
        if not rows:
            raise ClassifierError(f"no persisted model {name!r}")
        obs.counter("mining.models.loaded").inc()
        return classifier_from_state(json.loads(rows[0][0]))

    def delete(self, name: str) -> None:
        _check_name(name)
        self.db.execute(f"DELETE FROM {TABLE} WHERE name = '{name}'")

    def names(self) -> List[str]:
        return sorted(
            row[0] for row in self.db.query(f"SELECT name FROM {TABLE}")
        )

    def __contains__(self, name: str) -> bool:
        return name in self.names()
