"""Semantic catalogue queries over mining annotations.

Query builders for the linked-data side of the knowledge-discovery
pillar: once :class:`~repro.mining.annotate.SemanticAnnotator` output is
loaded into a :class:`~repro.strabon.StrabonStore`, these stSPARQL
texts answer the paper's content-based catalogue questions — "patches
classified as X", "annotations valid at time T", and the cross-pillar
join "mining annotations spatially and temporally consistent with the
fire chain's hotspot products".

Every function returns plain query text; run it through
``StrabonStore.query`` (or ``VirtualEarthObservatory.catalog.run``).
"""

from __future__ import annotations

from datetime import datetime
from typing import Optional

from repro.ingest.metadata import NOA_PREFIXES
from repro.rdf import URIRef
from repro.mining.ontology import CONCEPTS


def _concept_iri(concept: str) -> str:
    """Accept a classifier label (mapped via CONCEPTS) or a full IRI."""
    mapped = CONCEPTS.get(concept)
    if mapped is not None:
        return str(mapped)
    if isinstance(concept, URIRef):
        return str(concept)
    if "://" not in concept:
        raise ValueError(
            f"unknown concept label {concept!r} "
            f"(known: {sorted(CONCEPTS)}) and not an IRI"
        )
    return concept


def annotations_by_concept(concept: str) -> str:
    """All patch annotations typed with a concept, with geometry."""
    iri = _concept_iri(concept)
    return (
        NOA_PREFIXES
        + "SELECT ?patch ?geom ?product WHERE {\n"
        f"  ?patch a <{iri}> ;\n"
        "         a noa:Patch ;\n"
        "         noa:hasGeometry ?geom ;\n"
        "         noa:isPatchOf ?product .\n"
        "}"
    )


def annotations_valid_during(
    concept: str, start: datetime, end: datetime
) -> str:
    """Annotations of a concept whose valid time lies inside [start, end).

    Exercises the stRDF valid-time machinery: the annotation's
    ``noa:hasValidTime`` period literal is tested with ``strdf:during``
    against an inline period.
    """
    iri = _concept_iri(concept)
    period = f'"[{start.isoformat()}, {end.isoformat()})"^^strdf:period'
    return (
        NOA_PREFIXES
        + "SELECT ?patch ?valid WHERE {\n"
        f"  ?patch a <{iri}> ;\n"
        "         noa:hasValidTime ?valid .\n"
        f"  FILTER(strdf:during(?valid, {period}))\n"
        "}"
    )


def annotation_hotspot_join(
    concept: str = "fire",
    max_distance_deg: Optional[float] = None,
) -> str:
    """Join mining annotations with the fire chain's hotspot products.

    The cross-pillar consistency query of the tentpole: a patch the
    classifier typed with ``concept`` is paired with every hotspot the
    processing chain derived *from the same product*, constrained to
    spatially intersecting geometries and to hotspot acquisition
    instants falling inside the annotation's valid time.  With
    ``max_distance_deg`` the spatial constraint relaxes from
    intersection to a distance bound.
    """
    iri = _concept_iri(concept)
    if max_distance_deg is None:
        spatial = "FILTER(strdf:intersects(?pgeom, ?hgeom))"
    else:
        spatial = (
            f"FILTER(strdf:distance(?pgeom, ?hgeom) < {max_distance_deg})"
        )
    return (
        NOA_PREFIXES
        + "SELECT ?patch ?hotspot ?conf WHERE {\n"
        f"  ?patch a <{iri}> ;\n"
        "         a noa:Patch ;\n"
        "         noa:hasGeometry ?pgeom ;\n"
        "         noa:hasValidTime ?valid ;\n"
        "         noa:isPatchOf ?product .\n"
        "  ?derived noa:isDerivedFrom ?product .\n"
        "  ?hotspot a noa:Hotspot ;\n"
        "           noa:isProducedBy ?derived ;\n"
        "           noa:hasGeometry ?hgeom ;\n"
        "           noa:hasConfidence ?conf ;\n"
        "           noa:hasAcquisitionTime ?t .\n"
        f"  {spatial}\n"
        "  FILTER(strdf:periodOverlaps(?valid, ?t))\n"
        "}"
    )


def concept_census() -> str:
    """Label → patch count over every annotation in the store."""
    return (
        NOA_PREFIXES
        + "SELECT ?label (COUNT(?patch) AS ?n) WHERE {\n"
        "  ?patch a noa:Patch ;\n"
        "         noa:hasLabel ?label .\n"
        "} GROUP BY ?label ORDER BY ?label"
    )
