"""Semantic annotation: classified patches published as stRDF.

The knowledge-discovery arrow of Figure 1: patch feature vectors are
classified into ontology concepts and the results are emitted as linked
data, joined to the originating product so catalog queries can search by
content ("images containing hotspots").
"""

from __future__ import annotations

from datetime import timedelta
from typing import Dict, Optional, Sequence

from repro.eo.products import Product
from repro.ingest.features import PatchGrid
from repro.ingest.metadata import product_uri
from repro.mining.classify import Classifier
from repro.mining.ontology import CONCEPTS
from repro.rdf import Graph, Literal, URIRef
from repro.rdf.namespace import NOA, RDF
from repro.strabon.strdf import geometry_literal, period_literal

_TYPE = URIRef(str(RDF) + "type")

#: Default annotation validity: one SEVIRI repeat cycle.  An annotation
#: derived from an acquisition asserts its concept for the half-open
#: interval ``[acquired, acquired + validity)`` — the stRDF valid time
#: the catalogue's temporal constraints (``strdf:during`` & friends)
#: filter on.
DEFAULT_VALIDITY = timedelta(minutes=15)


class SemanticAnnotator:
    """Annotates patch grids with ontology concepts.

    ``concept_map`` translates classifier labels to concept IRIs; it
    defaults to :data:`repro.mining.ontology.CONCEPTS`.
    """

    def __init__(
        self,
        classifier: Classifier,
        concept_map: Optional[Dict[str, URIRef]] = None,
        validity: timedelta = DEFAULT_VALIDITY,
    ):
        self.classifier = classifier
        self.concept_map = dict(concept_map or CONCEPTS)
        if validity <= timedelta(0):
            raise ValueError("annotation validity must be positive")
        self.validity = validity

    def annotate(
        self,
        product: Product,
        grid: PatchGrid,
        labels: Optional[Sequence[str]] = None,
    ) -> Graph:
        """Classify the grid (unless ``labels`` are given) and emit RDF.

        Each patch becomes a ``noa:Patch`` resource typed with its concept,
        carrying its footprint geometry, its stRDF valid time (the
        acquisition instant extended by ``validity``), and a link to the
        product.
        """
        if labels is None:
            labels = self.classifier.predict(grid.feature_matrix())
        if len(labels) != len(grid):
            raise ValueError(
                f"{len(labels)} labels for {len(grid)} patches"
            )
        g = Graph()
        prod_node = product_uri(product)
        valid_time = None
        if product.acquired is not None:
            valid_time = period_literal(
                product.acquired, product.acquired + self.validity
            )
        for patch, label in zip(grid, labels):
            node = URIRef(
                f"{prod_node}/patch/{patch.row}_{patch.col}"
            )
            g.add((node, _TYPE, URIRef(str(NOA) + "Patch")))
            concept = self.concept_map.get(label)
            if concept is not None:
                g.add((node, _TYPE, concept))
            g.add(
                (node, URIRef(str(NOA) + "hasLabel"), Literal(label))
            )
            g.add(
                (
                    node,
                    URIRef(str(NOA) + "hasGeometry"),
                    geometry_literal(patch.footprint),
                )
            )
            if valid_time is not None:
                g.add(
                    (node, URIRef(str(NOA) + "hasValidTime"), valid_time)
                )
            g.add(
                (node, URIRef(str(NOA) + "isPatchOf"), prod_node)
            )
        return g

    def label_statistics(self, labels: Sequence[str]) -> Dict[str, int]:
        """Label → count summary of one annotation run."""
        stats: Dict[str, int] = {}
        for label in labels:
            stats[label] = stats.get(label, 0) + 1
        return stats
