"""Process-wide observability: metrics registry and tracing spans.

TELEIOS's demo scenarios hinge on *comparing* processing chains and
query strategies, and the performance layers (plan caches, the worker
pool, tiled kernels) need runtime visibility to be tuned at all.  This
module is the one instrumentation substrate every tier shares:

* :class:`Counter` / :class:`Gauge` / :class:`Histogram` — thread-safe
  primitives; histograms keep exact count/sum/min/max plus a bounded
  reservoir of recent observations for p50/p95;
* :class:`Span` — a lightweight tracing context manager
  (``with span("noa.cropping", acquisition=...)``) recording wall time
  into the histogram of the same name and maintaining a per-thread
  nesting stack (:func:`current_span`);
* cache auto-registration — every :class:`repro.cache.LRUCache`
  registers its live :class:`~repro.cache.CacheStats` here (held by weak
  reference, so transient caches vanish from snapshots when collected);
* :func:`snapshot` — everything as one structured dict, and
  :func:`render` — a text exposition (one metric per line) served by the
  service tier (:class:`repro.vo.services.MetricsService`).

The whole layer is gated by the ``REPRO_OBS`` environment variable:
``REPRO_OBS=0`` (or ``false``/``off``/``no``) disables it, making every
accessor return shared no-op singletons — a disabled call site costs one
method call and a flag test, nothing else.  Instrumentation is recorded
at operation granularity (per query, per stage, per kernel call — never
per cell or per solution), so the enabled overhead stays far below the
work being measured.
"""

from __future__ import annotations

import math
import os
import threading
import time
import weakref
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OBS_ENV",
    "Span",
    "counter",
    "current_span",
    "enabled",
    "gauge",
    "get_registry",
    "histogram",
    "register_cache",
    "render",
    "reset",
    "set_enabled",
    "snapshot",
    "span",
]

#: Environment variable gating the whole layer (default: enabled).
OBS_ENV = "REPRO_OBS"

#: Observations kept per histogram for percentile estimation.  Exact
#: count/sum/min/max are always maintained over *all* observations; only
#: the percentile reservoir is bounded (a ring of the most recent).
HISTOGRAM_WINDOW = 2048


def _env_enabled() -> bool:
    raw = os.environ.get(OBS_ENV, "").strip().lower()
    return raw not in ("0", "false", "off", "no")


# -- primitives ---------------------------------------------------------------


class Counter:
    """A monotonically increasing value (int or float increments)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self._value}>"


class Gauge:
    """A value that can move both ways (queue depth, utilization)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self._value}>"


class Histogram:
    """Distribution summary: exact count/sum/min/max, windowed p50/p95."""

    __slots__ = ("name", "_lock", "_count", "_sum", "_min", "_max",
                 "_window", "_cursor")

    def __init__(self, name: str, window: int = HISTOGRAM_WINDOW):
        self.name = name
        self._lock = threading.Lock()
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._window: List[float] = [0.0] * max(1, window)
        self._cursor = 0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            self._window[self._cursor % len(self._window)] = value
            self._cursor += 1

    @property
    def count(self) -> int:
        return self._count

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (0..1) over the retained window."""
        with self._lock:
            filled = min(self._cursor, len(self._window))
            if filled == 0:
                return 0.0
            ordered = sorted(self._window[:filled])
        rank = min(filled - 1, max(0, int(math.ceil(q * filled)) - 1))
        return ordered[rank]

    def summary(self) -> Dict[str, float]:
        with self._lock:
            count = self._count
            total = self._sum
            lo = self._min
            hi = self._max
            filled = min(self._cursor, len(self._window))
            ordered = sorted(self._window[:filled])
        if count == 0:
            return {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0,
                    "p50": 0.0, "p95": 0.0, "max": 0.0}

        def pick(q: float) -> float:
            rank = min(filled - 1, max(0, int(math.ceil(q * filled)) - 1))
            return ordered[rank]

        return {
            "count": count,
            "sum": total,
            "mean": total / count,
            "min": lo,
            "p50": pick(0.50),
            "p95": pick(0.95),
            "max": hi,
        }

    def __repr__(self) -> str:
        s = self.summary()
        return (
            f"<Histogram {self.name} count={s['count']} "
            f"p50={s['p50']:.6g} p95={s['p95']:.6g} max={s['max']:.6g}>"
        )


class Span:
    """One timed block; durations land in the histogram of its name.

    Spans nest per thread: the innermost open span of the calling thread
    is :func:`current_span`.  ``tags`` are free-form annotations carried
    on the span object (``span.tags``) for in-flight inspection — they
    are deliberately not aggregated, so tagging stays allocation-cheap.
    """

    __slots__ = ("registry", "name", "tags", "started", "elapsed")

    def __init__(self, registry: "MetricsRegistry", name: str,
                 tags: Optional[Dict[str, Any]] = None):
        self.registry = registry
        self.name = name
        self.tags = tags or {}
        self.started = 0.0
        self.elapsed: Optional[float] = None

    def __enter__(self) -> "Span":
        self.registry._span_stack().append(self)
        self.started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self.started
        stack = self.registry._span_stack()
        if stack and stack[-1] is self:
            stack.pop()
        self.registry.histogram(self.name).observe(self.elapsed)


# -- disabled-mode singletons -------------------------------------------------


class _NullCounter:
    __slots__ = ()
    name = "<disabled>"
    value = 0

    def inc(self, amount: float = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = "<disabled>"
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = "<disabled>"
    count = 0

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0

    def summary(self) -> Dict[str, float]:
        return {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0,
                "p50": 0.0, "p95": 0.0, "max": 0.0}


class _NullSpan:
    __slots__ = ()
    name = "<disabled>"
    tags: Dict[str, Any] = {}
    elapsed = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()
_NULL_SPAN = _NullSpan()


# -- the registry -------------------------------------------------------------


class MetricsRegistry:
    """Named metrics, created lazily, plus weakly-held cache stats."""

    def __init__(self, enabled: Optional[bool] = None):
        self._enabled = _env_enabled() if enabled is None else bool(enabled)
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._caches: Dict[str, "weakref.ref"] = {}
        self._local = threading.local()

    # -- gating --------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def set_enabled(self, flag: bool) -> None:
        self._enabled = bool(flag)

    # -- accessors -----------------------------------------------------------

    def counter(self, name: str) -> Counter:
        if not self._enabled:
            return _NULL_COUNTER  # type: ignore[return-value]
        return self._metric(self._counters, name, Counter)

    def gauge(self, name: str) -> Gauge:
        if not self._enabled:
            return _NULL_GAUGE  # type: ignore[return-value]
        return self._metric(self._gauges, name, Gauge)

    def histogram(self, name: str) -> Histogram:
        if not self._enabled:
            return _NULL_HISTOGRAM  # type: ignore[return-value]
        return self._metric(self._histograms, name, Histogram)

    def _metric(self, table: Dict[str, Any], name: str,
                factory: Callable[[str], Any]) -> Any:
        metric = table.get(name)
        if metric is None:
            with self._lock:
                metric = table.get(name)
                if metric is None:
                    metric = table[name] = factory(name)
        return metric

    def span(self, name: str, **tags: Any) -> Span:
        if not self._enabled:
            return _NULL_SPAN  # type: ignore[return-value]
        return Span(self, name, tags or None)

    def _span_stack(self) -> List[Span]:
        stack = getattr(self._local, "spans", None)
        if stack is None:
            stack = self._local.spans = []
        return stack

    def current_span(self) -> Optional[Span]:
        """The innermost open span of the calling thread, if any."""
        stack = getattr(self._local, "spans", None)
        return stack[-1] if stack else None

    # -- cache registration --------------------------------------------------

    def register_cache(self, cache: Any, name: Optional[str] = None) -> str:
        """Track any object with a ``stats`` property (weakly held).

        Returns the registered name; duplicates get a ``#N`` suffix so
        every live cache stays individually visible in snapshots.
        """
        base = name or "cache"
        with self._lock:
            self._prune_caches()
            registered = base
            n = 1
            while registered in self._caches:
                n += 1
                registered = f"{base}#{n}"
            self._caches[registered] = weakref.ref(cache)
        return registered

    def _prune_caches(self) -> None:
        dead = [k for k, ref in self._caches.items() if ref() is None]
        for k in dead:
            del self._caches[k]

    def _live_caches(self) -> Iterator[Tuple[str, Any]]:
        with self._lock:
            self._prune_caches()
            pairs = list(self._caches.items())
        for name, ref in pairs:
            cache = ref()
            if cache is not None:
                yield name, cache

    # -- reporting -----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Everything as one structured dict (JSON-serialisable)."""
        caches: Dict[str, Dict[str, Any]] = {}
        for name, cache in self._live_caches():
            stats = cache.stats
            caches[name] = {
                "hits": stats.hits,
                "misses": stats.misses,
                "evictions": stats.evictions,
                "invalidations": stats.invalidations,
                "size": stats.size,
                "maxsize": stats.maxsize,
                "hit_rate": stats.hit_rate,
                "refusals": getattr(stats, "refusals", 0),
            }
        with self._lock:
            counters = {n: c.value for n, c in self._counters.items()}
            gauges = {n: g.value for n, g in self._gauges.items()}
            histograms = list(self._histograms.items())
        return {
            "enabled": self._enabled,
            "counters": counters,
            "gauges": gauges,
            "histograms": {n: h.summary() for n, h in histograms},
            "caches": caches,
        }

    def render(self) -> str:
        """Text exposition: one metric per line, sections commented."""
        snap = self.snapshot()
        lines: List[str] = [f"# repro metrics (enabled={snap['enabled']})"]
        if snap["counters"]:
            lines.append("# counters")
            for name in sorted(snap["counters"]):
                lines.append(f"{name} {snap['counters'][name]}")
        if snap["gauges"]:
            lines.append("# gauges")
            for name in sorted(snap["gauges"]):
                lines.append(f"{name} {snap['gauges'][name]:.6g}")
        if snap["histograms"]:
            lines.append("# histograms (seconds unless noted)")
            for name in sorted(snap["histograms"]):
                s = snap["histograms"][name]
                lines.append(
                    f"{name} count={s['count']} mean={s['mean']:.6g} "
                    f"p50={s['p50']:.6g} p95={s['p95']:.6g} "
                    f"max={s['max']:.6g}"
                )
        if snap["caches"]:
            lines.append("# caches")
            for name in sorted(snap["caches"]):
                c = snap["caches"][name]
                lines.append(
                    f"{name} hits={c['hits']} misses={c['misses']} "
                    f"hit_rate={c['hit_rate']:.3f} "
                    f"size={c['size']}/{c['maxsize']}"
                )
        return "\n".join(lines)

    def reset(self) -> None:
        """Drop every metric (cache registrations survive)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry enabled={self._enabled} "
            f"counters={len(self._counters)} gauges={len(self._gauges)} "
            f"histograms={len(self._histograms)} caches={len(self._caches)}>"
        )


# -- the process-wide registry ------------------------------------------------

_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _REGISTRY


def enabled() -> bool:
    return _REGISTRY.enabled


def set_enabled(flag: bool) -> None:
    _REGISTRY.set_enabled(flag)


def counter(name: str) -> Counter:
    return _REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return _REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    return _REGISTRY.histogram(name)


def span(name: str, **tags: Any) -> Span:
    return _REGISTRY.span(name, **tags)


def current_span() -> Optional[Span]:
    return _REGISTRY.current_span()


def register_cache(cache: Any, name: Optional[str] = None) -> str:
    return _REGISTRY.register_cache(cache, name)


def snapshot() -> Dict[str, Any]:
    return _REGISTRY.snapshot()


def render() -> str:
    return _REGISTRY.render()


def reset() -> None:
    _REGISTRY.reset()
