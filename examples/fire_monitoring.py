"""The two demonstration scenarios of the paper (§4), end to end.

Scenario 1 — *The NOA processing chain*: run the five-module chain with
two different classification submodules on the same acquisition and
compare the generated products (count, accuracy, runtime).

Scenario 2 — *Improving generated products*: show the literal stSPARQL
update statements of the refinement step, apply them while tracking the
thematic accuracy, and generate the linked-data-enriched fire map.

Scenario 3 — *Batch reprocessing*: run the chain over a whole morning of
acquisitions at once with ``ProcessingChain.run_batch``, which pipelines
the acquisitions across the shared worker pool and merges all RDF output
into a single bulk emit.  Worker count comes from the ``REPRO_WORKERS``
environment variable (default 1 — fully serial).

Every run ends with a metrics snapshot from the observability layer
(:mod:`repro.obs`): per-stage NOA timings, stSPARQL phase histograms,
worker-pool utilization and every cache's hit rate.  Set
``REPRO_METRICS_DUMP=/path/to/file.json`` to also write the structured
snapshot as JSON; ``REPRO_OBS=0`` disables the layer entirely.

Chaos mode: set ``REPRO_FAULTS`` (e.g. ``REPRO_FAULTS="*:p=0.1;seed=7"``)
and the resilience layer absorbs the injected transient failures — the
demo still completes and the final snapshot shows the retry, breaker and
``faults.injected`` counters at work.

Run:  python examples/fire_monitoring.py
      REPRO_WORKERS=4 python examples/fire_monitoring.py
      REPRO_FAULTS="*:p=0.1;seed=7" python examples/fire_monitoring.py
"""

import json
import os
import tempfile
import time

from repro import faults, parallel
from repro.eo import SceneSpec, generate_scene, write_scene
from repro.eo.seviri import read_scene
from repro.ingest import Ingestor
from repro.mdb import Database
from repro.noa import ProcessingChain
from repro.noa.refinement import Refiner, score_hotspots, truth_region
from repro.strabon import StrabonStore
from repro.vo import VirtualEarthObservatory

FIRE_SEEDS = [
    (21.63, 37.7),   # inland, near ancient Olympia
    (23.4, 38.05),   # coastal — will need clipping
    (22.5, 38.5),    # near Delphi
]


def banner(text):
    print("\n" + "=" * 72)
    print(text)
    print("=" * 72)


def main():
    workers = parallel.env_workers()
    print(f"worker pool: {workers} worker(s) "
          f"(set {parallel.WORKERS_ENV} to change)")
    if faults.enabled():
        print(f"fault injection ACTIVE: {faults.describe()}")
    vo = VirtualEarthObservatory()
    workdir = tempfile.mkdtemp(prefix="teleios_demo_")
    spec = SceneSpec(width=128, height=128, seed=11, n_fires=0, n_glints=3)
    scene = generate_scene(spec, vo.world.land, fire_seeds=FIRE_SEEDS)
    path = os.path.join(workdir, "scene_000.nat")
    write_scene(scene, path)
    vo.ingest_archive(workdir)
    truth = truth_region(scene, vo.world)

    banner("Scenario 1: the NOA processing chain "
           "(two classification submodules)")
    results = vo.compare_chains(path, ["static", "contextual"])
    print(f"{'chain':<12}{'hotspots':>9}{'precision':>11}{'recall':>8}"
          f"{'f1':>7}{'runtime':>10}")
    for name, result in results.items():
        scores = vo.score_result(result, read_scene(path))
        print(
            f"{name:<12}{len(result.hotspots):>9}"
            f"{scores['precision']:>11.3f}{scores['recall']:>8.3f}"
            f"{scores['f1']:>7.3f}{result.total_seconds * 1000:>8.1f}ms"
        )
    static = results["static"]
    print("\nper-stage timings of the static chain (ms):")
    for stage, seconds in static.timings.items():
        print(f"  {stage:<16}{seconds * 1000:8.2f}")

    banner("Scenario 2: improving generated products with stSPARQL")
    refiner = Refiner(vo.store, vo.world)
    before = score_hotspots(refiner.hotspot_geometries(), truth)
    print("the refinement executes these stSPARQL updates:\n")
    for name, statement in refiner.statements():
        print(f"--- {name} " + "-" * (60 - len(name)))
        print(statement)
        print()
    report = refiner.apply()
    after = score_hotspots(refiner.hotspot_geometries(), truth)
    print(f"{'step':<18}{'affected triples':>18}")
    for name, count in report.steps:
        print(f"{name:<18}{count:>18}")
    print(f"\nhotspots: {report.hotspots_before} -> {report.hotspots_after}")
    print(f"area:     {report.area_before:.4f} -> {report.area_after:.4f} deg^2")
    print(f"precision: {before['precision']:.3f} -> {after['precision']:.3f}")
    print(f"recall:    {before['recall']:.3f} -> {after['recall']:.3f}")

    banner("Scenario 2 (cont.): automatic fire-map generation")
    fire_map = vo.rapid_mapping.build_map("Peloponnese fire map, 2007-08-25")
    for name, features in fire_map.layers.items():
        print(f"\nlayer {name} ({len(features)} features)")
        for feature in features[:4]:
            summary = {
                k: (v[:50] + "..." if isinstance(v, str) and len(v) > 50 else v)
                for k, v in feature.items()
            }
            print(f"  {summary}")
    print(f"\ntotal features on the map: {fire_map.feature_count()}")

    banner(f"Scenario 3: batch reprocessing ({workers} worker(s))")
    batch_paths = []
    for k in range(3):
        batch_spec = SceneSpec(
            width=96, height=96, seed=30 + k, n_fires=0, n_glints=k
        )
        batch_scene = generate_scene(
            batch_spec, vo.world.land, fire_seeds=FIRE_SEEDS
        )
        batch_path = os.path.join(workdir, f"batch_{k:03d}.nat")
        write_scene(batch_scene, batch_path)
        batch_paths.append(batch_path)
    chain = ProcessingChain(Ingestor(Database(), StrabonStore()))
    t0 = time.perf_counter()
    results = chain.run_batch(batch_paths, workers=workers)
    elapsed = time.perf_counter() - t0
    for batch_path, result in zip(batch_paths, results):
        print(
            f"  {os.path.basename(batch_path):<16}"
            f"{len(result.hotspots):>3} hotspots  "
            f"{result.total_seconds * 1000:7.1f}ms chain time"
        )
    print(
        f"\n{len(batch_paths)} acquisitions, one bulk RDF emit, "
        f"{len(chain.ingestor.store)} triples published "
        f"in {elapsed * 1000:.1f}ms wall time"
    )

    banner("Resilience state (repro.resilience)")
    for described in vo.resilience.snapshot()["breakers"]:
        print(f"  breaker {described['name']:<16} state={described['state']}")
    if faults.enabled():
        print(f"  fault plan: {faults.describe()}")

    banner("Metrics snapshot (repro.obs)")
    print(vo.metrics.exposition())
    dump_path = os.environ.get("REPRO_METRICS_DUMP", "").strip()
    if dump_path:
        with open(dump_path, "w") as fh:
            json.dump(vo.metrics.snapshot(), fh, indent=2, sort_keys=True)
        print(f"\nstructured snapshot written to {dump_path}")


if __name__ == "__main__":
    main()
