"""The knowledge-discovery pillar and the burn-scar chain, end to end.

Part 1 — *Image information mining*: simulate a short acquisition series
carrying both active fire fronts and old burn scars, extract
georeferenced patch grids through the SciQL ``tile_aggregate`` read
path, train a patch classifier on the simulator's ground truth, persist
it in the ``mining_models`` registry, and mine the series with
``MiningPipeline.run_batch`` — annotations land in the Strabon store as
stRDF (concept, footprint geometry, valid time) in a single bulk emit.

Part 2 — *Semantic catalogue queries*: ask the content-based questions
of the paper — patches by concept, annotations valid during a window,
and the cross-pillar join pairing mining annotations with the fire
chain's hotspot products.

Part 3 — *Burn-scar damage mapping*: run the second NOA-style chain
(same stage machinery, different classifier registry) over the same
scenes and build the damage map.

Run:  python examples/burn_scar_mapping.py
      REPRO_WORKERS=4 python examples/burn_scar_mapping.py
"""

import os
import tempfile
from datetime import timedelta

from repro import parallel
from repro.eo import SceneSpec, generate_scene, write_scene
from repro.mining import queries
from repro.vo import VirtualEarthObservatory


def banner(text):
    print("\n" + "=" * 72)
    print(text)
    print("=" * 72)


def main():
    workers = parallel.env_workers()
    vo = VirtualEarthObservatory()
    workdir = tempfile.mkdtemp(prefix="teleios_mining_")
    paths = []
    for k in range(3):
        spec = SceneSpec(
            width=96, height=96, seed=30 + k, n_fires=2, n_burn_scars=2
        )
        scene = generate_scene(spec, vo.world.land)
        path = os.path.join(workdir, f"scene_{k:03d}.nat")
        write_scene(scene, path)
        paths.append(path)

    banner(f"Part 1: mining the series ({workers} worker(s))")
    results = vo.run_mining(
        paths, model_name="demo-season", workers=workers
    )
    print(f"{'scene':<16}{'patches':>8}  labels")
    for path, result in zip(paths, results):
        print(
            f"{os.path.basename(path):<16}{len(result.grid):>8}  "
            f"{result.label_statistics()}"
        )
    print(f"\npersisted models: {vo.data_mining.models.names()}")
    print(f"triples in the store: {len(vo.store)}")

    banner("Part 2: semantic catalogue queries")
    chain_results = [vo.run_fire_monitoring(p)["chain"] for p in paths]
    census = vo.store.query(queries.concept_census())
    print("concept census:")
    for label, count in census.rows():
        print(f"  {str(label):<10}{count.to_python():>6} patches")
    acquired = results[0].product.acquired
    window = vo.store.query(
        queries.annotations_valid_during(
            "fire", acquired, acquired + timedelta(minutes=15)
        )
    )
    print(f"fire annotations valid in the acquisition window: {len(window)}")
    join = vo.store.query(queries.annotation_hotspot_join("fire"))
    print(f"patch/hotspot consistency pairs (same product, "
          f"intersecting, co-valid): {len(join)}")
    for patch, hotspot, conf in join.rows()[:3]:
        print(f"  {str(patch).rsplit('#', 1)[-1]}")
        print(f"    <-> {str(hotspot).rsplit('#', 1)[-1]} "
              f"(confidence {conf.to_python():.2f})")

    banner("Part 3: burn-scar damage mapping (second NOA chain)")
    total_fire = sum(len(r.hotspots) for r in chain_results)
    print(f"fire chain found {total_fire} hotspots over the series")
    for path in paths:
        out = vo.run_burn_scar_mapping(path)
        scars = out["chain"].hotspots
        print(
            f"  {os.path.basename(path):<16}{len(scars)} scar regions, "
            f"{sum(h.pixel_count for h in scars)} pixels, "
            f"max severity {max((h.confidence for h in scars), default=0):.2f}"
        )
    burnscars = vo.store.query(
        "PREFIX noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#>\n"
        "SELECT ?s WHERE { ?s a noa:BurnScar }"
    )
    print(f"\nburn-scar products published as stRDF: {len(burnscars)}")
    print(f"final store size: {len(vo.store)} triples")


if __name__ == "__main__":
    main()
