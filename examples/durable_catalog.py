"""Durable catalog demo: crash mid-ingest, recover the exact prefix.

Two modes driving the same data directory (``REPRO_DATA_DIR`` or the
first CLI argument):

* ``ingest`` — registers synthetic scenes in batches, journaling each
  batch through the WAL.  Run it under a storage fault plan (e.g.
  ``REPRO_FAULTS="storage.wal:nth=5,hard"``) and the process "crashes"
  mid-WAL: it records how many batches were *acknowledged* in a
  sidecar file and exits with status 42.
* ``verify`` — reopens the directory cold and asserts that recovery
  reproduced exactly the acknowledged batches — nothing lost, nothing
  resurrected — then prints the catalog's per-mission report.

With no arguments the script runs the whole story against a temp
directory: a clean ingest, then a crash-injected ingest into a fresh
directory, then cold-start verification of both.

Run:  python examples/durable_catalog.py ingest /tmp/demo-data
      REPRO_FAULTS="storage.wal:nth=5,hard" \
          python examples/durable_catalog.py ingest /tmp/demo-data
      python examples/durable_catalog.py verify /tmp/demo-data
"""

import json
import os
import sys
import tempfile

from repro import faults
from repro.mdb.datavault import SceneCatalog
from repro.mdb.storage import open_database

BATCH = 500
N_BATCHES = 20
CRASH_EXIT = 42


def _state_path(data_dir):
    return data_dir + ".acknowledged.json"


def ingest(data_dir):
    engine = open_database(data_dir, sync_policy="batch")
    catalog = SceneCatalog(engine.db, batch_size=BATCH)
    scenes = list(
        SceneCatalog.synthesize_scenes(BATCH * N_BATCHES, seed=23)
    )
    acknowledged = catalog.scene_count()
    start = acknowledged
    try:
        for k in range(start // BATCH, N_BATCHES):
            batch = scenes[k * BATCH:(k + 1) * BATCH]
            catalog.bulk_register(batch)
            engine.sync()
            acknowledged += len(batch)
    except faults.InjectedFault as exc:
        # The batch that faulted was never acknowledged; everything
        # before it was.  Record the acknowledged count for `verify`.
        with open(_state_path(data_dir), "w") as fh:
            json.dump({"acknowledged": acknowledged}, fh)
        print(f"crashed mid-WAL: {exc}")
        print(f"acknowledged scenes at crash: {acknowledged}")
        return CRASH_EXIT
    with open(_state_path(data_dir), "w") as fh:
        json.dump({"acknowledged": acknowledged}, fh)
    print(f"ingested {acknowledged} scenes into {data_dir}")
    engine.close()
    return 0


def verify(data_dir):
    with open(_state_path(data_dir)) as fh:
        acknowledged = json.load(fh)["acknowledged"]
    engine = open_database(data_dir)
    catalog = SceneCatalog(engine.db)
    recovered = catalog.scene_count()
    print(f"acknowledged before crash/exit: {acknowledged}")
    print(f"recovered after cold start:     {recovered}")
    assert recovered == acknowledged, (
        f"recovery divergence: {recovered} != {acknowledged}"
    )
    for mission, count in catalog.mission_report():
        print(f"  {mission:<12} {count:>6} scenes")
    print("recovery is exact: every acknowledged write, nothing else")
    engine.close()
    return 0


def demo():
    """Clean ingest, crash-injected ingest, cold-start verification."""
    with tempfile.TemporaryDirectory(prefix="teleios_durable_") as tmp:
        clean = os.path.join(tmp, "clean-data")
        print("== clean ingest ==")
        status = ingest(clean)
        assert status == 0, status
        print("== cold-start verify ==")
        verify(clean)

        crashed = os.path.join(tmp, "crash-data")
        print('== ingest under REPRO_FAULTS="storage.wal:nth=9,hard" ==')
        with faults.injected("storage.wal:nth=9,hard"):
            status = ingest(crashed)
        assert status == CRASH_EXIT, status
        print("== recover the crashed directory ==")
        verify(crashed)
    return 0


def main(argv):
    mode = argv[1] if len(argv) > 1 else None
    if mode in ("-h", "--help"):
        print(__doc__)
        return 0
    if mode not in ("ingest", "verify"):
        # No recognised mode (or run via a test harness): full demo.
        return demo()
    data_dir = (
        argv[2]
        if len(argv) > 2
        else os.environ.get("REPRO_DATA_DIR")
    )
    if not data_dir:
        print("pass a data directory or set REPRO_DATA_DIR")
        return 2
    if mode == "ingest":
        return ingest(data_dir)
    return verify(data_dir)


if __name__ == "__main__":
    status = main(sys.argv)
    if status:  # keep runpy-based smoke tests SystemExit-free
        sys.exit(status)
