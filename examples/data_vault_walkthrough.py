"""Data Vaults: just-in-time ingestion of a scientific file archive.

The paper (§3, Database Tier) adopts the Data Vault [Ivanova et al.,
SSDBM 2012]: "make the DBMS aware of external file formats and keep the
knowledge how to convert data from external file formats into database
tables or arrays inside the database".  This example builds an archive of
20 scene files, catalogs it (headers only), then shows how queries touch
payloads lazily — and compares against the eager-ETL strawman.

Run:  python examples/data_vault_walkthrough.py
"""

import os
import tempfile
import time
from datetime import datetime, timedelta

from repro.eo import GreeceLikeWorld, SceneSpec, generate_scene, write_scene
from repro.ingest.handlers import seviri_format_handler
from repro.mdb.datavault import DataVault


def build_archive(directory, n_files=20):
    world = GreeceLikeWorld()
    start = datetime(2007, 8, 25, 0, 0)
    for i in range(n_files):
        spec = SceneSpec(
            width=128,
            height=128,
            seed=i,
            acquired=start + timedelta(minutes=15 * i),
        )
        write_scene(
            generate_scene(spec, world.land),
            os.path.join(directory, f"scene_{i:03d}.nat"),
        )


def main():
    archive = tempfile.mkdtemp(prefix="teleios_vault_")
    build_archive(archive)

    # --- cataloging: cheap, header-only ------------------------------------
    vault = DataVault("seviri-archive", cache_limit=8)
    vault.register_format(seviri_format_handler())
    t0 = time.perf_counter()
    entries = vault.attach_directory(archive, pattern="*.nat")
    catalog_ms = (time.perf_counter() - t0) * 1000
    print(f"cataloged {len(entries)} files in {catalog_ms:.1f} ms "
          f"(payloads untouched: {vault.stats['ingests']} ingests)")

    # Metadata is queryable without touching pixels.
    # The archive covers 00:00-04:45 in 15-minute steps.
    early = [
        e for e in vault.search(mission="MSG2")
        if str(e.metadata["acquired"]).startswith("2007-08-25T02")
    ]
    print(f"metadata search: {len(early)} acquisitions in the 02:00 hour")

    # --- lazy access: only what the query needs ------------------------------
    t0 = time.perf_counter()
    touched = entries[3::7]  # the query touches 3 of 20 files
    for entry in touched:
        array = vault.fetch(entry.path)
        hot = (array.attribute("t039") > 310).sum()
        print(f"  {os.path.basename(entry.path)}: "
              f"{hot} pixels above 310 K")
    lazy_ms = (time.perf_counter() - t0) * 1000
    print(f"lazy query over {len(touched)} files: {lazy_ms:.1f} ms, "
          f"{vault.stats['ingests']} ingests, "
          f"{vault.cached_count} arrays cached")

    # Second access hits the cache.
    t0 = time.perf_counter()
    vault.fetch(touched[0].path)
    print(f"cache hit: {(time.perf_counter() - t0) * 1e6:.0f} µs "
          f"({vault.stats['cache_hits']} hits so far)")

    # --- the eager-ETL strawman ------------------------------------------------
    eager = DataVault("eager")
    eager.register_format(seviri_format_handler())
    eager.attach_directory(archive, pattern="*.nat")
    t0 = time.perf_counter()
    eager.ingest_all()
    eager_ms = (time.perf_counter() - t0) * 1000
    print(f"\neager ETL of all 20 files: {eager_ms:.1f} ms "
          f"(vs {lazy_ms:.1f} ms for the 3 the query needed)")

    # --- cache pressure -----------------------------------------------------------
    for entry in entries:
        vault.fetch(entry.path)
    print(f"\nafter touching everything with cache_limit=8: "
          f"{vault.cached_count} cached, "
          f"{vault.stats['evictions']} evictions")


if __name__ == "__main__":
    main()
