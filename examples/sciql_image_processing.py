"""SciQL: image processing inside the database (paper §1, advantage list).

The paper claims SciQL lets you express "low level image processing
(cropping, resampling, georeferencing) as well as image content analysis
(feature extraction, pixel classification) in a user-friendly high-level
declarative language".  This example does exactly that on a simulated
scene: every image operation is a SQL/SciQL statement or an array
primitive — no pixels ever leave the database.

Run:  python examples/sciql_image_processing.py
"""

import os
import tempfile

from repro.eo import GreeceLikeWorld, SceneSpec, generate_scene, write_scene
from repro.ingest import Ingestor
from repro.mdb import Database
from repro.strabon import StrabonStore


def main():
    world = GreeceLikeWorld()
    scene = generate_scene(
        SceneSpec(width=128, height=128, seed=42, n_fires=5), world.land
    )
    workdir = tempfile.mkdtemp(prefix="teleios_sciql_")
    path = os.path.join(workdir, "scene.nat")
    write_scene(scene, path)

    db = Database()
    ingestor = Ingestor(db, StrabonStore())
    product = ingestor.ingest_file(path)
    array = ingestor.materialize_array(product)
    name = array.name
    print(f"array {name}: dims {array.shape}, "
          f"attributes {[a for a, _ in array.attributes]}")

    # --- content statistics, declaratively --------------------------------
    rows = db.query(
        f"SELECT min(t039), avg(t039), max(t039) FROM {name}"
    )
    print(f"t039 stats (K): min={rows[0][0]:.1f} "
          f"avg={rows[0][1]:.1f} max={rows[0][2]:.1f}")

    # Per-row profile: GROUP BY a dimension.
    profile = db.query(
        f"SELECT row / 32, avg(t039) FROM {name} "
        "GROUP BY row / 32 ORDER BY row / 32"
    )
    print("mean t039 by 32-row band:",
          [f"{v:.1f}" for _, v in profile])

    # --- pixel classification as a SciQL UPDATE -----------------------------
    from repro.mdb import DOUBLE

    array.add_attribute("hotspot", DOUBLE, default=0.0)
    db.execute(
        f"UPDATE {name} SET hotspot = 1 "
        "WHERE t039 > 312 AND t039 - t108 > 9"
    )
    detected = db.scalar(f"SELECT sum(hotspot) FROM {name}")
    true_fires = db.scalar(f"SELECT sum(truth_fire) FROM {name}")
    print(f"\nclassified {detected:.0f} hotspot pixels "
          f"(ground truth: {true_fires:.0f})")

    # Joint query over image content and the classification — the paper's
    # "exploit both image metadata and image data at the same time".
    hits = db.query(
        f"SELECT count(*) FROM {name} "
        "WHERE hotspot = 1 AND truth_fire = 1"
    )
    print(f"true positives: {hits[0][0]}")

    # --- cropping: array slicing preserving coordinates ----------------------
    window = array.slice(row=(32, 96), col=(32, 96))
    print(f"\ncropped window shape: {window.shape}, "
          f"row range [{window.dimension('row').start}, "
          f"{window.dimension('row').stop})")

    # --- resampling: tiled aggregation ---------------------------------------
    coarse = array.tile_aggregate([4, 4], "mean", attr="t108")
    print(f"4x4-mean resampled t108: {coarse.shape}, "
          f"mean {coarse.attribute('t108').mean():.2f} K "
          f"(original {array.attribute('t108').mean():.2f} K)")

    # --- masked arithmetic over two bands -------------------------------------
    db.execute(
        f"UPDATE {name} SET hotspot = 0 WHERE t108 < 270"
    )  # cloud screening: very cold pixels can't be confident detections
    after = db.scalar(f"SELECT sum(hotspot) FROM {name}")
    print(f"after cloud screening: {after:.0f} hotspot pixels")


if __name__ == "__main__":
    main()
