"""Quickstart: the TELEIOS Virtual Earth Observatory in ~60 lines.

Generates a tiny synthetic SEVIRI archive, ingests it, runs the NOA fire
monitoring pipeline on one scene and prints what every tier produced.

Run:  python examples/quickstart.py
"""

import os
import tempfile
from datetime import datetime

from repro.eo import SceneSpec, generate_scene, write_scene
from repro.vo import VirtualEarthObservatory


def main():
    # The observatory wires all four tiers (Fig. 2 of the paper) and
    # preloads the synthetic Greek linked-data world.
    vo = VirtualEarthObservatory()

    # --- build a small archive of simulated MSG/SEVIRI acquisitions ------
    archive = tempfile.mkdtemp(prefix="teleios_archive_")
    for i in range(2):
        spec = SceneSpec(
            width=96,
            height=96,
            seed=100 + i,
            n_fires=0,
            n_glints=2,
            acquired=datetime(2007, 8, 25, 11 + i, 0),
        )
        scene = generate_scene(
            spec, vo.world.land,
            fire_seeds=[(21.63, 37.7), (22.5, 38.5)],  # one near Olympia
        )
        write_scene(scene, os.path.join(archive, f"scene_{i:03d}.nat"))

    # --- ingestion tier ---------------------------------------------------
    report = vo.ingest_archive(archive)
    print(f"ingested {len(report.products)} products "
          f"({report.metadata_triples} metadata triples)")

    # --- application tier: chain + refinement + fire map ------------------
    out = vo.run_fire_monitoring(report.products[0].path,
                                 output_dir=archive)
    chain = out["chain"]
    print(f"chain [{chain.classifier}] found {len(chain.hotspots)} hotspots "
          f"in {chain.total_seconds * 1000:.1f} ms")
    print(f"shapefile: {chain.shapefile_path}")
    ref = out["refinement"]
    print(f"refinement: {ref.hotspots_before} -> {ref.hotspots_after} "
          f"hotspots, area {ref.area_before:.4f} -> {ref.area_after:.4f}")
    for name, count in out["map"].layers.items():
        print(f"map layer {name:18s}: {len(count)} features")

    # --- catalog: the paper's style of semantic search ---------------------
    query = (
        vo.new_query()
        .mission("MSG2")
        .containing_concept(
            "http://teleios.di.uoa.gr/ontologies/noaOntology.owl#Hotspot"
        )
        .near_archaeological_site(0.3)
    )
    hits = vo.search(query)
    print(f"catalog: {len(hits)} product(s) with hotspots near an "
          f"archaeological site")
    print(vo.statistics())


if __name__ == "__main__":
    main()
