"""The paper's motivating query, §1:

  "Find an image taken by a Meteosat second generation satellite on
   August 25, 2007 which covers the area of Peloponnese and contains
   hotspots corresponding to forest fires located within 2km from a major
   archaeological site."

Impossible in EOWEB-NG (no domain concepts in archive metadata); one
stSPARQL query in TELEIOS.  This example builds the archive, annotates it
through the chain, then runs exactly that request — first through the
structured CatalogQuery builder, then as a single hand-written stSPARQL
query.

Run:  python examples/semantic_catalog_search.py
"""

import os
import tempfile
from datetime import datetime

from repro.eo import SceneSpec, generate_scene, write_scene
from repro.geometry import Polygon
from repro.ingest.metadata import NOA_PREFIXES
from repro.vo import VirtualEarthObservatory

#: ~2 km in degrees at Peloponnese latitudes.
TWO_KM_DEG = 0.02

PELOPONNESE = Polygon(
    [(21.1, 36.3), (23.3, 36.3), (23.3, 38.2), (21.1, 38.2)], srid=4326
)


def main():
    vo = VirtualEarthObservatory()
    archive = tempfile.mkdtemp(prefix="teleios_catalog_")

    # Acquisitions across two days; only the Aug-25 one has the fire that
    # burns right next to ancient Olympia.
    scenes = [
        (datetime(2007, 8, 24, 12, 0), [(24.0, 40.9)], 1),
        (datetime(2007, 8, 25, 12, 0), [(21.64, 37.65), (22.5, 38.5)], 2),
        (datetime(2007, 8, 26, 12, 0), [(20.9, 39.6)], 3),
    ]
    for acquired, seeds, seed in scenes:
        spec = SceneSpec(
            width=128, height=128, seed=seed, n_fires=0, acquired=acquired
        )
        scene = generate_scene(spec, vo.world.land, fire_seeds=seeds)
        write_scene(
            scene,
            os.path.join(archive, f"scene_{acquired:%Y%m%d}.nat"),
        )
    report = vo.ingest_archive(archive)
    # Annotate every product with hotspots by running the chain.
    for product in report.products:
        vo.rapid_mapping.run_chain(product.path)

    print("archive:", [p.product_id for p in report.products])

    # --- the structured way -----------------------------------------------
    query = (
        vo.new_query()
        .mission("MSG2")  # the Meteosat-second-generation satellite
        .acquired_between(
            datetime(2007, 8, 25, 0, 0), datetime(2007, 8, 26, 0, 0)
        )
        .covering(PELOPONNESE)
        .containing_concept(
            "http://teleios.di.uoa.gr/ontologies/noaOntology.owl#Hotspot"
        )
        .near_archaeological_site(TWO_KM_DEG)
    )
    print("\ncompiled stSPARQL:\n")
    print(query.to_stsparql())
    hits = vo.search(query)
    print("\nmatching products:", [str(h) for h in hits])

    # --- the hand-written way ----------------------------------------------
    handwritten = (
        NOA_PREFIXES
        + "PREFIX dbp: <http://dbpedia.org/ontology/>\n"
        "SELECT DISTINCT ?product ?site WHERE {\n"
        "  ?product a noa:Product ;\n"
        '           noa:hasMission "MSG2" ;\n'
        "           noa:hasAcquisitionTime ?t ;\n"
        "           noa:hasGeometry ?footprint .\n"
        "  ?derived noa:isDerivedFrom ?product .\n"
        "  ?hotspot a noa:Hotspot ; noa:isProducedBy ?derived ;\n"
        "           noa:hasGeometry ?hgeom .\n"
        "  ?site a dbp:ArchaeologicalSite ; dbp:hasGeometry ?sgeom .\n"
        '  FILTER(?t >= "2007-08-25T00:00:00"^^xsd:dateTime)\n'
        '  FILTER(?t < "2007-08-26T00:00:00"^^xsd:dateTime)\n'
        f'  FILTER(strdf:intersects(?footprint, '
        f'"{PELOPONNESE.wkt}"^^strdf:WKT))\n'
        f"  FILTER(strdf:distance(?hgeom, ?sgeom) < {TWO_KM_DEG})\n"
        "}"
    )
    result = vo.catalog.run(handwritten)
    print("\nhand-written query results:")
    for product, site in result.rows():
        print(f"  product={product.local_name}  site={site.local_name}")


if __name__ == "__main__":
    main()
